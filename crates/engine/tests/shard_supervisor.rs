//! Shard supervisor and merge edge cases, driven through scripted
//! [`ShardRunner`]s (no child processes) and hand-written journals:
//! backoff determinism, restart-cap exhaustion, bisection convergence on
//! one and two poison runs, and merge semantics over completion-ordered
//! journals (gaps, duplicates, off-plan keys, bounded residency).

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::time::Duration;

use wasabi_engine::campaign::{RunOutcome, RunRecord};
use wasabi_engine::journal::Journal;
use wasabi_engine::shard::{
    partition, supervise_shard, ShardExit, ShardMerge, ShardRunner, SupervisorPolicy,
};
use wasabi_lang::ast::CallId;
use wasabi_lang::project::{CallSite, FileId, MethodId};
use wasabi_planner::plan::RunKey;
use wasabi_vm::trace::TestOutcome;

fn key(k: u32) -> RunKey {
    RunKey {
        test: MethodId { class: "ShardTests".to_string(), name: "t000".to_string() },
        site: CallSite { file: FileId(0), call: CallId(0) },
        exception: "IOException".to_string(),
        k,
    }
}

fn record(k: u32, virtual_ms: u64) -> RunRecord {
    RunRecord {
        key: key(k),
        outcome: RunOutcome::Completed(TestOutcome::Passed),
        reports: Vec::new(),
        rethrow_filtered: false,
        not_a_trigger: false,
        virtual_ms,
        steps: 10,
        injections: 1,
        attempts: 1,
        quarantined: false,
    }
}

fn temp_journal(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("wasabi-shard-merge-test-{}-{name}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn write_journal(name: &str, records: &[RunRecord]) -> PathBuf {
    let path = temp_journal(name);
    let mut journal = Journal::open(&path).expect("open journal");
    for record in records {
        journal.append(record);
    }
    journal.finish();
    path
}

// ---- partition ---------------------------------------------------------

#[test]
fn partition_covers_the_range_with_balanced_contiguous_slices() {
    for (total, shards) in [(0, 4), (1, 4), (7, 3), (88, 4), (5, 8)] {
        let ranges = partition(total, shards);
        assert_eq!(ranges.len(), shards);
        assert_eq!(ranges[0].0, 0);
        assert_eq!(ranges[shards - 1].1, total);
        for window in ranges.windows(2) {
            assert_eq!(window[0].1, window[1].0, "ranges must be contiguous");
        }
        let sizes: Vec<usize> = ranges.iter().map(|(a, b)| b - a).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "sizes differ by more than one: {sizes:?}");
    }
}

// ---- backoff -----------------------------------------------------------

#[test]
fn backoff_schedule_is_deterministic_jittered_and_capped() {
    let policy = SupervisorPolicy::default();
    for restart in 1..=20u32 {
        let a = policy.backoff(3, restart);
        let b = policy.backoff(3, restart);
        assert_eq!(a, b, "same (shard, restart) must give the same delay");
        let raw = policy.base_delay.as_secs_f64() * policy.multiplier.powi(restart as i32 - 1);
        let capped = raw.min(policy.cap.as_secs_f64());
        let secs = a.as_secs_f64();
        assert!(
            secs >= capped * 0.5 && secs < capped,
            "restart {restart}: delay {secs} outside equal-jitter window [{}, {})",
            capped * 0.5,
            capped
        );
    }
    // Different shards draw from different jitter streams.
    assert_ne!(policy.backoff(0, 5), policy.backoff(1, 5));
    // A zero base disables backoff entirely.
    let instant = SupervisorPolicy { base_delay: Duration::ZERO, ..SupervisorPolicy::default() };
    assert_eq!(instant.backoff(0, 3), Duration::ZERO);
}

// ---- scripted supervisor runs -----------------------------------------

/// A scripted child: executes the remaining runs of its segment in index
/// order, completing each until it hits a poison index (then "crashes"),
/// and optionally crashes spuriously the first `flaky_crashes` times it is
/// spawned after making progress.
struct ScriptedRunner {
    poison: BTreeSet<usize>,
    flaky_crashes: u32,
    spawns: u32,
    completed: BTreeSet<usize>,
    executed: Vec<usize>,
    sleeps: Vec<Duration>,
    /// Crash after completing this many runs per spawn (for flaky mode).
    crash_after: usize,
}

impl ScriptedRunner {
    fn new(poison: impl IntoIterator<Item = usize>) -> ScriptedRunner {
        ScriptedRunner {
            poison: poison.into_iter().collect(),
            flaky_crashes: 0,
            spawns: 0,
            completed: BTreeSet::new(),
            executed: Vec::new(),
            sleeps: Vec::new(),
            crash_after: 2,
        }
    }
}

impl ShardRunner for ScriptedRunner {
    fn run(&mut self, _shard: usize, segment: (usize, usize), _restart: u32) -> ShardExit {
        self.spawns += 1;
        let flaky = self.flaky_crashes > 0;
        if flaky {
            self.flaky_crashes -= 1;
        }
        let mut done_this_spawn = 0;
        for index in segment.0..segment.1 {
            if self.completed.contains(&index) {
                continue;
            }
            if self.poison.contains(&index) {
                return ShardExit::Crashed { status: "exit code 86".to_string() };
            }
            if flaky && done_this_spawn >= self.crash_after {
                return ShardExit::Crashed { status: "signal 9".to_string() };
            }
            self.executed.push(index);
            self.completed.insert(index);
            done_this_spawn += 1;
        }
        ShardExit::Clean
    }

    fn completed(&mut self, _shard: usize) -> Result<Vec<usize>, String> {
        Ok(self.completed.iter().copied().collect())
    }

    fn sleep(&mut self, delay: Duration) {
        self.sleeps.push(delay);
    }
}

#[test]
fn uneventful_shard_completes_without_restarts_or_sleeps() {
    let policy = SupervisorPolicy::default();
    let mut runner = ScriptedRunner::new([]);
    let report = supervise_shard(&policy, 0, (0, 10), &mut runner).expect("supervise");
    assert_eq!(report.restarts, 0);
    assert!(report.dead.is_empty());
    assert!(runner.sleeps.is_empty());
    assert_eq!(runner.executed, (0..10).collect::<Vec<_>>());
}

#[test]
fn crash_with_progress_restarts_with_policy_backoff_and_never_reruns_completed_runs() {
    let policy = SupervisorPolicy::default();
    let mut runner = ScriptedRunner::new([]);
    runner.flaky_crashes = 3;
    let report = supervise_shard(&policy, 2, (0, 12), &mut runner).expect("supervise");
    assert_eq!(report.restarts, 3);
    assert!(report.dead.is_empty());
    // Every run executed exactly once — the journal contract.
    assert_eq!(runner.executed, (0..12).collect::<Vec<_>>());
    // The sleep schedule is exactly the policy's backoff sequence.
    let expected: Vec<Duration> = (1..=3).map(|r| policy.backoff(2, r)).collect();
    assert_eq!(runner.sleeps, expected);
}

#[test]
fn single_poison_run_is_bisected_out_and_the_rest_completes() {
    let policy = SupervisorPolicy { base_delay: Duration::ZERO, ..SupervisorPolicy::default() };
    let mut runner = ScriptedRunner::new([5]);
    let report = supervise_shard(&policy, 0, (0, 16), &mut runner).expect("supervise");
    assert_eq!(report.dead.len(), 1, "exactly the poison run is lost: {:?}", report.dead);
    assert_eq!(report.dead[0].index, 5);
    assert_eq!(report.dead[0].reason, "bisected");
    assert_eq!(report.dead[0].exit, "exit code 86");
    let mut done = runner.executed.clone();
    done.sort_unstable();
    let expected: Vec<usize> = (0..16).filter(|i| *i != 5).collect();
    assert_eq!(done, expected, "every healthy run still completes exactly once");
    // Bisection is logarithmic in the remaining span, not linear.
    assert!(
        report.restarts <= 6,
        "isolating one poison run in 16 took {} restarts",
        report.restarts
    );
}

#[test]
fn two_poison_runs_are_both_bisected_out() {
    let policy = SupervisorPolicy { base_delay: Duration::ZERO, ..SupervisorPolicy::default() };
    let mut runner = ScriptedRunner::new([2, 6]);
    let report = supervise_shard(&policy, 1, (0, 8), &mut runner).expect("supervise");
    let mut dead: Vec<usize> = report.dead.iter().map(|d| d.index).collect();
    dead.sort_unstable();
    assert_eq!(dead, vec![2, 6]);
    assert!(report.dead.iter().all(|d| d.reason == "bisected"));
    let mut done = runner.executed.clone();
    done.sort_unstable();
    let expected: Vec<usize> = (0..8).filter(|i| *i != 2 && *i != 6).collect();
    assert_eq!(done, expected);
}

#[test]
fn restart_cap_exhaustion_dead_letters_everything_remaining() {
    let policy = SupervisorPolicy {
        max_restarts: 2,
        base_delay: Duration::ZERO,
        ..SupervisorPolicy::default()
    };
    // Poison at the very first index: no spawn ever makes progress.
    let mut runner = ScriptedRunner::new([0]);
    let report = supervise_shard(&policy, 0, (0, 8), &mut runner).expect("supervise");
    assert_eq!(report.restarts, 2);
    let mut dead: Vec<usize> = report.dead.iter().map(|d| d.index).collect();
    dead.sort_unstable();
    // Everything the shard never completed is quarantined, wholesale.
    let completed: BTreeSet<usize> = runner.completed.iter().copied().collect();
    let expected: Vec<usize> = (0..8).filter(|i| !completed.contains(i)).collect();
    assert_eq!(dead, expected);
    assert!(!expected.is_empty());
    assert!(report
        .dead
        .iter()
        .any(|d| d.reason == "restart cap exhausted"));
}

// ---- merge over completion-ordered journals ----------------------------

#[test]
fn merge_serves_plan_order_from_completion_ordered_journals_with_unit_residency() {
    // Journals append in completion order — deliberately scrambled here.
    let a = write_journal("scramble-a", &[record(7, 1), record(1, 1), record(5, 1)]);
    let b = write_journal("scramble-b", &[record(6, 1), record(2, 1), record(4, 1), record(3, 1)]);
    let mut merge = ShardMerge::open(&[a, b]).expect("open");
    for k in 1..=7u32 {
        let got = merge.take(&key(k)).expect("take").expect("record present");
        assert_eq!(got.key, key(k));
    }
    assert!(merge.peak_resident <= 1, "merge held {} records resident", merge.peak_resident);
    assert_eq!(merge.finish().expect("finish"), 0);
}

#[test]
fn missing_journal_is_empty_and_unjournaled_keys_are_gaps() {
    let a = write_journal("gap-a", &[record(1, 1)]);
    let missing = temp_journal("gap-missing");
    let mut merge = ShardMerge::open(&[a, missing]).expect("open");
    assert!(merge.take(&key(1)).expect("take").is_some());
    assert!(merge.take(&key(2)).expect("take").is_none(), "gap must surface as None");
    merge.finish().expect("finish");
}

#[test]
fn cross_shard_exact_duplicates_merge_silently() {
    // Overlapping shard ranges journaled the same deterministic record.
    let a = write_journal("dup-a", &[record(1, 1), record(2, 1)]);
    let b = write_journal("dup-b", &[record(2, 1), record(3, 1)]);
    let mut merge = ShardMerge::open(&[a, b]).expect("open");
    for k in 1..=3u32 {
        assert!(merge.take(&key(k)).expect("take").is_some());
    }
    assert_eq!(merge.finish().expect("finish"), 0);
}

#[test]
fn cross_shard_divergent_duplicates_are_an_error() {
    let a = write_journal("div-a", &[record(1, 1)]);
    let b = write_journal("div-b", &[record(1, 999)]);
    let mut merge = ShardMerge::open(&[a, b]).expect("open");
    let err = merge.take(&key(1)).expect_err("divergent duplicate must fail");
    assert!(err.contains("divergent duplicate"), "unexpected error: {err}");
}

#[test]
fn duplicate_key_within_one_journal_fails_at_open() {
    let a = write_journal("selfdup-a", &[record(1, 1), record(1, 1)]);
    let err = match ShardMerge::open(&[a]) {
        Err(err) => err,
        Ok(_) => panic!("in-journal duplicate must fail"),
    };
    assert!(err.contains("duplicate record"), "unexpected error: {err}");
}

#[test]
fn keys_beyond_the_plan_fail_at_finish() {
    let a = write_journal("extra-a", &[record(1, 1), record(9, 1)]);
    let mut merge = ShardMerge::open(&[a]).expect("open");
    assert!(merge.take(&key(1)).expect("take").is_some());
    let err = merge.finish().expect_err("leftover key must fail");
    assert!(err.contains("beyond the plan"), "unexpected error: {err}");
}
