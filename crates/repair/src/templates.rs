//! Patch templates: AST-backed source splices per bug class.
//!
//! Each template maps a resolved [`PatchSite`] to a [`PatchedFile`] — the
//! complete new text of one source file. Splices only *insert* text (or,
//! for flattening, replace exactly the loop statement's span), so every
//! byte outside the edit survives verbatim; synthesized statements are
//! rendered through [`print_stmt`] so the spliced text is canonical
//! printer output and re-parses to exactly the intended AST.
//!
//! Synthesized code deliberately contains no `Call`/`New` expressions:
//! call ids are assigned in parse order, so an insertion with a call in
//! it would renumber every later call site in the file and break the
//! baseline run-key comparison the validator depends on.

use wasabi_analysis::patchsite::PatchSite;
use wasabi_lang::ast::{
    BinOp, Block, CatchClause, Expr, LValue, Literal, Stmt,
};
use wasabi_lang::printer::print_stmt;
use wasabi_lang::project::Project;
use wasabi_lang::span::Span;

/// The guard-counter name; contains "retry" on purpose, so a capped loop
/// keeps the naming-convention evidence the identification pass keys on.
const GUARD: &str = "retryGuard";

/// Retry cap inserted by the W001 templates. Well under the oracle's
/// unbounded threshold (100) and within the paper's observed real-world
/// cap range (≤ 20).
const CAP: i64 = 3;

/// One repair strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Template {
    /// W001: cap the loop; on exhaustion rethrow the caught exception
    /// (correct give-up — surfaces the last failure to the caller).
    CapRethrow,
    /// W001: cap the loop; on exhaustion break out and fall through to
    /// the loop's existing give-up path.
    CapBreak,
    /// W002: sleep at the end of each retrying catch, scaled by the loop
    /// counter when there is one (`sleep(50 + 50 * i)`).
    SleepBackoff,
    /// W002: constant `sleep(250)` at the entry of each retrying catch.
    SleepConst,
    /// A001: flatten the *inner* retry loop to a single attempt.
    FlattenInner,
    /// A001: flatten the *outer* retry loop to a single attempt.
    FlattenOuter,
}

impl Template {
    /// Stable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Template::CapRethrow => "cap-rethrow",
            Template::CapBreak => "cap-break",
            Template::SleepBackoff => "sleep-backoff",
            Template::SleepConst => "sleep-const",
            Template::FlattenInner => "flatten-inner",
            Template::FlattenOuter => "flatten-outer",
        }
    }
}

/// The candidate templates for a diagnostic code, in default preference
/// order. The driver walks this list, skipping rejected entries and
/// letting the previous rejection's trace re-rank the remainder.
pub fn templates_for(code: &str) -> &'static [Template] {
    match code {
        "W001" => &[Template::CapRethrow, Template::CapBreak],
        "W002" => &[Template::SleepBackoff, Template::SleepConst],
        "A001" => &[Template::FlattenInner, Template::FlattenOuter],
        _ => &[],
    }
}

/// A synthesized patch: the complete new text of one source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatchedFile {
    /// Path of the patched file.
    pub path: String,
    /// Full patched source.
    pub source: String,
}

/// Synthesizes `template` at `site`. For the A001 templates, `inner` is
/// the nested loop ([`FlattenInner`](Template::FlattenInner) edits it,
/// [`FlattenOuter`](Template::FlattenOuter) edits `site` itself).
/// Returns `Err` with a reason when the template is inapplicable here.
pub fn synthesize(
    template: Template,
    project: &Project,
    site: &PatchSite,
    inner: Option<&PatchSite>,
) -> Result<PatchedFile, String> {
    match template {
        Template::CapRethrow => cap_patch(project, site, true),
        Template::CapBreak => cap_patch(project, site, false),
        Template::SleepBackoff => sleep_patch(project, site, true),
        Template::SleepConst => sleep_patch(project, site, false),
        Template::FlattenInner => {
            let inner = inner.ok_or_else(|| "no inner loop resolved".to_string())?;
            flatten_patch(project, inner)
        }
        Template::FlattenOuter => flatten_patch(project, site),
    }
}

/// A single text edit; `start == end` is a pure insertion.
struct Edit {
    start: usize,
    end: usize,
    text: String,
}

/// Applies edits back-to-front so earlier offsets stay valid.
fn splice(source: &str, mut edits: Vec<Edit>) -> String {
    edits.sort_by_key(|e| std::cmp::Reverse(e.start));
    let mut out = source.to_string();
    for edit in edits {
        out.replace_range(edit.start..edit.end, &edit.text);
    }
    out
}

/// Whitespace prefix of the line containing `offset`.
fn line_indent(source: &str, offset: usize) -> String {
    let line_start = source[..offset].rfind('\n').map(|i| i + 1).unwrap_or(0);
    source[line_start..]
        .chars()
        .take_while(|c| *c == ' ')
        .collect()
}

/// Offset of the first character of the line containing `offset`.
fn line_start(source: &str, offset: usize) -> usize {
    source[..offset].rfind('\n').map(|i| i + 1).unwrap_or(0)
}

/// Re-indents printer output (indent-zero, one line per statement).
fn indent_block(text: &str, indent: &str) -> String {
    let mut out = String::new();
    for line in text.lines() {
        out.push_str(indent);
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Finds the loop statement a patch site names, by loop id within its
/// coordinator method.
fn find_loop<'a>(project: &'a Project, site: &PatchSite) -> Result<&'a Stmt, String> {
    let file = &project.files[site.file.0 as usize];
    for item in &file.items {
        let wasabi_lang::ast::Item::Class(class) = item else {
            continue;
        };
        if class.name != site.method.class {
            continue;
        }
        for method in &class.methods {
            if method.name != site.method.name {
                continue;
            }
            let mut found = None;
            wasabi_lang::ast::walk_stmts(&method.body, &mut |stmt| {
                let id = match stmt {
                    Stmt::While { id, .. } | Stmt::For { id, .. } => Some(*id),
                    _ => None,
                };
                if id == Some(site.loop_id) && found.is_none() {
                    found = Some(stmt);
                }
                true
            });
            if let Some(stmt) = found {
                return Ok(stmt);
            }
        }
    }
    Err(format!(
        "loop {:?} not found in {}",
        site.loop_id, site.method
    ))
}

fn loop_body(stmt: &Stmt) -> Result<&Block, String> {
    match stmt {
        Stmt::While { body, .. } | Stmt::For { body, .. } => Ok(body),
        _ => Err("patch site is not a loop".to_string()),
    }
}

/// Whether a block exits the loop on *every* path: a top-level `break`/
/// `return`/`throw`, or an `if` whose branches both always exit. This is
/// deliberately stricter than the analysis crate's `block_exits` (any
/// exit anywhere): a
/// catch that only exits down one branch — like a previously inserted
/// `retryGuard` cap — still retries in the common case and still needs
/// the next template's edit.
fn always_exits(block: &Block) -> bool {
    block.stmts.iter().any(|stmt| match stmt {
        Stmt::Break { .. } | Stmt::Return { .. } | Stmt::Throw { .. } => true,
        Stmt::If {
            then_blk,
            else_blk: Some(else_blk),
            ..
        } => always_exits(then_blk) && always_exits(else_blk),
        _ => false,
    })
}

/// Catch clauses that belong to *this* loop: recurse through `if`/`try`/
/// `switch` nesting but stop at nested loops (their catches retry the
/// inner loop, not ours). Catches that exit on every path never re-enter
/// the loop, so they need no guard.
fn retrying_catches<'a>(block: &'a Block, out: &mut Vec<&'a CatchClause>) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                retrying_catches(then_blk, out);
                if let Some(else_blk) = else_blk {
                    retrying_catches(else_blk, out);
                }
            }
            Stmt::Try {
                body,
                catches,
                finally,
                ..
            } => {
                retrying_catches(body, out);
                for catch in catches {
                    if !always_exits(&catch.body) {
                        out.push(catch);
                    }
                    retrying_catches(&catch.body, out);
                }
                if let Some(finally) = finally {
                    retrying_catches(finally, out);
                }
            }
            Stmt::Switch { cases, default, .. } => {
                for (_, body) in cases {
                    retrying_catches(body, out);
                }
                if let Some(default) = default {
                    retrying_catches(default, out);
                }
            }
            Stmt::While { .. } | Stmt::For { .. } => {}
            _ => {}
        }
    }
}

fn ident(name: &str) -> Expr {
    Expr::Ident(name.to_string(), Span::dummy())
}

fn int(value: i64) -> Expr {
    Expr::Literal(Literal::Int(value), Span::dummy())
}

fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
    Expr::Binary {
        op,
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
        span: Span::dummy(),
    }
}

fn block_of(stmts: Vec<Stmt>) -> Block {
    let mut block = Block::empty();
    block.stmts = stmts;
    block
}

/// `var retryGuard = 0;` before the loop plus, in every retrying catch,
/// `retryGuard = retryGuard + 1; if (retryGuard >= 3) { <exit>; }`.
/// The guard is exactly the shape the static cap check recognizes (a
/// comparison whose then-block exits), and at run time it bounds the
/// injection count at 3, far under the oracle's unbounded threshold.
fn cap_patch(project: &Project, site: &PatchSite, rethrow: bool) -> Result<PatchedFile, String> {
    let file = &project.files[site.file.0 as usize];
    let loop_stmt = find_loop(project, site)?;
    let body = loop_body(loop_stmt)?;
    let mut catches = Vec::new();
    retrying_catches(body, &mut catches);
    if catches.is_empty() {
        return Err("no retrying catch clause to guard".to_string());
    }

    let loop_indent = line_indent(&file.source, site.span.start as usize);
    let decl = Stmt::Var {
        name: GUARD.to_string(),
        init: int(0),
        span: Span::dummy(),
    };
    let mut edits = vec![Edit {
        start: line_start(&file.source, site.span.start as usize),
        end: line_start(&file.source, site.span.start as usize),
        text: indent_block(&print_stmt(&decl), &loop_indent),
    }];

    for catch in &catches {
        let bump = Stmt::Assign {
            target: LValue::Var(GUARD.to_string(), Span::dummy()),
            value: binary(BinOp::Add, ident(GUARD), int(1)),
            span: Span::dummy(),
        };
        let exit = if rethrow {
            Stmt::Throw {
                expr: ident(&catch.binding),
                span: Span::dummy(),
            }
        } else {
            Stmt::Break { span: Span::dummy() }
        };
        let guard = Stmt::If {
            cond: binary(BinOp::GtEq, ident(GUARD), int(CAP)),
            then_blk: block_of(vec![exit]),
            else_blk: None,
            span: Span::dummy(),
        };
        let indent = format!("{}    ", line_indent(&file.source, catch.span.start as usize));
        let text = format!(
            "\n{}{}",
            indent_block(&print_stmt(&bump), &indent),
            indent_block(&print_stmt(&guard), &indent)
        );
        edits.push(Edit {
            start: catch.body.span.start as usize + 1,
            end: catch.body.span.start as usize + 1,
            text,
        });
    }

    Ok(PatchedFile {
        path: file.path.clone(),
        source: splice(&file.source, edits),
    })
}

/// A `sleep` in every retrying catch. `backoff` scales by the loop's
/// `for`-counter when it has one (`sleep(50 + 50 * i)` at catch end);
/// the constant variant sleeps `250` virtual ms at catch entry.
fn sleep_patch(project: &Project, site: &PatchSite, backoff: bool) -> Result<PatchedFile, String> {
    let file = &project.files[site.file.0 as usize];
    let loop_stmt = find_loop(project, site)?;
    let body = loop_body(loop_stmt)?;
    let mut catches = Vec::new();
    retrying_catches(body, &mut catches);
    if catches.is_empty() {
        return Err("no retrying catch clause to delay".to_string());
    }

    let counter = match loop_stmt {
        Stmt::For {
            init: Some(init), ..
        } => match init.as_ref() {
            Stmt::Var { name, .. } => Some(name.clone()),
            _ => None,
        },
        _ => None,
    };
    let ms = match (&counter, backoff) {
        (Some(counter), true) => binary(
            BinOp::Add,
            int(50),
            binary(BinOp::Mul, int(50), ident(counter)),
        ),
        (None, true) => int(100),
        (_, false) => int(250),
    };
    let sleep = Stmt::Sleep {
        ms,
        span: Span::dummy(),
    };

    let mut edits = Vec::new();
    for catch in &catches {
        let indent = format!("{}    ", line_indent(&file.source, catch.span.start as usize));
        let text = format!("\n{}", indent_block(&print_stmt(&sleep), &indent));
        // Backoff reads better after the handler's own work; the constant
        // delay guards even handlers that exit early down a branch.
        let at = if backoff {
            catch.body.span.end as usize - 1
        } else {
            catch.body.span.start as usize + 1
        };
        edits.push(Edit {
            start: at,
            end: at,
            text,
        });
    }

    Ok(PatchedFile {
        path: file.path.clone(),
        source: splice(&file.source, edits),
    })
}

/// Whether the loop body transfers control out of the loop at a level
/// that would escape once the loop statement is removed (`break` /
/// `continue` outside any nested loop or switch).
fn has_loop_control(block: &Block) -> bool {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Break { .. } | Stmt::Continue { .. } => return true,
            Stmt::If {
                then_blk, else_blk, ..
            } if has_loop_control(then_blk)
                || else_blk.as_ref().map(has_loop_control).unwrap_or(false) =>
            {
                return true;
            }
            Stmt::Try {
                body,
                catches,
                finally,
                ..
            } if has_loop_control(body)
                || catches.iter().any(|c| has_loop_control(&c.body))
                || finally.as_ref().map(has_loop_control).unwrap_or(false) =>
            {
                return true;
            }
            // A nested loop or switch re-binds break/continue; stop.
            Stmt::While { .. } | Stmt::For { .. } | Stmt::Switch { .. } => {}
            _ => {}
        }
    }
    false
}

/// Replaces the whole loop statement with its init (when it declares a
/// variable the body reads) followed by the body's own source text —
/// one attempt, straight through. The give-up path after the loop (the
/// corpus seeds end amplified loops with a `throw`) is untouched, so a
/// failed single attempt still propagates to the caller.
fn flatten_patch(project: &Project, site: &PatchSite) -> Result<PatchedFile, String> {
    let file = &project.files[site.file.0 as usize];
    let loop_stmt = find_loop(project, site)?;
    let body = loop_body(loop_stmt)?;
    if has_loop_control(body) {
        return Err("loop body breaks or continues; flattening would strand the jump".to_string());
    }
    let init = match loop_stmt {
        Stmt::For { init, .. } => init.as_deref(),
        _ => None,
    };

    let mut text = String::new();
    if let Some(init) = init {
        // First line lands where `for` began, so no indent prefix; the
        // body text below keeps its original (one level deeper) indent.
        text.push_str(print_stmt(init).trim_end());
    }
    let inner =
        &file.source[body.span.start as usize + 1..body.span.end as usize - 1];
    text.push_str(inner.trim_end_matches([' ', '\t']));
    let indent = line_indent(&file.source, site.span.start as usize);
    text.push_str(&indent);

    Ok(PatchedFile {
        path: file.path.clone(),
        source: splice(
            &file.source,
            vec![Edit {
                start: site.span.start as usize,
                end: site.span.end as usize,
                text,
            }],
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi_analysis::checkers::{lint_project, LintOptions};
    use wasabi_analysis::loops::LoopQueryOptions;
    use wasabi_analysis::patchsite::{amp_sites_for, patch_site_for};

    const FLAKY: &str = "exception IOException;\n\
        class Flaky {\n\
            method fetch() throws IOException {\n\
                for (var retry = 0; true; retry = retry + 1) {\n\
                    try { return this.pull(); } catch (IOException e) { log(\"retrying\"); }\n\
                }\n\
            }\n\
            method pull() throws IOException { return 1; }\n\
        }";

    fn compile(sources: Vec<(&str, &str)>) -> Project {
        Project::compile("templates", sources).expect("compile")
    }

    fn site_for(project: &Project, code: &str) -> PatchSite {
        let lint = lint_project(project, &LintOptions::default());
        let diag = lint
            .diagnostics
            .iter()
            .find(|d| d.code == code)
            .unwrap_or_else(|| panic!("no {code} diagnostic"));
        patch_site_for(project, diag, &LoopQueryOptions::default()).expect("site")
    }

    fn relint(source: &str) -> Vec<String> {
        let project = compile(vec![("Flaky.jav", source)]);
        lint_project(&project, &LintOptions::default())
            .diagnostics
            .iter()
            .map(|d| d.code.to_string())
            .collect()
    }

    #[test]
    fn cap_rethrow_silences_w001_and_preserves_unpatched_bytes() {
        let project = compile(vec![("Flaky.jav", FLAKY)]);
        let site = site_for(&project, "W001");
        let patch =
            synthesize(Template::CapRethrow, &project, &site, None).expect("applicable");
        assert!(patch.source.contains("var retryGuard = 0;"));
        assert!(patch.source.contains("if (retryGuard >= 3) {"));
        assert!(patch.source.contains("throw e;"));
        // Splice-only: the original text survives as subsequences around
        // the insertions; in particular the comment-free prefix is intact.
        assert!(patch.source.contains("method fetch() throws IOException {"));
        let codes = relint(&patch.source);
        assert!(!codes.contains(&"W001".to_string()), "W001 gone: {codes:?}");
    }

    #[test]
    fn cap_break_uses_break_instead_of_rethrow() {
        let project = compile(vec![("Flaky.jav", FLAKY)]);
        let site = site_for(&project, "W001");
        let patch = synthesize(Template::CapBreak, &project, &site, None).expect("applicable");
        assert!(patch.source.contains("if (retryGuard >= 3) {"));
        assert!(!patch.source.contains("throw e;"));
        assert!(!relint(&patch.source).contains(&"W001".to_string()));
    }

    #[test]
    fn sleep_templates_silence_w002() {
        let project = compile(vec![("Flaky.jav", FLAKY)]);
        let site = site_for(&project, "W002");
        let backoff =
            synthesize(Template::SleepBackoff, &project, &site, None).expect("applicable");
        assert!(backoff.source.contains("sleep(50 + 50 * retry);"));
        assert!(!relint(&backoff.source).contains(&"W002".to_string()));

        let constant =
            synthesize(Template::SleepConst, &project, &site, None).expect("applicable");
        assert!(constant.source.contains("sleep(250);"));
        assert!(!relint(&constant.source).contains(&"W002".to_string()));
    }

    #[test]
    fn flatten_inner_removes_amplification() {
        let src = "exception IOException;\n\
            class Amp {\n\
                method outer() throws IOException {\n\
                    for (var retry = 0; retry < 5; retry = retry + 1) {\n\
                        try { return this.inner(); } catch (IOException e) { sleep(10); }\n\
                    }\n\
                    throw new IOException(\"outer exhausted\");\n\
                }\n\
                method inner() throws IOException {\n\
                    for (var retries = 0; retries < 4; retries = retries + 1) {\n\
                        try { return this.leaf(); } catch (IOException e) { sleep(10); }\n\
                    }\n\
                    throw new IOException(\"inner exhausted\");\n\
                }\n\
                method leaf() throws IOException { return 1; }\n\
            }";
        let project = compile(vec![("Amp.jav", src)]);
        let lint = lint_project(&project, &LintOptions::default());
        let diag = lint.diagnostics.iter().find(|d| d.code == "A001").expect("A001");
        let (outer, inner) =
            amp_sites_for(&project, diag, &LoopQueryOptions::default()).expect("sites");
        let patch =
            synthesize(Template::FlattenInner, &project, &outer, Some(&inner)).expect("applicable");
        // The inner loop is gone; its init survives for body references.
        assert!(patch.source.contains("var retries = 0;"));
        assert!(!patch.source.contains("retries < 4"));
        assert!(patch.source.contains("throw new IOException(\"inner exhausted\");"));
        let repaired = compile(vec![("Amp.jav", &patch.source)]);
        let codes: Vec<_> = lint_project(&repaired, &LintOptions::default())
            .diagnostics
            .iter()
            .map(|d| d.code)
            .collect();
        assert!(!codes.contains(&"A001"), "A001 gone: {codes:?}");
    }

    #[test]
    fn flatten_refuses_bodies_with_loose_break() {
        let src = "exception E;\n\
            class C {\n\
                method run() throws E {\n\
                    for (var retry = 0; retry < 5; retry = retry + 1) {\n\
                        try { return this.op(); } catch (E e) { }\n\
                        if (retry > 2) { break; }\n\
                    }\n\
                    throw new E(\"done\");\n\
                }\n\
                method op() throws E { return 1; }\n\
            }";
        let project = compile(vec![("C.jav", src)]);
        let site = site_for(&project, "W002");
        let err = synthesize(Template::FlattenOuter, &project, &site, None).unwrap_err();
        assert!(err.contains("flatten"), "reason mentions flattening: {err}");
    }
}
