//! Deterministic `repair_report.json` rendering and ground-truth
//! scoring.
//!
//! The report is a pure function of a [`RepairOutcome`]: no timings, no
//! worker counts, no host state — so `--jobs 1` and `--jobs 4` produce
//! byte-identical documents, same as every other report in the
//! workspace. Rates are emitted as integer percentages (floor), never
//! floats, so formatting can never drift.

use crate::driver::{RepairOutcome, TargetResult};
use wasabi_corpus::truth::{AppTruth, SeededBug};
use wasabi_util::Json;

/// Diagnostic codes in report order.
const CODES: [&str; 3] = ["W001", "W002", "A001"];

fn target_json(target: &TargetResult) -> Json {
    Json::obj([
        ("code", Json::Str(target.code.clone())),
        ("coordinator", Json::Str(target.coordinator.clone())),
        ("file", Json::Str(target.file.clone())),
        (
            "chain",
            Json::arr(target.chain.iter().map(|hop| Json::Str(hop.clone()))),
        ),
        (
            "dynamically_confirmed",
            Json::Bool(target.dynamically_confirmed),
        ),
        ("fixed", Json::Bool(target.fixed)),
        ("attempts", Json::Int(target.attempts as i64)),
        (
            "templates",
            Json::arr(target.tried.iter().map(|attempt| {
                Json::obj([
                    ("template", Json::Str(attempt.template.to_string())),
                    ("accepted", Json::Bool(attempt.accepted)),
                    ("reason", Json::Str(attempt.reason.clone())),
                ])
            })),
        ),
        ("reason", Json::Str(target.reason.clone())),
    ])
}

/// Renders the full repair report document.
pub fn render_report(outcome: &RepairOutcome, truth: Option<&AppTruth>) -> Json {
    let by_code = CODES.iter().map(|code| {
        let of_code: Vec<&TargetResult> = outcome
            .targets
            .iter()
            .filter(|t| t.code == *code)
            .collect();
        Json::obj([
            ("code", Json::Str(code.to_string())),
            ("targets", Json::Int(of_code.len() as i64)),
            (
                "fixed",
                Json::Int(of_code.iter().filter(|t| t.fixed).count() as i64),
            ),
        ])
    });

    // Attempts histogram over *fixed* targets: how many validated
    // candidates each fix needed (0 = side-effect fix).
    let max_attempts = outcome
        .targets
        .iter()
        .filter(|t| t.fixed)
        .map(|t| t.attempts)
        .max()
        .unwrap_or(0);
    let histogram = (0..=max_attempts).map(|n| {
        let count = outcome
            .targets
            .iter()
            .filter(|t| t.fixed && t.attempts == n)
            .count();
        Json::obj([
            ("attempts", Json::Int(n as i64)),
            ("fixed", Json::Int(count as i64)),
        ])
    });

    let mut fields = vec![
        ("tool".to_string(), Json::Str("wasabi repair".to_string())),
        ("app".to_string(), Json::Str(outcome.app.clone())),
        (
            "max_fix_attempts".to_string(),
            Json::Int(outcome.max_fix_attempts as i64),
        ),
        (
            "summary".to_string(),
            Json::obj([
                ("targets", Json::Int(outcome.targets.len() as i64)),
                (
                    "fixed",
                    Json::Int(outcome.targets.iter().filter(|t| t.fixed).count() as i64),
                ),
                ("by_code", Json::arr(by_code)),
                ("attempts_histogram", Json::arr(histogram)),
            ]),
        ),
        (
            "campaign".to_string(),
            Json::obj([
                ("baseline_runs", Json::Int(outcome.baseline_runs as i64)),
                ("validation_runs", Json::Int(outcome.validation_runs as i64)),
            ]),
        ),
        (
            "targets".to_string(),
            Json::arr(outcome.targets.iter().map(target_json)),
        ),
    ];
    if let Some(truth) = truth {
        fields.push(("truth".to_string(), score_against_truth(outcome, truth)));
    }
    Json::Obj(fields)
}

fn fixed_for(outcome: &RepairOutcome, code: &str, coordinator: &str) -> bool {
    outcome
        .targets
        .iter()
        .any(|t| t.code == code && t.coordinator == coordinator && t.fixed)
}

/// Scores a repair outcome against the corpus ground truth: per class,
/// how many seeded bugs were fixable (reachable by lint at all — see
/// [`wasabi_corpus::truth::StructureTruth::when_fixable`]) and how many
/// of those the repair loop actually fixed.
pub fn score_against_truth(outcome: &RepairOutcome, truth: &AppTruth) -> Json {
    let mut classes = Vec::new();
    let mut total_fixable = 0usize;
    let mut total_fixed = 0usize;
    for (code, bug) in [
        ("W001", SeededBug::MissingCap),
        ("W002", SeededBug::MissingDelay),
    ] {
        let seeded = truth.bug_count(bug);
        let fixable: Vec<_> = truth
            .structures
            .iter()
            .filter(|s| s.when_fixable(bug))
            .collect();
        let fixed = fixable
            .iter()
            .filter(|s| fixed_for(outcome, code, &s.coordinator.to_string()))
            .count();
        total_fixable += fixable.len();
        total_fixed += fixed;
        classes.push(Json::obj([
            ("code", Json::Str(code.to_string())),
            ("seeded", Json::Int(seeded as i64)),
            ("fixable", Json::Int(fixable.len() as i64)),
            ("fixed", Json::Int(fixed as i64)),
        ]));
    }
    let genuine: Vec<_> = truth.amp_seeds.iter().filter(|a| a.genuine).collect();
    let amp_fixed = genuine
        .iter()
        .filter(|a| fixed_for(outcome, "A001", &a.coordinator.to_string()))
        .count();
    total_fixable += genuine.len();
    total_fixed += amp_fixed;
    classes.push(Json::obj([
        ("code", Json::Str("A001".to_string())),
        ("seeded", Json::Int(truth.amp_seeds.len() as i64)),
        ("fixable", Json::Int(genuine.len() as i64)),
        ("fixed", Json::Int(amp_fixed as i64)),
    ]));

    let rate = (total_fixed * 100)
        .checked_div(total_fixable)
        .unwrap_or(100);
    Json::obj([
        ("classes", Json::arr(classes)),
        ("fixable", Json::Int(total_fixable as i64)),
        ("fixed", Json::Int(total_fixed as i64)),
        ("fix_rate_percent", Json::Int(rate as i64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::TemplateAttempt;
    use wasabi_corpus::truth::{StructureKind, StructureTruth, Visibility};
    use wasabi_lang::project::MethodId;

    fn outcome() -> RepairOutcome {
        RepairOutcome {
            app: "T".to_string(),
            targets: vec![
                TargetResult {
                    code: "W001".to_string(),
                    coordinator: "Retry0.run".to_string(),
                    chain: vec![],
                    file: "src/retry0.jav".to_string(),
                    dynamically_confirmed: true,
                    fixed: true,
                    attempts: 1,
                    tried: vec![TemplateAttempt {
                        template: "cap-rethrow",
                        accepted: true,
                        reason: String::new(),
                    }],
                    reason: String::new(),
                },
                TargetResult {
                    code: "W002".to_string(),
                    coordinator: "Retry1.run".to_string(),
                    chain: vec![],
                    file: "src/retry1.jav".to_string(),
                    dynamically_confirmed: false,
                    fixed: false,
                    attempts: 2,
                    tried: vec![],
                    reason: "all templates rejected".to_string(),
                },
            ],
            sources: vec![],
            baseline_runs: 10,
            validation_runs: 4,
            max_fix_attempts: 3,
        }
    }

    #[test]
    fn report_counts_and_histogram() {
        let report = render_report(&outcome(), None);
        let summary = report.get("summary").expect("summary");
        assert_eq!(summary.get("targets").and_then(Json::as_i64), Some(2));
        assert_eq!(summary.get("fixed").and_then(Json::as_i64), Some(1));
        let histogram = summary
            .get("attempts_histogram")
            .and_then(Json::as_arr)
            .expect("histogram");
        // Buckets 0 and 1; the unfixed target's attempts do not count.
        assert_eq!(histogram.len(), 2);
        assert_eq!(histogram[1].get("fixed").and_then(Json::as_i64), Some(1));
        assert!(report.get("truth").is_none());
        // Determinism smoke: rendering twice is byte-identical.
        assert_eq!(
            render_report(&outcome(), None).pretty(),
            report.pretty()
        );
    }

    #[test]
    fn truth_scoring_counts_only_fixable() {
        let structure = |class: &str, bug, keyword| StructureTruth {
            id: format!("T-{class}"),
            kind: StructureKind::LoopException,
            coordinator: MethodId::new(class, "run"),
            file_path: format!("src/{class}.jav"),
            bugs: vec![bug],
            traps: vec![],
            visibility: Visibility {
                keyword_evidence: keyword,
                large_file: false,
            },
            covered_by_tests: true,
            exceptions: vec!["IOException".to_string()],
        };
        let truth = AppTruth {
            app: "T".to_string(),
            structures: vec![
                structure("Retry0", SeededBug::MissingCap, true),
                structure("Retry1", SeededBug::MissingDelay, true),
                // Keyword-invisible: excluded from the denominator.
                structure("Retry2", SeededBug::MissingCap, false),
            ],
            ..AppTruth::default()
        };
        let score = score_against_truth(&outcome(), &truth);
        assert_eq!(score.get("fixable").and_then(Json::as_i64), Some(2));
        assert_eq!(score.get("fixed").and_then(Json::as_i64), Some(1));
        assert_eq!(
            score.get("fix_rate_percent").and_then(Json::as_i64),
            Some(50)
        );
    }
}
