//! The repair loop: confirm → synthesize → validate → iterate.
//!
//! [`repair`] runs the full pipeline once to establish a baseline (lint
//! diagnostics, full fault-injection campaign), then visits each W001 /
//! W002 / A001 diagnostic **in diagnostic order** and tries templates
//! until one validates or the attempt budget runs out. Validation is the
//! detection machinery re-aimed at the candidate:
//!
//! 1. the candidate must compile;
//! 2. re-linting must show the target diagnostic gone and no *new*
//!    W/A-class diagnostic (fingerprints ⊆ the pre-patch set — the
//!    subset check is scoped to retry-bug codes so an unrelated checker
//!    family cannot veto a correct retry fix);
//! 3. the *targeted* campaign — only the runs whose retry location lives
//!    in a patched coordinator, selected by
//!    [`wasabi_planner::plan::targeted_runs`] over the same key-sorted
//!    plan — must come back green: every record passed, was a filtered
//!    give-up rethrow, was not a trigger, or reproduced its baseline
//!    outcome kind; no record may time out, crash, or carry an oracle
//!    report absent from the baseline; and the target's own bug kind
//!    must no longer fire at the patched coordinator.
//!
//! A rejected candidate's failing-run trace is fed into the next
//! template choice ([`select_template`]); run keys are splice-stable
//! (insertions add no calls, and flattening removes none), so baseline
//! outcomes stay addressable across candidates.
//!
//! Targets are keyed by `(code, coordinator, chain)`, not by position,
//! so a diagnostic that disappears as a side effect of an earlier fix
//! (e.g. one flatten killing two amplification chains) is recorded as
//! fixed with zero attempts.

use crate::templates::{synthesize, templates_for, PatchedFile, Template};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use wasabi_analysis::checkers::{lint_project, LintOptions, LintResult};
use wasabi_analysis::diag::Diagnostic;
use wasabi_analysis::loops::LoopQueryOptions;
use wasabi_analysis::patchsite::{amp_sites_for, patch_site_for, PatchSite};
use wasabi_core::api::{compile_app, AppJob};
use wasabi_core::dynamic::{prepare_campaign, DynamicOptions, PreparedCampaign};
use wasabi_engine::campaign::{run_campaign, CampaignOptions, RunRecord};
use wasabi_engine::observer::outcome_kind;
use wasabi_engine::NullObserver;
use wasabi_oracles::OracleConfig;
use wasabi_planner::plan::{targeted_runs, RunKey};
use wasabi_planner::profile_cache::ProfileCacheOptions;

/// Configuration for one repair session.
#[derive(Debug, Clone)]
pub struct RepairOptions {
    /// Campaign worker count; the emitted report is identical for any
    /// value.
    pub jobs: usize,
    /// Maximum validated candidate patches per target.
    pub max_fix_attempts: u32,
    /// Seed for the simulated LLM's identification pass (corpus mode
    /// uses the app spec's seed, file mode 0 — same as `wasabi test`).
    pub llm_seed: u64,
    /// Oracle thresholds for baseline and validation campaigns.
    pub oracle: OracleConfig,
    /// Injection budgets (the paper's K = 1 and K = 100).
    pub ks: Vec<u32>,
    /// Retry-loop query options for lint and site resolution.
    pub loops: LoopQueryOptions,
    /// Profile-cache directory; validation campaigns re-profile each
    /// candidate, so caching by source digest pays off across attempts.
    pub profile_cache: Option<PathBuf>,
}

impl Default for RepairOptions {
    fn default() -> Self {
        RepairOptions {
            jobs: 1,
            max_fix_attempts: 3,
            llm_seed: 0,
            oracle: OracleConfig::default(),
            ks: vec![1, 100],
            loops: LoopQueryOptions::default(),
            profile_cache: None,
        }
    }
}

/// One template tried against one target.
#[derive(Debug, Clone)]
pub struct TemplateAttempt {
    /// Template name (see [`Template::name`]).
    pub template: &'static str,
    /// Whether the candidate validated and was committed.
    pub accepted: bool,
    /// Rejection reason (empty when accepted).
    pub reason: String,
}

/// The outcome for one diagnostic target.
#[derive(Debug, Clone)]
pub struct TargetResult {
    /// Diagnostic code (`W001` / `W002` / `A001`).
    pub code: String,
    /// Coordinator method string.
    pub coordinator: String,
    /// Interprocedural chain (empty for intraprocedural findings).
    pub chain: Vec<String>,
    /// File the baseline diagnostic anchored at.
    pub file: String,
    /// Whether a baseline oracle report of the matching kind confirmed
    /// the finding dynamically (A001 is a static-only finding and is
    /// always `false`).
    pub dynamically_confirmed: bool,
    /// Whether the diagnostic is gone in the final sources.
    pub fixed: bool,
    /// Validated candidate patches tried (0 = fixed as a side effect of
    /// an earlier target's patch).
    pub attempts: u32,
    /// Every template tried, in order.
    pub tried: Vec<TemplateAttempt>,
    /// Why the target stayed unfixed (empty when fixed).
    pub reason: String,
}

/// The result of a repair session.
#[derive(Debug)]
pub struct RepairOutcome {
    /// App name (report header).
    pub app: String,
    /// Per-target results, in baseline diagnostic order.
    pub targets: Vec<TargetResult>,
    /// Final sources with all accepted patches applied.
    pub sources: Vec<(String, String)>,
    /// Runs in the baseline campaign.
    pub baseline_runs: usize,
    /// Total runs executed across all validation campaigns.
    pub validation_runs: usize,
    /// `max_fix_attempts` echoed for the report.
    pub max_fix_attempts: u32,
}

/// Identity of a target across re-lints: positions move as patches land,
/// `(code, coordinator, chain)` does not.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct TargetKey {
    code: String,
    coordinator: String,
    chain: Vec<String>,
}

impl TargetKey {
    fn of(diag: &Diagnostic) -> TargetKey {
        TargetKey {
            code: diag.code.to_string(),
            coordinator: diag.coordinator.clone(),
            chain: diag.chain.clone(),
        }
    }
}

/// The oracle kind that dynamically confirms a lint code (`A001` has no
/// dynamic counterpart).
fn oracle_kind(code: &str) -> Option<&'static str> {
    match code {
        "W001" => Some("missing-cap"),
        "W002" => Some("missing-delay"),
        _ => None,
    }
}

fn is_retry_code(code: &str) -> bool {
    matches!(code, "W001" | "W002" | "A001")
}

/// Compiled state for the current source set.
struct Compiled {
    job: AppJob,
    lint: LintResult,
}

fn compile_and_lint(
    name: &str,
    sources: &[(String, String)],
    options: &RepairOptions,
    lint_opts: &LintOptions,
) -> Result<Compiled, String> {
    let job = compile_app(name, sources.to_vec(), options.llm_seed).map_err(|diags| {
        let first = diags
            .first()
            .map(|d| d.to_string())
            .unwrap_or_else(|| "unknown error".to_string());
        format!("candidate does not compile: {first}")
    })?;
    let lint = lint_project(&job.project, lint_opts);
    Ok(Compiled { job, lint })
}

fn dynamic_options(job: &AppJob, options: &RepairOptions) -> DynamicOptions {
    DynamicOptions {
        ks: options.ks.clone(),
        jobs: options.jobs,
        oracle: options.oracle,
        capture_timing: false,
        profile_cache: options.profile_cache.as_ref().map(|dir| ProfileCacheOptions {
            dir: dir.clone(),
            digest: job.digest,
            bypass: false,
        }),
        ..DynamicOptions::default()
    }
}

fn campaign_options(prepared: &PreparedCampaign, options: &RepairOptions) -> CampaignOptions {
    CampaignOptions {
        jobs: options.jobs,
        run_options: prepared.run_options.clone(),
        oracle: options.oracle,
        capture_timing: false,
        ..CampaignOptions::default()
    }
}

/// One failing run rendered for the rejection log and the next template
/// choice — the record's key, outcome, and any oracle findings.
fn describe_record(record: &RunRecord) -> String {
    let mut out = format!(
        "{} site {:?}/{:?} {} k={} -> {}",
        record.key.test,
        record.key.site.file,
        record.key.site.call,
        record.key.exception,
        record.key.k,
        outcome_kind(&record.outcome),
    );
    if let wasabi_engine::campaign::RunOutcome::Completed(test_outcome) = &record.outcome {
        out.push_str(&format!(" ({test_outcome:?})"));
    }
    for report in &record.reports {
        out.push_str(&format!("; {}: {}", report.kind, report.detail));
    }
    out
}

/// Picks the next untried template. The previous rejection's trace
/// re-ranks the remainder: an assertion failure means the give-up path's
/// result is observed, so prefer rethrowing over breaking; a surviving
/// missing-delay report means the handler's tail is skipped on some
/// path, so prefer the unconditional catch-entry sleep.
fn select_template(code: &str, tried: &[TemplateAttempt], trace: &str) -> Option<Template> {
    let remaining: Vec<Template> = templates_for(code)
        .iter()
        .copied()
        .filter(|t| !tried.iter().any(|a| a.template == t.name()))
        .collect();
    let trace = trace.to_lowercase();
    if trace.contains("assert") {
        if let Some(t) = remaining.iter().find(|t| **t == Template::CapRethrow) {
            return Some(*t);
        }
    }
    if trace.contains("missing-delay") {
        if let Some(t) = remaining.iter().find(|t| **t == Template::SleepConst) {
            return Some(*t);
        }
    }
    remaining.first().copied()
}

fn apply_patch(sources: &[(String, String)], patch: &PatchedFile) -> Vec<(String, String)> {
    sources
        .iter()
        .map(|(path, text)| {
            if *path == patch.path {
                (path.clone(), patch.source.clone())
            } else {
                (path.clone(), text.clone())
            }
        })
        .collect()
}

/// W/A-class fingerprints of a lint result — the set the no-new-findings
/// subset check runs over.
fn retry_fingerprints(lint: &LintResult) -> BTreeSet<String> {
    lint.diagnostics
        .iter()
        .filter(|d| is_retry_code(d.code))
        .map(|d| d.fingerprint())
        .collect()
}

struct Validated {
    compiled: Compiled,
    runs_executed: usize,
}

/// Validates one candidate. `Err` carries `(reason, failing-run trace)`.
#[allow(clippy::too_many_arguments)]
fn validate_candidate(
    name: &str,
    candidate: &[(String, String)],
    target: &TargetKey,
    coordinators: &BTreeSet<String>,
    options: &RepairOptions,
    lint_opts: &LintOptions,
    pre_patch_fingerprints: &BTreeSet<String>,
    baseline_outcomes: &BTreeMap<RunKey, String>,
    baseline_reports: &BTreeSet<(String, String)>,
) -> Result<Validated, (String, String)> {
    let compiled = compile_and_lint(name, candidate, options, lint_opts)
        .map_err(|e| (e, String::new()))?;

    if compiled
        .lint
        .diagnostics
        .iter()
        .any(|d| TargetKey::of(d) == *target)
    {
        return Err((
            "target diagnostic survives the patch".to_string(),
            String::new(),
        ));
    }
    let fresh: Vec<String> = compiled
        .lint
        .diagnostics
        .iter()
        .filter(|d| is_retry_code(d.code))
        .map(|d| d.fingerprint())
        .filter(|fp| !pre_patch_fingerprints.contains(fp))
        .collect();
    if let Some(first) = fresh.first() {
        return Err((format!("patch introduces a new finding: {first}"), String::new()));
    }

    let dyn_opts = dynamic_options(&compiled.job, options);
    let prepared = prepare_campaign(
        &compiled.job.project,
        &compiled.job.identified.locations,
        &dyn_opts,
        &mut NullObserver,
    );
    let runs = targeted_runs(&prepared.runs, coordinators);
    let result = run_campaign(
        &compiled.job.project,
        &runs,
        &campaign_options(&prepared, options),
        &mut NullObserver,
    );

    let target_kind = oracle_kind(&target.code);
    for record in &result.records {
        let kind = outcome_kind(&record.outcome);
        let trace = describe_record(record);
        if matches!(kind, "timed_out" | "crashed") || record.quarantined {
            return Err(("validation run did not complete".to_string(), trace));
        }
        if let Some(bug) = target_kind {
            let still_fires = record.reports.iter().any(|r| {
                r.kind.to_string() == bug
                    && coordinators.contains(&r.location.coordinator.to_string())
            });
            if still_fires {
                return Err((format!("{bug} oracle still fires"), trace));
            }
        }
        for report in &record.reports {
            let key = (report.kind.to_string(), report.dedup_key.clone());
            if !baseline_reports.contains(&key) {
                return Err((
                    format!("patch introduces a new {} report", report.kind),
                    trace,
                ));
            }
        }
        let acceptable = kind == "passed"
            || record.rethrow_filtered
            || record.not_a_trigger
            || baseline_outcomes.get(&record.key).map(String::as_str) == Some(kind);
        if !acceptable {
            return Err((format!("run regressed to {kind}"), trace));
        }
    }

    Ok(Validated {
        compiled,
        runs_executed: runs.len(),
    })
}

/// Runs the repair loop over `sources`. See the module docs for the
/// protocol; the returned outcome is deterministic in `(name, sources,
/// options)` — `jobs` never changes it.
pub fn repair(
    name: &str,
    sources: Vec<(String, String)>,
    options: &RepairOptions,
) -> Result<RepairOutcome, String> {
    let lint_opts = LintOptions {
        jobs: options.jobs,
        loops: options.loops.clone(),
        // Repair only targets retry codes; IF-ratio info findings would
        // just be recomputed on every candidate for nothing.
        ifratio: false,
    };
    let mut current = sources;
    let mut compiled = compile_and_lint(name, &current, options, &lint_opts)
        .map_err(|e| e.replace("candidate does not compile", "sources do not compile"))?;

    // Baseline campaign: outcome kinds and report keys per run key, the
    // reference every validation compares against.
    let dyn_opts = dynamic_options(&compiled.job, options);
    let prepared = prepare_campaign(
        &compiled.job.project,
        &compiled.job.identified.locations,
        &dyn_opts,
        &mut NullObserver,
    );
    let baseline = run_campaign(
        &compiled.job.project,
        &prepared.runs,
        &campaign_options(&prepared, options),
        &mut NullObserver,
    );
    let baseline_runs = prepared.runs.len();
    let baseline_outcomes: BTreeMap<RunKey, String> = baseline
        .records
        .iter()
        .map(|r| (r.key.clone(), outcome_kind(&r.outcome).to_string()))
        .collect();
    let baseline_reports: BTreeSet<(String, String)> = baseline
        .records
        .iter()
        .flat_map(|r| {
            r.reports
                .iter()
                .map(|rep| (rep.kind.to_string(), rep.dedup_key.clone()))
        })
        .collect();
    let confirmed_coordinators: BTreeSet<(String, String)> = baseline
        .records
        .iter()
        .flat_map(|r| {
            r.reports
                .iter()
                .map(|rep| (rep.kind.to_string(), rep.location.coordinator.to_string()))
        })
        .collect();

    // Targets, in baseline diagnostic (= sorted) order.
    let targets: Vec<(TargetKey, String)> = compiled
        .lint
        .diagnostics
        .iter()
        .filter(|d| is_retry_code(d.code))
        .map(|d| (TargetKey::of(d), d.file.clone()))
        .collect();

    let mut results = Vec::new();
    let mut validation_runs = 0usize;
    for (target, file) in targets {
        let dynamically_confirmed = oracle_kind(&target.code)
            .map(|kind| {
                confirmed_coordinators.contains(&(kind.to_string(), target.coordinator.clone()))
            })
            .unwrap_or(false);
        let mut tried: Vec<TemplateAttempt> = Vec::new();
        let mut attempts = 0u32;
        let mut fixed = false;
        let mut reason = String::new();
        let mut last_trace = String::new();

        loop {
            let live = compiled
                .lint
                .diagnostics
                .iter()
                .find(|d| TargetKey::of(d) == target)
                .cloned();
            let Some(diag) = live else {
                fixed = true;
                break;
            };
            if attempts >= options.max_fix_attempts {
                reason = "attempt budget exhausted".to_string();
                break;
            }
            let Some(template) = select_template(&target.code, &tried, &last_trace) else {
                reason = if tried.is_empty() {
                    "no template for this code".to_string()
                } else {
                    "all templates rejected".to_string()
                };
                break;
            };

            // Resolve the patch site(s) against the *current* sources —
            // positions move as earlier fixes land.
            let resolved: Option<(PatchSite, Option<PatchSite>)> = if target.code == "A001" {
                amp_sites_for(&compiled.job.project, &diag, &options.loops)
                    .map(|(outer, inner)| (outer, Some(inner)))
            } else {
                patch_site_for(&compiled.job.project, &diag, &options.loops)
                    .map(|site| (site, None))
            };
            let Some((site, inner)) = resolved else {
                reason = "could not resolve the diagnostic to a loop".to_string();
                break;
            };

            match synthesize(template, &compiled.job.project, &site, inner.as_ref()) {
                Err(why) => {
                    tried.push(TemplateAttempt {
                        template: template.name(),
                        accepted: false,
                        reason: format!("inapplicable: {why}"),
                    });
                }
                Ok(patch) => {
                    attempts += 1;
                    let candidate = apply_patch(&current, &patch);
                    let mut coordinators = BTreeSet::new();
                    coordinators.insert(target.coordinator.clone());
                    if let Some(inner) = &inner {
                        coordinators.insert(inner.method.to_string());
                    }
                    match validate_candidate(
                        name,
                        &candidate,
                        &target,
                        &coordinators,
                        options,
                        &lint_opts,
                        &retry_fingerprints(&compiled.lint),
                        &baseline_outcomes,
                        &baseline_reports,
                    ) {
                        Ok(validated) => {
                            validation_runs += validated.runs_executed;
                            tried.push(TemplateAttempt {
                                template: template.name(),
                                accepted: true,
                                reason: String::new(),
                            });
                            current = candidate;
                            compiled = validated.compiled;
                            fixed = true;
                            break;
                        }
                        Err((why, trace)) => {
                            let detail = if trace.is_empty() {
                                why
                            } else {
                                format!("{why}: {trace}")
                            };
                            last_trace = detail.clone();
                            tried.push(TemplateAttempt {
                                template: template.name(),
                                accepted: false,
                                reason: detail,
                            });
                        }
                    }
                }
            }
        }

        results.push(TargetResult {
            code: target.code.clone(),
            coordinator: target.coordinator.clone(),
            chain: target.chain.clone(),
            file,
            dynamically_confirmed,
            fixed,
            attempts,
            tried,
            reason,
        });
    }

    Ok(RepairOutcome {
        app: name.to_string(),
        targets: results,
        sources: current,
        baseline_runs,
        validation_runs,
        max_fix_attempts: options.max_fix_attempts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_selection_skips_rejected_and_honors_trace() {
        let tried = vec![TemplateAttempt {
            template: "cap-rethrow",
            accepted: false,
            reason: "x".to_string(),
        }];
        assert_eq!(
            select_template("W001", &tried, ""),
            Some(Template::CapBreak)
        );
        assert_eq!(select_template("W001", &[], ""), Some(Template::CapRethrow));
        // Assertion trace pins the rethrow variant when still available.
        let tried_break = vec![TemplateAttempt {
            template: "cap-break",
            accepted: false,
            reason: "run regressed: AssertionFailed".to_string(),
        }];
        assert_eq!(
            select_template("W001", &tried_break, "run regressed: AssertionFailed"),
            Some(Template::CapRethrow)
        );
        // Surviving missing-delay prefers the unconditional entry sleep.
        let tried_backoff = vec![TemplateAttempt {
            template: "sleep-backoff",
            accepted: false,
            reason: "missing-delay oracle still fires".to_string(),
        }];
        assert_eq!(
            select_template("W002", &tried_backoff, "missing-delay oracle still fires"),
            Some(Template::SleepConst)
        );
        let exhausted = vec![
            TemplateAttempt {
                template: "cap-rethrow",
                accepted: false,
                reason: String::new(),
            },
            TemplateAttempt {
                template: "cap-break",
                accepted: false,
                reason: String::new(),
            },
        ];
        assert_eq!(select_template("W001", &exhausted, "assert"), None);
        assert_eq!(select_template("X999", &[], ""), None);
    }

    #[test]
    fn repair_fixes_when_bugs_end_to_end() {
        // Flaky has an uncapped, undelayed retry loop with a covering
        // test; Solid is a clean capped+delayed loop that must stay
        // byte-identical.
        let flaky = "exception IOException;\n\
            class Flaky {\n\
                field attempts = 0;\n\
                method fetch() throws IOException {\n\
                    for (var retry = 0; true; retry = retry + 1) {\n\
                        try { return this.pull(); } catch (IOException e) { log(\"retrying\"); }\n\
                    }\n\
                }\n\
                method pull() throws IOException {\n\
                    this.attempts = this.attempts + 1;\n\
                    return this.attempts;\n\
                }\n\
                test fetchWorks() {\n\
                    var flaky = new Flaky();\n\
                    assert(flaky.fetch() > 0, \"fetch returns a value\");\n\
                }\n\
            }";
        let solid = "class Solid {\n\
                method get() throws IOException {\n\
                    for (var retry = 0; retry < 3; retry = retry + 1) {\n\
                        try { return this.read(); } catch (IOException e) { sleep(100); }\n\
                    }\n\
                    throw new IOException(\"gave up\");\n\
                }\n\
                method read() throws IOException { return 7; }\n\
                test getWorks() {\n\
                    var solid = new Solid();\n\
                    assert(solid.get() == 7, \"read value\");\n\
                }\n\
            }";
        let sources = vec![
            ("Flaky.jav".to_string(), flaky.to_string()),
            ("Solid.jav".to_string(), solid.to_string()),
        ];
        let outcome = repair("driver-test", sources, &RepairOptions::default()).expect("repair");

        assert_eq!(outcome.targets.len(), 2, "W001 + W002 on Flaky.fetch");
        for target in &outcome.targets {
            assert_eq!(target.coordinator, "Flaky.fetch");
            assert!(
                target.fixed,
                "{} unfixed: {} ({:?})",
                target.code, target.reason, target.tried
            );
            assert!(target.attempts <= 3);
            assert!(target.dynamically_confirmed, "{} confirmed", target.code);
        }
        let solid_out = outcome
            .sources
            .iter()
            .find(|(p, _)| p == "Solid.jav")
            .expect("solid present");
        assert_eq!(solid_out.1, solid, "clean file untouched");
        let flaky_out = outcome
            .sources
            .iter()
            .find(|(p, _)| p == "Flaky.jav")
            .expect("flaky present");
        assert!(flaky_out.1.contains("retryGuard"), "cap inserted");
        assert!(flaky_out.1.contains("sleep("), "delay inserted");
        assert!(outcome.baseline_runs > 0);
        assert!(outcome.validation_runs > 0, "validation actually ran");
    }
}
