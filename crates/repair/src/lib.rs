#![forbid(unsafe_code)]
//! Auto-repair for confirmed retry bugs — the loop-closing back half of
//! the WASABI pipeline (`wasabi repair`).
//!
//! The paper's tooling stops at *detection*: lint anchors a WHEN or
//! amplification finding, the fault-injection campaign confirms it. This
//! crate takes the next step and synthesizes a source patch per finding,
//! then proves the patch with the same machinery that found the bug:
//!
//! - **W001 (missing cap)** — insert a `retryGuard` counter before the
//!   loop and a `retryGuard >= 3` exit guard into each retrying catch
//!   ([`templates::Template::CapRethrow`] rethrows the caught exception,
//!   [`templates::Template::CapBreak`] breaks out of the loop);
//! - **W002 (missing delay)** — add a `sleep` to each retrying catch,
//!   either backoff-shaped from the loop counter
//!   ([`templates::Template::SleepBackoff`]) or constant at catch entry
//!   ([`templates::Template::SleepConst`]);
//! - **A001 (retry amplification)** — flatten one of the two nested
//!   retry loops to a single attempt
//!   ([`templates::Template::FlattenInner`] /
//!   [`templates::Template::FlattenOuter`]).
//!
//! Patches are **span-based text splices**, not whole-file reprints: the
//! simulated LLM's identification error modes key on file byte size, so
//! reprinting (which drops comments) would silently change what the
//! pipeline identifies. Splicing keeps every unmodified byte identical,
//! and the synthesized statements themselves are rendered through the
//! canonical AST printer ([`wasabi_lang::printer::print_stmt`]), so a
//! patched file re-parses to exactly the spliced shape.
//!
//! Validation re-runs the *targeted* slice of the fault-injection
//! campaign — only the runs whose retry location lives in a patched
//! method ([`wasabi_planner::plan::targeted_runs`]) — and accepts a
//! candidate only if the target diagnostic is gone, no new W/A
//! diagnostic appeared, and every targeted run is green (passed, a
//! filtered give-up rethrow, or byte-for-byte the baseline outcome).
//! Rejected candidates feed their failing run's trace into the next
//! template choice; the driver iterates up to `--max-fix-attempts`.
//!
//! Everything is deterministic: [`driver::repair`] visits targets in
//! diagnostic order, campaigns merge in key order, and the emitted
//! `repair_report.json` is byte-identical for any `--jobs` value.

pub mod driver;
pub mod report;
pub mod templates;

pub use driver::{repair, RepairOptions, RepairOutcome, TargetResult};
pub use report::{render_report, score_against_truth};
pub use templates::{synthesize, templates_for, PatchedFile, Template};
