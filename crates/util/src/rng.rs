//! A small seeded pseudo-random generator (SplitMix64 core, xorshift
//! output mixing), replacing the external `rand` crate.
//!
//! The generator is deliberately simple: WASABI only ever needs
//! *reproducible* pseudo-randomness — corpus synthesis, simulated-LLM
//! noise, and randomized property tests — never cryptographic quality.
//! Determinism is part of the contract: the same seed must produce the
//! same stream on every platform and in every run, because golden outputs
//! and calibrated tables depend on it.

/// SplitMix64: passes BigCrush, one u64 of state, trivially seedable.
///
/// Reference: Steele, Lea, Flood — "Fast Splittable Pseudorandom Number
/// Generators" (OOPSLA 2014); the exact constants below are the canonical
/// ones used by `java.util.SplittableRandom`.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Any seed (including 0) is fine.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift reduction; the tiny modulo bias is
    /// irrelevant for test-case generation.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng::below(0)");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`. `lo < hi` required.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "Rng::range: empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as i64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 high bits → the full f64 mantissa.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// FNV-1a over an arbitrary sequence of byte chunks.
///
/// This is the exact hash the simulated LLM keys its deterministic draws
/// on; it lives here so every crate that needs a stable string→u64 mapping
/// uses the same one.
pub fn fnv1a64<'a>(chunks: impl IntoIterator<Item = &'a [u8]>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in chunks {
        for &byte in chunk {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let a: Vec<u64> = (0..8).map({
            let mut r = Rng::new(42);
            move |_| r.next_u64()
        }).collect();
        let b: Vec<u64> = (0..8).map({
            let mut r = Rng::new(42);
            move |_| r.next_u64()
        }).collect();
        assert_eq!(a, b);
        let c: Vec<u64> = (0..8).map({
            let mut r = Rng::new(43);
            move |_| r.next_u64()
        }).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn splitmix_reference_vector() {
        // First three outputs for seed 1234567, cross-checked against the
        // canonical SplitMix64 implementation.
        let mut r = Rng::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
        assert_eq!(r.next_u64(), 9817491932198370423);
    }

    #[test]
    fn below_stays_in_bounds_and_covers() {
        let mut r = Rng::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn unit_in_half_open_interval() {
        let mut r = Rng::new(99);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    fn fnv_matches_known_vector() {
        // FNV-1a("hello") — published test vector.
        assert_eq!(fnv1a64([b"hello".as_slice()]), 0xa430d84680aabd0b);
        // Chunking must not change the result.
        assert_eq!(
            fnv1a64([b"he".as_slice(), b"llo".as_slice()]),
            fnv1a64([b"hello".as_slice()])
        );
    }
}
