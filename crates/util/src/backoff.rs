//! Capped exponential backoff with equal jitter — the one retry-delay
//! formula the whole workspace speaks.
//!
//! Three subsystems retry with the same schedule shape: the campaign
//! engine (transient run failures), the shard supervisor (crashed shard
//! children), and the submit client (daemon backpressure). Each used to
//! carry its own copy of the math, and the copies drifted: the submit
//! client's lost the exponent clamp, the non-negative guard, and the
//! zero-base early return, so extreme `retry`/`multiplier` values could
//! feed a negative or NaN duration into `Duration::from_secs_f64` — which
//! panics. The math now lives here; callers keep only their own jitter
//! *seed derivation* (each keys the stream differently, and those streams
//! are pinned by determinism tests and report digests).
//!
//! The schedule: `base * multiplier^(retry-1)`, capped, then drawn
//! uniformly from `[d/2, d)` — *equal jitter* — using a [`Rng`] stream
//! seeded by the caller. Deterministic in `(seed, retry)` by
//! construction.

use crate::Rng;
use std::time::Duration;

/// The delay before retry number `retry` (1-based): capped exponential
/// with equal jitter, deterministic in `seed`.
///
/// Total guards, in evaluation order, so no input can panic
/// [`Duration::from_secs_f64`]:
///
/// - zero `base` returns [`Duration::ZERO`] immediately (backoff
///   disabled);
/// - the exponent is clamped to `i32::MAX` before the `u32 → i32` cast
///   (an unclamped cast wraps huge retry counts to *negative* exponents);
/// - `f64::min` against the cap absorbs `+inf` overflow and NaN (Rust's
///   `min` returns the other operand when one side is NaN);
/// - `.max(0.0)` absorbs negative products (e.g. a negative multiplier at
///   an odd exponent).
///
/// The jittered result is strictly below `cap` whenever `cap > 0`.
pub fn equal_jitter_backoff(
    base: Duration,
    multiplier: f64,
    cap: Duration,
    retry: u32,
    seed: u64,
) -> Duration {
    if base.is_zero() {
        return Duration::ZERO;
    }
    let exponent = retry.saturating_sub(1).min(i32::MAX as u32) as i32;
    let raw = base.as_secs_f64() * multiplier.powi(exponent);
    let capped = raw.min(cap.as_secs_f64()).max(0.0);
    let mut rng = Rng::new(seed);
    Duration::from_secs_f64(capped * 0.5 * (1.0 + rng.unit()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 0xBAC0_FF;

    #[test]
    fn schedule_is_deterministic_and_equal_jittered() {
        let base = Duration::from_millis(50);
        let cap = Duration::from_secs(2);
        for retry in 1..=8u32 {
            let a = equal_jitter_backoff(base, 2.0, cap, retry, SEED ^ u64::from(retry));
            let b = equal_jitter_backoff(base, 2.0, cap, retry, SEED ^ u64::from(retry));
            assert_eq!(a, b, "same seed, same delay");
            let capped = (0.05 * 2.0f64.powi(retry as i32 - 1)).min(2.0);
            let secs = a.as_secs_f64();
            assert!(
                secs >= capped * 0.5 && secs < capped,
                "retry {retry}: {secs}s outside equal-jitter window of {capped}s"
            );
        }
    }

    #[test]
    fn zero_base_disables_backoff() {
        assert_eq!(
            equal_jitter_backoff(Duration::ZERO, 2.0, Duration::from_secs(1), 7, SEED),
            Duration::ZERO
        );
    }

    #[test]
    fn extreme_inputs_never_panic_and_stay_below_cap() {
        let base = Duration::from_millis(25);
        let cap = Duration::from_secs(1);
        // Huge retry counts must clamp the exponent, not wrap it negative.
        for retry in [0, 1, u32::MAX - 1, u32::MAX] {
            for multiplier in [0.0, 0.5, 1.0, 2.0, 1e300, -2.0, f64::NAN, f64::INFINITY] {
                let d = equal_jitter_backoff(base, multiplier, cap, retry, SEED);
                assert!(d <= cap, "retry {retry} x{multiplier}: {d:?} above cap");
            }
        }
    }
}
