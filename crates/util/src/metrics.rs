//! Dep-free metrics core for the campaign observability layer.
//!
//! Three pieces, all deterministic and allocation-light:
//!
//! - [`Histogram`] — a log2-bucketed value distribution. Recording is a
//!   few integer ops (no floats, no locks); merging is bucket-wise
//!   addition, which is commutative and associative, so a set of
//!   per-worker histograms merges to the same result in any order.
//! - saturating time conversions ([`saturating_ms`], [`saturating_us`]) —
//!   the single checked `Duration`/`u128` → `u64` path every exported
//!   timing goes through, so durations saturate at `u64::MAX` instead of
//!   silently wrapping (the old `as u64` casts wrapped).
//! - [`Clock`] — a monotonic microsecond source the span recorder reads
//!   through, with a [`ManualClock`] so tests produce byte-stable spans.

use std::cell::Cell;
use std::time::{Duration, Instant};

/// Converts a duration to whole milliseconds, saturating at `u64::MAX`.
///
/// `Duration::as_millis` returns `u128`; a bare `as u64` cast silently
/// wraps for durations over ~584 million years — absurd for a real clock
/// but entirely possible for a *corrupt or hostile* duration read back
/// from a file. Every exported timing in the workspace funnels through
/// here (or [`saturating_us`]) so the failure mode is a pinned maximum,
/// never a small wrapped number that looks plausible.
pub fn saturating_ms(duration: Duration) -> u64 {
    u64::try_from(duration.as_millis()).unwrap_or(u64::MAX)
}

/// Converts a duration to whole microseconds, saturating at `u64::MAX`.
pub fn saturating_us(duration: Duration) -> u64 {
    u64::try_from(duration.as_micros()).unwrap_or(u64::MAX)
}

/// Number of log2 buckets: values `0, 1, 2..3, 4..7, …, 2^62..` — enough
/// for any `u64`.
const BUCKETS: usize = 64;

/// A log2-bucketed histogram of `u64` samples.
///
/// Bucket `0` holds the value `0`; bucket `i > 0` holds values in
/// `[2^(i-1), 2^i)`. Alongside the buckets it tracks exact count, sum,
/// min, and max, so means are exact and only percentiles are bucket-
/// approximate. `record` and `merge` never allocate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
        .min(BUCKETS - 1)
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Adds every sample of `other` into `self`. Bucket-wise addition:
    /// commutative and associative, so per-worker histograms merge to an
    /// order-independent result.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate percentile (`p` in `[0, 1]`): the *upper bound* of the
    /// bucket containing the p-th sample, clamped to the recorded max.
    /// Exact for 0-valued samples, within 2x above otherwise.
    pub fn approx_percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if index == 0 { 0 } else { 1u64 << index.min(63) };
                return upper.min(self.max).max(self.min());
            }
        }
        self.max
    }

    /// Non-empty buckets as `(lower, upper_exclusive, count)` triples, in
    /// ascending value order. `upper_exclusive` is `u64::MAX` for the
    /// final bucket.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(index, &n)| {
                let lower = if index == 0 { 0 } else { 1u64 << (index - 1) };
                let upper = if index == 0 {
                    1
                } else if index >= 63 {
                    u64::MAX
                } else {
                    1u64 << index
                };
                (lower, upper, n)
            })
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// A monotonic microsecond clock. The span recorder and metrics observer
/// read time only through this trait, so tests can substitute a
/// [`ManualClock`] and assert byte-stable trace output.
pub trait Clock {
    /// Microseconds elapsed since the clock's origin.
    fn now_us(&self) -> u64;
}

/// The production clock: microseconds since construction, via
/// [`Instant`].
#[derive(Debug, Clone)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A clock whose origin is now.
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_us(&self) -> u64 {
        saturating_us(self.origin.elapsed())
    }
}

/// A deterministic test clock: every reading advances it by a fixed step,
/// so successive timestamps are `step, 2*step, 3*step, …` regardless of
/// host speed.
#[derive(Debug)]
pub struct ManualClock {
    now: Cell<u64>,
    step: u64,
}

impl ManualClock {
    /// A clock starting at 0 advancing `step` microseconds per reading.
    pub fn with_step(step: u64) -> Self {
        ManualClock {
            now: Cell::new(0),
            step,
        }
    }

    /// Manually advances the clock.
    pub fn advance(&self, us: u64) {
        self.now.set(self.now.get().saturating_add(us));
    }
}

impl Clock for ManualClock {
    fn now_us(&self) -> u64 {
        let next = self.now.get().saturating_add(self.step);
        self.now.set(next);
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturating_conversions_pin_instead_of_wrapping() {
        assert_eq!(saturating_ms(Duration::from_millis(1234)), 1234);
        assert_eq!(saturating_us(Duration::from_micros(99)), 99);
        // u64::MAX ms would need a Duration of ~584My; Duration::MAX
        // overflows u64 in both units and must pin, not wrap.
        assert_eq!(saturating_ms(Duration::MAX), u64::MAX);
        assert_eq!(saturating_us(Duration::MAX), u64::MAX);
    }

    #[test]
    fn histogram_records_and_summarizes() {
        let mut h = Histogram::new();
        for v in [0, 1, 1, 3, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1013);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 1013.0 / 6.0).abs() < 1e-9);
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        // 0 -> bucket [0,1); 1,1 -> [1,2); 3 -> [2,4); 8 -> [8,16);
        // 1000 -> [512,1024).
        assert_eq!(
            buckets,
            vec![(0, 1, 1), (1, 2, 2), (2, 4, 1), (8, 16, 1), (512, 1024, 1)]
        );
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!((h.count(), h.sum(), h.min(), h.max()), (0, 0, 0, 0));
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.approx_percentile(0.5), 0);
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for (i, v) in [5u64, 0, 123, 77, 2, 900000, 1].iter().enumerate() {
            if i % 2 == 0 {
                a.record(*v);
            } else {
                b.record(*v);
            }
            all.record(*v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");
        assert_eq!(ab, all, "merge must equal recording everything");
    }

    #[test]
    fn percentile_is_bucket_bounded() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let p50 = h.approx_percentile(0.5);
        assert!((50..=64).contains(&p50), "p50 = {p50}");
        assert_eq!(h.approx_percentile(1.0), 100, "p100 clamps to max");
        // Extreme values: max bucket still indexes safely.
        h.record(u64::MAX);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn manual_clock_is_deterministic() {
        let clock = ManualClock::with_step(10);
        assert_eq!(clock.now_us(), 10);
        assert_eq!(clock.now_us(), 20);
        clock.advance(5);
        assert_eq!(clock.now_us(), 35);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let clock = WallClock::new();
        let a = clock.now_us();
        let b = clock.now_us();
        assert!(b >= a);
    }
}
