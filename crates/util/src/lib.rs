#![forbid(unsafe_code)]
//! Dependency-free utilities shared across the WASABI workspace.
//!
//! The workspace must build and test with **zero network access** (the
//! tier-1 gate is `cargo build --release && cargo test -q` on an offline
//! machine), so everything that used to come from crates.io lives here
//! instead:
//!
//! - [`rng`] — a seeded SplitMix64/xorshift generator replacing `rand`,
//!   used by the randomized property tests and anywhere the corpus or the
//!   simulated LLM needs reproducible pseudo-randomness;
//! - [`json`] — a minimal JSON value model and writer replacing
//!   `serde`/`serde_json` for report emission.

//! - [`metrics`] — log2-bucketed mergeable histograms, saturating
//!   `Duration` → ms/us conversions, and a clock abstraction for the
//!   campaign observability layer (deterministic under test).

//! - [`backoff`] — the capped-exponential-with-equal-jitter delay shared
//!   by the campaign engine, the shard supervisor, and the submit client
//!   (callers keep their own jitter-seed derivations).

pub mod backoff;
pub mod json;
pub mod metrics;
pub mod rng;

pub use backoff::equal_jitter_backoff;
pub use json::Json;
pub use metrics::{saturating_ms, saturating_us, Histogram};
pub use rng::Rng;
