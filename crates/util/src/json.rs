//! A minimal JSON value model and writer, replacing `serde`/`serde_json`
//! for report emission.
//!
//! Only what WASABI needs: building values programmatically and rendering
//! them (compact or pretty) with correct string escaping. Objects preserve
//! insertion order (`Vec<(String, Json)>` rather than a map) so emitted
//! reports are stable byte-for-byte across runs — a requirement of the
//! deterministic-merge contract in `wasabi-engine`.
//!
//! There is deliberately no parser: WASABI writes JSON, it never reads it.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object; keeps call sites terse.
    pub fn obj(fields: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Convenience constructor for an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Compact rendering (no whitespace).
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation and a trailing newline,
    /// matching the house style of the repo's golden outputs.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(f) => {
                // JSON has no NaN/Infinity; render those as null so the
                // document stays well-formed.
                if f.is_finite() {
                    let mut text = format!("{f}");
                    // `{}` prints integral floats without a decimal point;
                    // add one so the value round-trips as a float.
                    if !text.contains('.') && !text.contains('e') {
                        text.push_str(".0");
                    }
                    out.push_str(&text);
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Int(n as i64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Int(n as i64)
    }
}

impl From<u64> for Json {
    /// Values beyond `i64::MAX` saturate (JSON writers that emit `u64`
    /// verbatim break many parsers anyway, and no WASABI counter gets
    /// anywhere near the limit).
    fn from(n: u64) -> Json {
        Json::Int(i64::try_from(n).unwrap_or(i64::MAX))
    }
}

impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::Float(f)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Json::obj([
            ("name", Json::from("wasabi")),
            ("runs", Json::arr([Json::Int(1), Json::Int(2)])),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"wasabi","runs":[1,2],"ok":true,"none":null}"#
        );
    }

    #[test]
    fn pretty_rendering() {
        let v = Json::obj([("a", Json::Int(1)), ("b", Json::arr([Json::from("x")]))]);
        assert_eq!(v.pretty(), "{\n  \"a\": 1,\n  \"b\": [\n    \"x\"\n  ]\n}\n");
    }

    #[test]
    fn string_escaping() {
        let v = Json::from("a\"b\\c\nd\te\u{01}");
        assert_eq!(v.to_string(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(Json::Float(1.5).to_string(), "1.5");
        assert_eq!(Json::Float(2.0).to_string(), "2.0");
        assert_eq!(Json::Float(-3.0).to_string(), "-3.0");
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
    }

    #[test]
    fn empty_containers_stay_inline_when_pretty() {
        let v = Json::obj([("a", Json::Arr(vec![])), ("b", Json::Obj(vec![]))]);
        assert_eq!(v.pretty(), "{\n  \"a\": [],\n  \"b\": {}\n}\n");
    }

    #[test]
    fn field_order_is_insertion_order() {
        let v = Json::obj([("z", Json::Int(1)), ("a", Json::Int(2))]);
        assert_eq!(v.to_string(), r#"{"z":1,"a":2}"#);
    }
}
