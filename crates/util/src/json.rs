//! A minimal JSON value model, writer, and parser, replacing
//! `serde`/`serde_json` for report emission and journal recovery.
//!
//! Only what WASABI needs: building values programmatically, rendering
//! them (compact or pretty) with correct string escaping, and parsing
//! them back for the engine's checkpoint/resume journal. Objects preserve
//! insertion order (`Vec<(String, Json)>` rather than a map) so emitted
//! reports are stable byte-for-byte across runs — a requirement of the
//! deterministic-merge contract in `wasabi-engine`.
//!
//! The parser ([`Json::parse`]) accepts exactly what the writer emits
//! (plus arbitrary standard JSON); it exists because a resumed campaign
//! must read its own journal back.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object; keeps call sites terse.
    pub fn obj(fields: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Convenience constructor for an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Pretty rendering with two-space indentation and a trailing newline,
    /// matching the house style of the repo's golden outputs.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(f) => {
                // JSON has no NaN/Infinity; render those as null so the
                // document stays well-formed.
                if f.is_finite() {
                    let mut text = format!("{f}");
                    // `{}` prints integral floats without a decimal point;
                    // add one so the value round-trips as a float.
                    if !text.contains('.') && !text.contains('e') {
                        text.push_str(".0");
                    }
                    out.push_str(&text);
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

/// Compact rendering (no whitespace); `to_string()` goes through this.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

impl Json {
    /// Parses a JSON document. Returns an error describing the first
    /// offending byte offset on malformed input; trailing garbage after
    /// the top-level value is an error (the journal reader depends on a
    /// half-written line being rejected, not silently truncated).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The integer payload as a `u64`, if this is a non-negative `Int`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The float payload (`Float`, or `Int` widened), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(f) => Some(*f),
            Json::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The elements, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an `Obj`.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Looks up a field of an `Obj` by key (first match wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(format!("expected `{token}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at byte {pos}", pos = *pos));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs: the writer never emits them
                        // (it escapes only control characters), but accept
                        // them for standard-JSON compatibility.
                        if (0xD800..0xDC00).contains(&code) {
                            *pos += 5;
                            expect(bytes, pos, "\\u")?;
                            let hex2 = bytes.get(*pos..*pos + 4).ok_or("truncated \\u escape")?;
                            let hex2 = std::str::from_utf8(hex2).map_err(|_| "bad \\u escape")?;
                            let low = u32::from_str_radix(hex2, 16).map_err(|_| "bad \\u escape")?;
                            let combined =
                                0x10000 + ((code - 0xD800) << 10) + low.wrapping_sub(0xDC00);
                            out.push(char::from_u32(combined).ok_or("bad surrogate pair")?);
                            *pos += 3; // loop tail adds 1
                        } else {
                            out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                            *pos += 4; // loop tail adds 1
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume the whole contiguous run of plain characters at
                // once. The boundaries are `"` and `\` — both ASCII, so
                // slicing there lands on UTF-8 character boundaries
                // (input is a &str, valid by construction). Revalidating
                // just the run keeps this linear; per-character
                // `from_utf8` of the remaining input made large documents
                // (e.g. cached coverage profiles) quadratic to parse.
                let start = *pos;
                while let Some(&b) = bytes.get(*pos) {
                    if b == b'"' || b == b'\\' {
                        break;
                    }
                    *pos += 1;
                }
                let run = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
                out.push_str(run);
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() || text == "-" {
        return Err(format!("expected number at byte {start}"));
    }
    if is_float {
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("bad float `{text}` at byte {start}"))
    } else {
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|_| format!("bad integer `{text}` at byte {start}"))
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Int(n as i64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Int(n as i64)
    }
}

impl From<u64> for Json {
    /// Values beyond `i64::MAX` saturate (JSON writers that emit `u64`
    /// verbatim break many parsers anyway, and no WASABI counter gets
    /// anywhere near the limit).
    fn from(n: u64) -> Json {
        Json::Int(i64::try_from(n).unwrap_or(i64::MAX))
    }
}

impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::Float(f)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Json::obj([
            ("name", Json::from("wasabi")),
            ("runs", Json::arr([Json::Int(1), Json::Int(2)])),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"wasabi","runs":[1,2],"ok":true,"none":null}"#
        );
    }

    #[test]
    fn pretty_rendering() {
        let v = Json::obj([("a", Json::Int(1)), ("b", Json::arr([Json::from("x")]))]);
        assert_eq!(v.pretty(), "{\n  \"a\": 1,\n  \"b\": [\n    \"x\"\n  ]\n}\n");
    }

    #[test]
    fn string_escaping() {
        let v = Json::from("a\"b\\c\nd\te\u{01}");
        assert_eq!(v.to_string(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(Json::Float(1.5).to_string(), "1.5");
        assert_eq!(Json::Float(2.0).to_string(), "2.0");
        assert_eq!(Json::Float(-3.0).to_string(), "-3.0");
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
    }

    #[test]
    fn empty_containers_stay_inline_when_pretty() {
        let v = Json::obj([("a", Json::Arr(vec![])), ("b", Json::Obj(vec![]))]);
        assert_eq!(v.pretty(), "{\n  \"a\": [],\n  \"b\": {}\n}\n");
    }

    #[test]
    fn field_order_is_insertion_order() {
        let v = Json::obj([("z", Json::Int(1)), ("a", Json::Int(2))]);
        assert_eq!(v.to_string(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = Json::obj([
            ("name", Json::from("wasabi \"x\"\n\ttab")),
            ("runs", Json::arr([Json::Int(1), Json::Int(-2), Json::Float(1.5)])),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
            ("nested", Json::obj([("ctl", Json::from("a\u{01}b"))])),
        ]);
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\":1,}",
            "\"unterminated",
            "{\"a\":1} trailing",
            "01x",
            "nulL",
            // A journal line cut mid-write must be an error, never a
            // silently truncated value.
            r#"{"key":{"class":"C","method":"t"},"outco"#,
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed `{bad}`");
        }
    }

    #[test]
    fn parse_accepts_standard_json_extras() {
        let v = Json::parse(" { \"a\" : [ 1 , 2.5e1 , \"\\u0041\\ud83d\\ude00\" ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(25.0));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_str(),
            Some("A😀")
        );
    }

    #[test]
    fn accessors_select_by_type() {
        let v = Json::obj([("n", Json::Int(7)), ("s", Json::from("x"))]);
        assert_eq!(v.get("n").and_then(Json::as_i64), Some(7));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(7));
        assert_eq!(Json::Int(-1).as_u64(), None);
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Bool(true).as_bool(), Some(true));
        assert!(v.as_obj().is_some());
        assert!(v.as_arr().is_none());
    }
}
