#![forbid(unsafe_code)]
//! Retry-specific test oracles and bug deduplication (§3.1.3 of the paper).
//!
//! Existing unit tests' assertions were written without retry in mind, so
//! WASABI judges injected runs with three application-agnostic oracles —
//! missing cap, missing delay, and different exception — implemented in
//! [`judge`], and groups the resulting reports into distinct bugs in
//! [`dedup`].

pub mod dedup;
pub mod judge;

pub use dedup::{count_by_kind, dedup_reports, DistinctBug};
pub use judge::{judge_run, BugKind, OracleConfig, OracleReport, RunVerdict};
