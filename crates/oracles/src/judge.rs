//! The three retry-specific test oracles (§3.1.3).
//!
//! Each injected test run is judged post-mortem from its trace:
//!
//! - **missing cap** — an injection site fired the full 100-exception budget
//!   or the test exceeded the 15-minute (virtual) limit;
//! - **missing delay** — two consecutive injections at the same retry
//!   location with no sleep from the coordinator method in between;
//! - **different exception** — the test died with an exception other than
//!   the injected one (applied to K = 1 runs, where a single transient error
//!   plus recovery should leave the test healthy).
//!
//! The different-exception oracle intentionally does **not** unwrap cause
//! chains: an application that wraps the injected exception and crashes with
//! the wrapper is flagged, reproducing the paper's HOW false-positive mode
//! (§4.3). The wrapper's cause chain is recorded so that the ablation can
//! measure how many reports that pruning would remove.

use wasabi_analysis::loops::RetryLocation;
use wasabi_inject::InjectionSpec;
use wasabi_lang::project::MethodId;
use wasabi_vm::trace::{Event, TestOutcome, TestRun};

/// Bug categories the oracles report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BugKind {
    /// WHEN bug: unbounded (or way-over-budget) retry attempts.
    MissingCap,
    /// WHEN bug: consecutive retry attempts with no delay between them.
    MissingDelay,
    /// HOW bug: the test failed with a different exception than injected
    /// (state corruption, broken cleanup, ...).
    DifferentException,
}

impl std::fmt::Display for BugKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BugKind::MissingCap => write!(f, "missing-cap"),
            BugKind::MissingDelay => write!(f, "missing-delay"),
            BugKind::DifferentException => write!(f, "different-exception"),
        }
    }
}

/// One oracle finding from one test run.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// Which oracle fired.
    pub kind: BugKind,
    /// The test that was running.
    pub test: MethodId,
    /// The retry location under injection.
    pub location: RetryLocation,
    /// Human-readable evidence.
    pub detail: String,
    /// Key used to group reports into distinct bugs: retry structure for
    /// WHEN bugs, crash stack for HOW bugs.
    pub dedup_key: String,
    /// For different-exception reports: the escaping exception's cause
    /// chain (first element is the escaping type).
    pub exc_chain: Vec<String>,
}

/// The verdict for one injected run.
#[derive(Debug, Clone, Default)]
pub struct RunVerdict {
    /// Oracle findings.
    pub reports: Vec<OracleReport>,
    /// The run crashed by re-throwing the injected exception — correct
    /// give-up behaviour, filtered by the different-exception oracle.
    pub rethrow_filtered: bool,
    /// The run crashed with the injected exception without any retry —
    /// evidence the static analysis misidentified the retry trigger.
    pub not_a_trigger: bool,
}

/// Oracle thresholds.
#[derive(Debug, Clone, Copy)]
pub struct OracleConfig {
    /// Injection count at one site considered "unbounded". The paper uses
    /// 100 (real caps are ≤ 20 attempts).
    pub cap_threshold: u32,
    /// Virtual-time limit treated as a hang. The paper uses 15 minutes.
    pub time_limit_ms: u64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            cap_threshold: 100,
            time_limit_ms: 15 * 60 * 1000,
        }
    }
}

/// Judges one injected test run against all applicable oracles.
pub fn judge_run(run: &TestRun, spec: &InjectionSpec, config: &OracleConfig) -> RunVerdict {
    let mut verdict = RunVerdict::default();
    let location = &spec.location;

    let injections_at_site: Vec<(usize, u32)> = run
        .trace
        .events
        .iter()
        .enumerate()
        .filter_map(|(idx, e)| match e {
            Event::Injected { site, count, .. } if *site == location.site => Some((idx, *count)),
            _ => None,
        })
        .collect();
    let max_count = injections_at_site.iter().map(|(_, c)| *c).max().unwrap_or(0);

    // ---- Missing-cap oracle ------------------------------------------------
    let timed_out = matches!(run.outcome, TestOutcome::Timeout { .. })
        || run.virtual_ms > config.time_limit_ms;
    if max_count >= config.cap_threshold || (timed_out && max_count > 0) {
        verdict.reports.push(OracleReport {
            kind: BugKind::MissingCap,
            test: run.test.clone(),
            location: location.clone(),
            detail: if timed_out {
                format!(
                    "test exceeded the {} ms virtual-time limit after {} injections",
                    config.time_limit_ms, max_count
                )
            } else {
                format!(
                    "injection handler threw {} {} times at {}",
                    location.exception, max_count, location.site
                )
            },
            dedup_key: location.structure_key(),
            exc_chain: Vec::new(),
        });
    }

    // ---- Missing-delay oracle ----------------------------------------------
    if injections_at_site.len() >= 2 {
        let mut missing_between = 0usize;
        for pair in injections_at_site.windows(2) {
            let (start, end) = (pair[0].0, pair[1].0);
            let coordinator_slept = run.trace.events[start + 1..end].iter().any(|e| {
                matches!(
                    e,
                    Event::Slept { stack, .. } if stack.contains(&location.coordinator)
                )
            });
            if !coordinator_slept {
                missing_between += 1;
            }
        }
        if missing_between > 0 {
            verdict.reports.push(OracleReport {
                kind: BugKind::MissingDelay,
                test: run.test.clone(),
                location: location.clone(),
                detail: format!(
                    "{missing_between} of {} consecutive retry attempts had no delay issued by {}",
                    injections_at_site.len() - 1,
                    location.coordinator
                ),
                dedup_key: location.structure_key(),
                exc_chain: Vec::new(),
            });
        }
    }

    // ---- Different-exception oracle -------------------------------------
    // Crash classification (rethrow vs non-trigger) applies to every run;
    // HOW-bug *reports* are only drawn from K = 1 runs, where a single
    // transient error plus recovery should leave the test healthy.
    match &run.outcome {
        TestOutcome::ExceptionEscaped { exc } => {
            if exc.ty == location.exception {
                if max_count == 0 {
                    // The exception escaped without our site firing; the
                    // spec was stale. Treat conservatively as non-trigger.
                    verdict.not_a_trigger = true;
                } else if max_count == 1
                    && run
                        .trace
                        .events
                        .iter()
                        .filter(|e| matches!(e, Event::Raised { .. }))
                        .count()
                        == 0
                    && injection_escaped_directly(run)
                {
                    verdict.not_a_trigger = true;
                } else {
                    verdict.rethrow_filtered = true;
                }
            } else if spec.k == 1 {
                verdict.reports.push(OracleReport {
                    kind: BugKind::DifferentException,
                    test: run.test.clone(),
                    location: location.clone(),
                    detail: format!(
                        "injected {} once but the test died with {}",
                        location.exception, exc.ty
                    ),
                    dedup_key: exc.crash_key(),
                    exc_chain: exc.chain.clone(),
                });
            }
        }
        TestOutcome::AssertionFailed { message } if spec.k == 1 && max_count > 0 => {
            verdict.reports.push(OracleReport {
                kind: BugKind::DifferentException,
                test: run.test.clone(),
                location: location.clone(),
                detail: format!(
                    "injected {} once and a test assertion failed: {message}",
                    location.exception
                ),
                dedup_key: format!("assert:{}:{message}", run.test),
                exc_chain: vec!["AssertionError".to_string()],
            });
        }
        _ => {}
    }

    verdict
}

/// [`judge_run`] plus the wall time the judgement took — the campaign's
/// metrics layer attributes oracle time separately from interpreter time,
/// and measuring here keeps the two attribution points symmetrical.
pub fn judge_run_timed(
    run: &TestRun,
    spec: &InjectionSpec,
    config: &OracleConfig,
) -> (RunVerdict, std::time::Duration) {
    let started = std::time::Instant::now();
    let verdict = judge_run(run, spec, config);
    (verdict, started.elapsed())
}

/// Whether the escaping exception is the injected one with no intervening
/// retry activity — i.e. the coordinator never caught it (the location was
/// not actually a retry trigger).
fn injection_escaped_directly(run: &TestRun) -> bool {
    if let TestOutcome::ExceptionEscaped { exc } = &run.outcome {
        exc.injected
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi_analysis::loops::Mechanism;
    use wasabi_lang::ast::{CallId, LoopId};
    use wasabi_lang::project::{CallSite, FileId};
    use wasabi_vm::trace::{ExcSummary, Trace};

    fn location() -> RetryLocation {
        RetryLocation {
            site: CallSite {
                file: FileId(0),
                call: CallId(1),
            },
            coordinator: MethodId::new("C", "run"),
            retried: MethodId::new("C", "op"),
            exception: "ConnectException".to_string(),
            mechanism: Mechanism::Loop(LoopId(0)),
        }
    }

    fn injected_event(count: u32, at_ms: u64) -> Event {
        let loc = location();
        Event::Injected {
            site: loc.site,
            caller: loc.coordinator,
            callee: loc.retried,
            exc_type: loc.exception,
            count,
            at_ms,
        }
    }

    fn slept_event(stack_method: &str, at_ms: u64) -> Event {
        Event::Slept {
            ms: 100,
            at_ms,
            stack: vec![MethodId::new("T", "t"), MethodId::new("C", stack_method)],
        }
    }

    fn run_with(events: Vec<Event>, outcome: TestOutcome, virtual_ms: u64) -> TestRun {
        TestRun {
            test: MethodId::new("T", "t"),
            outcome,
            trace: Trace { events },
            virtual_ms,
            steps: 0,
            wall_us: 0,
        }
    }

    fn spec(k: u32) -> InjectionSpec {
        InjectionSpec::new(location(), k)
    }

    #[test]
    fn missing_cap_fires_at_threshold() {
        let events = (1..=100).map(|i| injected_event(i, i as u64)).collect();
        let run = run_with(events, TestOutcome::Passed, 100);
        let verdict = judge_run(&run, &spec(100), &OracleConfig::default());
        // 100 injections with no sleeps: both cap and delay oracles fire.
        let kinds: Vec<BugKind> = verdict.reports.iter().map(|r| r.kind).collect();
        assert!(kinds.contains(&BugKind::MissingCap));
        assert!(kinds.contains(&BugKind::MissingDelay));
    }

    #[test]
    fn capped_retry_is_not_reported() {
        let mut events = Vec::new();
        for i in 1..=5u32 {
            events.push(injected_event(i, i as u64 * 1000));
            events.push(slept_event("run", i as u64 * 1000 + 1));
        }
        let run = run_with(events, TestOutcome::Passed, 5000);
        let verdict = judge_run(&run, &spec(100), &OracleConfig::default());
        assert!(verdict.reports.is_empty(), "reports: {:?}", verdict.reports);
    }

    #[test]
    fn timeout_with_injections_is_missing_cap() {
        let events = vec![injected_event(1, 0), injected_event(2, 500_000)];
        let run = run_with(
            events,
            TestOutcome::Timeout {
                virtual_ms: 1_000_000,
            },
            1_000_000,
        );
        let verdict = judge_run(&run, &spec(100), &OracleConfig::default());
        assert!(verdict
            .reports
            .iter()
            .any(|r| r.kind == BugKind::MissingCap));
    }

    #[test]
    fn missing_delay_requires_sleep_from_coordinator() {
        // Sleeps exist but come from an unrelated method, not the
        // coordinator: the oracle still fires.
        let events = vec![
            injected_event(1, 0),
            slept_event("other", 1),
            injected_event(2, 2),
            slept_event("other", 3),
            injected_event(3, 4),
        ];
        let run = run_with(events, TestOutcome::Passed, 10);
        let verdict = judge_run(&run, &spec(100), &OracleConfig::default());
        assert!(verdict
            .reports
            .iter()
            .any(|r| r.kind == BugKind::MissingDelay));
    }

    #[test]
    fn delay_between_attempts_suppresses_delay_report() {
        let events = vec![
            injected_event(1, 0),
            slept_event("run", 1),
            injected_event(2, 101),
            slept_event("run", 102),
            injected_event(3, 202),
        ];
        let run = run_with(events, TestOutcome::Passed, 300);
        let verdict = judge_run(&run, &spec(100), &OracleConfig::default());
        assert!(!verdict
            .reports
            .iter()
            .any(|r| r.kind == BugKind::MissingDelay));
    }

    #[test]
    fn different_exception_on_k1_run() {
        let exc = ExcSummary {
            ty: "NullPointerException".into(),
            message: "log state".into(),
            chain: vec!["NullPointerException".into()],
            raised_at: vec![MethodId::new("C", "handleError")],
            injected: false,
        };
        let run = run_with(
            vec![injected_event(1, 0)],
            TestOutcome::ExceptionEscaped { exc },
            5,
        );
        let verdict = judge_run(&run, &spec(1), &OracleConfig::default());
        assert_eq!(verdict.reports.len(), 1);
        assert_eq!(verdict.reports[0].kind, BugKind::DifferentException);
        assert!(verdict.reports[0].dedup_key.contains("NullPointerException"));
    }

    #[test]
    fn rethrow_of_injected_exception_is_filtered() {
        let exc = ExcSummary {
            ty: "ConnectException".into(),
            message: "gave up".into(),
            chain: vec!["ConnectException".into()],
            raised_at: vec![MethodId::new("C", "run")],
            injected: false,
        };
        let run = run_with(
            vec![injected_event(1, 0)],
            TestOutcome::ExceptionEscaped { exc },
            5,
        );
        let verdict = judge_run(&run, &spec(1), &OracleConfig::default());
        assert!(verdict.reports.is_empty());
        assert!(verdict.rethrow_filtered);
    }

    #[test]
    fn non_trigger_injection_is_flagged_as_analysis_inaccuracy() {
        let exc = ExcSummary {
            ty: "ConnectException".into(),
            message: "injected".into(),
            chain: vec!["ConnectException".into()],
            raised_at: vec![MethodId::new("C", "op")],
            injected: true,
        };
        let run = run_with(
            vec![injected_event(1, 0)],
            TestOutcome::ExceptionEscaped { exc },
            1,
        );
        let verdict = judge_run(&run, &spec(1), &OracleConfig::default());
        assert!(verdict.reports.is_empty());
        assert!(verdict.not_a_trigger);
    }

    #[test]
    fn assertion_failure_under_single_injection_is_how_bug() {
        let run = run_with(
            vec![injected_event(1, 0)],
            TestOutcome::AssertionFailed {
                message: "stage map corrupted".into(),
            },
            5,
        );
        let verdict = judge_run(&run, &spec(1), &OracleConfig::default());
        assert_eq!(verdict.reports.len(), 1);
        assert_eq!(verdict.reports[0].kind, BugKind::DifferentException);
    }

    #[test]
    fn wrapped_exception_is_reported_with_chain() {
        // The paper's HOW false-positive mode: the injected exception is
        // wrapped and the wrapper crashes the test. The oracle reports it
        // (type differs) but records the chain.
        let exc = ExcSummary {
            ty: "HadoopException".into(),
            message: "wrapped".into(),
            chain: vec!["HadoopException".into(), "ConnectException".into()],
            raised_at: vec![MethodId::new("C", "run")],
            injected: false,
        };
        let run = run_with(
            vec![injected_event(1, 0)],
            TestOutcome::ExceptionEscaped { exc },
            5,
        );
        let verdict = judge_run(&run, &spec(1), &OracleConfig::default());
        assert_eq!(verdict.reports.len(), 1);
        assert!(verdict.reports[0]
            .exc_chain
            .contains(&"ConnectException".to_string()));
    }

    #[test]
    fn k100_runs_skip_different_exception_oracle() {
        let exc = ExcSummary {
            ty: "NullPointerException".into(),
            message: String::new(),
            chain: vec!["NullPointerException".into()],
            raised_at: vec![],
            injected: false,
        };
        let run = run_with(
            vec![injected_event(1, 0)],
            TestOutcome::ExceptionEscaped { exc },
            5,
        );
        let verdict = judge_run(&run, &spec(100), &OracleConfig::default());
        assert!(verdict.reports.is_empty());
    }
}
