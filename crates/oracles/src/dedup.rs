//! Grouping oracle reports into distinct bugs.
//!
//! One bug can fail many WASABI test runs (§4.1): the different-exception
//! oracle groups crashes by crash stack; the missing-cap and missing-delay
//! oracles group by retry structure (at most one cap and one delay bug per
//! structure).

use crate::judge::{BugKind, OracleReport};
use std::collections::BTreeMap;

/// A distinct bug: one or more oracle reports with the same dedup key.
#[derive(Debug, Clone)]
pub struct DistinctBug {
    /// Bug category.
    pub kind: BugKind,
    /// The grouping key (structure key or crash key).
    pub key: String,
    /// All reports grouped under this bug, in arrival order.
    pub reports: Vec<OracleReport>,
}

impl DistinctBug {
    /// A representative report (the first one seen).
    pub fn representative(&self) -> &OracleReport {
        &self.reports[0]
    }
}

/// Groups reports into distinct bugs, deterministically ordered by
/// (kind, key).
pub fn dedup_reports(reports: Vec<OracleReport>) -> Vec<DistinctBug> {
    let mut groups: BTreeMap<(BugKind, String), Vec<OracleReport>> = BTreeMap::new();
    for report in reports {
        groups
            .entry((report.kind, report.dedup_key.clone()))
            .or_default()
            .push(report);
    }
    groups
        .into_iter()
        .map(|((kind, key), reports)| DistinctBug { kind, key, reports })
        .collect()
}

/// Counts distinct bugs per category.
pub fn count_by_kind(bugs: &[DistinctBug]) -> BTreeMap<BugKind, usize> {
    let mut out = BTreeMap::new();
    for bug in bugs {
        *out.entry(bug.kind).or_insert(0) += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi_analysis::loops::{Mechanism, RetryLocation};
    use wasabi_lang::ast::{CallId, LoopId};
    use wasabi_lang::project::{CallSite, FileId, MethodId};

    fn report(kind: BugKind, key: &str, call: u32) -> OracleReport {
        OracleReport {
            kind,
            test: MethodId::new("T", "t"),
            location: RetryLocation {
                site: CallSite {
                    file: FileId(0),
                    call: CallId(call),
                },
                coordinator: MethodId::new("C", "run"),
                retried: MethodId::new("C", "op"),
                exception: "E".into(),
                mechanism: Mechanism::Loop(LoopId(0)),
            },
            detail: String::new(),
            dedup_key: key.to_string(),
            exc_chain: Vec::new(),
        }
    }

    #[test]
    fn same_key_groups_into_one_bug() {
        let bugs = dedup_reports(vec![
            report(BugKind::MissingCap, "f0:L0", 1),
            report(BugKind::MissingCap, "f0:L0", 2),
            report(BugKind::MissingCap, "f0:L1", 3),
        ]);
        assert_eq!(bugs.len(), 2);
        assert_eq!(bugs[0].reports.len(), 2);
        assert_eq!(bugs[1].reports.len(), 1);
    }

    #[test]
    fn same_key_different_kind_stays_separate() {
        let bugs = dedup_reports(vec![
            report(BugKind::MissingCap, "f0:L0", 1),
            report(BugKind::MissingDelay, "f0:L0", 1),
        ]);
        assert_eq!(bugs.len(), 2);
        let counts = count_by_kind(&bugs);
        assert_eq!(counts[&BugKind::MissingCap], 1);
        assert_eq!(counts[&BugKind::MissingDelay], 1);
    }

    #[test]
    fn crash_stack_grouping_for_how_bugs() {
        let bugs = dedup_reports(vec![
            report(BugKind::DifferentException, "NPE@C.handle", 1),
            report(BugKind::DifferentException, "NPE@C.handle", 5),
            report(BugKind::DifferentException, "NPE@C.other", 7),
        ]);
        assert_eq!(bugs.len(), 2);
        assert_eq!(
            count_by_kind(&bugs)[&BugKind::DifferentException],
            2,
            "two distinct crash stacks"
        );
    }

    #[test]
    fn empty_input_yields_no_bugs() {
        assert!(dedup_reports(Vec::new()).is_empty());
    }
}
