//! End-to-end daemon tests over real TCP connections on a loopback
//! port. These cover protocol robustness (malformed frames, oversized
//! payloads, disconnects, double-cancel) and the determinism contract
//! (reports independent of arrival order; cache hits byte-identical to
//! fresh compiles). Scheduling *policy* is tested on `ManualClock` in
//! the scheduler module; nothing here asserts on timing.

use std::sync::mpsc;
use std::thread;
use wasabi_serve::daemon::{spawn, Bind, DaemonHandle, ServeOptions};
use wasabi_serve::protocol::Request;
use wasabi_serve::scheduler::SchedulerConfig;
use wasabi_serve::Connection;
use wasabi_util::Json;

const APP_X: &str = "\
exception E;\n\
class X {\n\
  method op() throws E { return \"ok\"; }\n\
  method run() {\n\
    while (true) {\n\
      try { return this.op(); } catch (E e) { log(\"retrying\"); }\n\
    }\n\
  }\n\
  test tRun() { assert(this.run() == \"ok\"); }\n\
}\n";

const APP_Y: &str = "\
exception F;\n\
class Y {\n\
  method fetch() throws F { return \"y\"; }\n\
  method poll() {\n\
    for (var i = 0; i < 3; i = i + 1) {\n\
      try { return this.fetch(); } catch (F e) { sleep(5); }\n\
    }\n\
    return \"gave up\";\n\
  }\n\
  test tPoll() { assert(this.poll() == \"y\"); }\n\
}\n";

fn start(options: ServeOptions) -> DaemonHandle {
    spawn(options).expect("daemon binds on loopback")
}

fn default_daemon() -> DaemonHandle {
    start(ServeOptions::default())
}

fn submit(conn: &mut Connection, path: &str, source: &str) -> u64 {
    let response = conn
        .request(&Request::Submit {
            name: "cli".to_string(),
            priority: 5,
            files: vec![(path.to_string(), source.to_string())],
            jobs: None,
            shards: None,
        })
        .expect("submit response");
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true), "{response:?}");
    response.get("id").and_then(Json::as_u64).expect("job id")
}

fn wait_report(conn: &mut Connection, id: u64) -> (String, bool) {
    let response = conn.request(&Request::Wait { id }).expect("wait response");
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true), "{response:?}");
    let report = response
        .get("report")
        .and_then(Json::as_str)
        .expect("report field")
        .to_string();
    let cached = response
        .get("cached")
        .and_then(Json::as_bool)
        .expect("cached field");
    (report, cached)
}

fn shutdown(handle: DaemonHandle) {
    let mut conn = Connection::connect(&handle.addr).expect("connect for shutdown");
    let _ = conn.request(&Request::Shutdown {
        drain: false,
        deadline_ms: None,
    });
    handle.join();
}

#[test]
fn malformed_frame_gets_error_and_connection_stays_usable() {
    let handle = default_daemon();
    let mut conn = Connection::connect(&handle.addr).expect("connect");
    conn.send_line("{this is not json").expect("send");
    let line = conn.read_line().expect("read").expect("response");
    let response = Json::parse(&line).expect("error is valid json");
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    assert!(line.contains("malformed"), "line: {line}");
    // Same connection keeps working.
    let stats = conn.request(&Request::Stats).expect("stats after error");
    assert_eq!(stats.get("ok").and_then(Json::as_bool), Some(true));
    shutdown(handle);
}

#[test]
fn oversized_frame_is_rejected_and_daemon_keeps_accepting() {
    let handle = start(ServeOptions {
        max_frame_bytes: 512,
        ..ServeOptions::default()
    });
    let mut conn = Connection::connect(&handle.addr).expect("connect");
    let huge = format!(
        "{{\"kind\":\"wasabi-serve\",\"v\":1,\"op\":\"submit\",\"name\":\"{}\"}}",
        "x".repeat(4096)
    );
    conn.send_line(&huge).expect("send oversized");
    let line = conn.read_line().expect("read").expect("error before drop");
    assert!(line.contains("exceeds 512 bytes"), "line: {line}");
    // The daemon dropped this connection rather than resynchronize...
    assert_eq!(conn.read_line().expect("read"), None, "connection closed");
    // ...but keeps serving new ones.
    let mut fresh = Connection::connect(&handle.addr).expect("reconnect");
    let stats = fresh.request(&Request::Stats).expect("stats");
    assert_eq!(stats.get("ok").and_then(Json::as_bool), Some(true));
    shutdown(handle);
}

#[test]
fn disconnect_mid_job_does_not_lose_the_job() {
    let handle = default_daemon();
    let id = {
        let mut conn = Connection::connect(&handle.addr).expect("connect");
        submit(&mut conn, "x.jav", APP_X)
        // Connection drops here, likely while the job is queued/running.
    };
    let mut conn = Connection::connect(&handle.addr).expect("reconnect");
    let (report, _) = wait_report(&mut conn, id);
    assert!(report.contains("\"bugs\""), "job completed despite disconnect");
    shutdown(handle);
}

#[test]
fn double_cancel_is_a_clean_error_and_scheduler_survives() {
    // One runner and a long queue: the second submission stays queued
    // long enough to cancel deterministically.
    let handle = start(ServeOptions {
        scheduler: SchedulerConfig {
            max_queued: 8,
            max_inflight: 1,
            queue_timeout_us: None,
        },
        ..ServeOptions::default()
    });
    let mut conn = Connection::connect(&handle.addr).expect("connect");
    let first = submit(&mut conn, "x.jav", APP_X);
    // Park the victim behind extra queued work so it is still queued
    // when the cancel arrives, however fast the first campaign runs.
    let fillers: Vec<u64> = (0..3).map(|_| submit(&mut conn, "x.jav", APP_X)).collect();
    let victim = submit(&mut conn, "y.jav", APP_Y);
    let cancelled = conn.request(&Request::Cancel { id: victim }).expect("cancel");
    assert_eq!(cancelled.get("ok").and_then(Json::as_bool), Some(true), "{cancelled:?}");
    let again = conn.request(&Request::Cancel { id: victim }).expect("double cancel");
    assert_eq!(again.get("ok").and_then(Json::as_bool), Some(false));
    assert!(
        again.get("error").and_then(Json::as_str).unwrap_or("").contains("already cancelled"),
        "{again:?}"
    );
    // Waiting on the cancelled job reports cancellation, not a hang.
    let waited = conn.request(&Request::Wait { id: victim }).expect("wait");
    assert_eq!(waited.get("ok").and_then(Json::as_bool), Some(false));
    // The scheduler is not poisoned: the first job still completes and
    // new submissions still flow.
    let (report, _) = wait_report(&mut conn, first);
    assert!(report.contains("\"bugs\""));
    for filler in fillers {
        wait_report(&mut conn, filler);
    }
    let next = submit(&mut conn, "x.jav", APP_X);
    let (next_report, _) = wait_report(&mut conn, next);
    assert_eq!(report, next_report, "same app, same report");
    shutdown(handle);
}

#[test]
fn cancel_of_unknown_job_is_a_clean_error() {
    let handle = default_daemon();
    let mut conn = Connection::connect(&handle.addr).expect("connect");
    let response = conn.request(&Request::Cancel { id: 424242 }).expect("cancel");
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    assert!(
        response.get("error").and_then(Json::as_str).unwrap_or("").contains("unknown"),
        "{response:?}"
    );
    shutdown(handle);
}

#[test]
fn reports_are_byte_identical_regardless_of_arrival_order() {
    // Daemon 1 sees X before Y; daemon 2 sees Y before X (and runs them
    // on a single runner to force strictly opposite execution order).
    let single = || {
        start(ServeOptions {
            scheduler: SchedulerConfig {
                max_queued: 8,
                max_inflight: 1,
                queue_timeout_us: None,
            },
            ..ServeOptions::default()
        })
    };
    let first = single();
    let (x1, y1) = {
        let mut conn = Connection::connect(&first.addr).expect("connect");
        let x = submit(&mut conn, "x.jav", APP_X);
        let y = submit(&mut conn, "y.jav", APP_Y);
        (wait_report(&mut conn, x).0, wait_report(&mut conn, y).0)
    };
    shutdown(first);
    let second = single();
    let (x2, y2) = {
        let mut conn = Connection::connect(&second.addr).expect("connect");
        let y = submit(&mut conn, "y.jav", APP_Y);
        let x = submit(&mut conn, "x.jav", APP_X);
        (wait_report(&mut conn, x).0, wait_report(&mut conn, y).0)
    };
    shutdown(second);
    assert_eq!(x1, x2, "app X report independent of arrival order");
    assert_eq!(y1, y2, "app Y report independent of arrival order");
    assert_ne!(x1, y1, "distinct apps produce distinct reports");
}

#[test]
fn repeat_submission_hits_the_cache_with_identical_report() {
    let handle = default_daemon();
    let mut conn = Connection::connect(&handle.addr).expect("connect");
    let first = submit(&mut conn, "x.jav", APP_X);
    let (fresh_report, fresh_cached) = wait_report(&mut conn, first);
    assert!(!fresh_cached, "first submission compiles");
    let second = submit(&mut conn, "x.jav", APP_X);
    let (cached_report, cached) = wait_report(&mut conn, second);
    assert!(cached, "second submission hits the ProgramIndex cache");
    assert_eq!(fresh_report, cached_report, "cache hit is byte-identical");
    let stats = conn.request(&Request::Stats).expect("stats");
    assert!(stats.get("cache_hits").and_then(Json::as_u64).unwrap_or(0) >= 1);
    shutdown(handle);
}

#[test]
fn admission_control_rejects_with_reason_when_queue_is_full() {
    let handle = start(ServeOptions {
        scheduler: SchedulerConfig {
            max_queued: 1,
            max_inflight: 1,
            queue_timeout_us: None,
        },
        ..ServeOptions::default()
    });
    let mut conn = Connection::connect(&handle.addr).expect("connect");
    // Fill the single runner and the single queue slot, then overflow.
    let kept: Vec<u64> = (0..2).map(|_| submit(&mut conn, "x.jav", APP_X)).collect();
    let mut rejections = 0;
    for _ in 0..3 {
        let response = conn
            .request(&Request::Submit {
                name: "cli".to_string(),
                priority: 5,
                files: vec![("x.jav".to_string(), APP_X.to_string())],
                jobs: None,
                shards: None,
            })
            .expect("submit response");
        if response.get("ok").and_then(Json::as_bool) == Some(false) {
            let reason = response.get("rejected").and_then(Json::as_str).unwrap_or("");
            assert!(reason.contains("queue full"), "{response:?}");
            rejections += 1;
        }
    }
    assert!(rejections >= 1, "overflow submissions must see backpressure");
    for id in kept {
        wait_report(&mut conn, id);
    }
    shutdown(handle);
}

#[test]
fn subscribe_streams_events_until_finished() {
    let handle = default_daemon();
    let mut control = Connection::connect(&handle.addr).expect("connect");
    let id = submit(&mut control, "x.jav", APP_X);
    // Subscribe from a second connection while the job runs (or, if it
    // already finished, expect the immediate terminal event).
    let (tx, rx) = mpsc::channel();
    let addr = handle.addr.clone();
    let streamer = thread::spawn(move || {
        let mut sub = Connection::connect(&addr).expect("subscriber connects");
        let ack = sub.request(&Request::Subscribe { id }).expect("subscribe ack");
        assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true), "{ack:?}");
        while let Some(line) = sub.read_line().expect("event line") {
            let event = Json::parse(&line).expect("event is json");
            let kind = event
                .get("event")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string();
            let done = kind == "finished";
            tx.send(kind).expect("collector alive");
            if done {
                break;
            }
        }
    });
    let events: Vec<String> = rx.into_iter().collect();
    streamer.join().expect("streamer thread");
    assert_eq!(events.last().map(String::as_str), Some("finished"), "events: {events:?}");
    let (report, _) = wait_report(&mut control, id);
    assert!(report.contains("\"bugs\""));
    shutdown(handle);
}

#[test]
fn compile_errors_come_back_as_job_failures() {
    let handle = default_daemon();
    let mut conn = Connection::connect(&handle.addr).expect("connect");
    let id = submit_raw(&mut conn, "bad.jav", "class {");
    let response = conn.request(&Request::Wait { id }).expect("wait");
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    assert!(
        response.get("error").and_then(Json::as_str).unwrap_or("").contains("compile failed"),
        "{response:?}"
    );
    // The runner pool survives compile failures.
    let good = submit(&mut conn, "x.jav", APP_X);
    wait_report(&mut conn, good);
    shutdown(handle);
}

fn submit_raw(conn: &mut Connection, path: &str, source: &str) -> u64 {
    let response = conn
        .request(&Request::Submit {
            name: "cli".to_string(),
            priority: 5,
            files: vec![(path.to_string(), source.to_string())],
            jobs: None,
            shards: None,
        })
        .expect("submit response");
    response.get("id").and_then(Json::as_u64).expect("job id")
}

#[test]
fn graceful_drain_refuses_new_work_and_finishes_admitted_jobs() {
    // A single runner keeps the second job queued when the drain lands,
    // so the drain demonstrably finishes *queued* work, not just running.
    let handle = start(ServeOptions {
        scheduler: SchedulerConfig {
            max_queued: 8,
            max_inflight: 1,
            queue_timeout_us: None,
        },
        ..ServeOptions::default()
    });
    let mut conn = Connection::connect(&handle.addr).expect("connect");
    let first = submit(&mut conn, "x.jav", APP_X);
    let second = submit(&mut conn, "y.jav", APP_Y);

    let mut drainer = Connection::connect(&handle.addr).expect("connect for drain");
    let ack = drainer
        .request(&Request::Shutdown {
            drain: true,
            deadline_ms: Some(60_000),
        })
        .expect("drain ack");
    assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true), "{ack:?}");
    assert_eq!(ack.get("draining").and_then(Json::as_bool), Some(true), "{ack:?}");

    // New admissions are refused with a retryable rejection, not an error.
    let mut late = Connection::connect(&handle.addr).expect("connect while draining");
    let refused = late
        .request(&Request::Submit {
            name: "cli".to_string(),
            priority: 5,
            files: vec![("x.jav".to_string(), APP_X.to_string())],
            jobs: None,
            shards: None,
        })
        .expect("submit while draining");
    assert_eq!(refused.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        refused.get("rejected").and_then(Json::as_str),
        Some("draining"),
        "{refused:?}"
    );

    // Both admitted jobs still complete with real reports.
    let (first_report, _) = wait_report(&mut conn, first);
    let (second_report, _) = wait_report(&mut conn, second);
    assert!(first_report.contains("\"bugs\""));
    assert!(second_report.contains("\"bugs\""));
    // And the daemon exits on its own once the queue is dry.
    handle.join();
}

#[cfg(unix)]
#[test]
fn unix_socket_round_trip() {
    let dir = std::env::temp_dir().join(format!("wasabi-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("serve.sock");
    let handle = start(ServeOptions {
        bind: Bind::Unix(path.clone()),
        ..ServeOptions::default()
    });
    let mut conn = Connection::connect(&handle.addr).expect("connect over unix socket");
    let id = submit(&mut conn, "x.jav", APP_X);
    let (report, _) = wait_report(&mut conn, id);
    assert!(report.contains("\"bugs\""));
    shutdown(handle);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}
