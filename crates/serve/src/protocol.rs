//! The serve wire protocol: schema-versioned JSON lines.
//!
//! Every frame is one line of JSON (no embedded newlines — the in-repo
//! writer escapes them). Requests carry `kind` and `v` so a daemon can
//! reject frames from the wrong tool or a future protocol revision with a
//! clean error instead of a parse failure deep in a handler:
//!
//! ```text
//! {"kind":"wasabi-serve","v":1,"op":"submit","name":"cli","priority":5,
//!  "files":[["app.jav","<source>"]]}
//! ```
//!
//! Responses are objects with `"ok":true` plus op-specific fields, or
//! `"ok":false` with either `"error"` (the request failed) or
//! `"rejected"` (admission control refused it — the job never existed).
//! Campaign reports travel as a single JSON string field; the writer's
//! exact escape round-trip keeps them byte-identical to batch output.

use wasabi_util::Json;

/// Protocol discriminator: frames from other tools are rejected early.
pub const PROTOCOL_KIND: &str = "wasabi-serve";
/// Current protocol revision.
pub const PROTOCOL_VERSION: u64 = 1;
/// Default cap on one frame's size in bytes. Oversized frames get an
/// error response and the connection is dropped — never buffered.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 8 * 1024 * 1024;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Submit a campaign job: app sources plus plan options.
    Submit {
        /// Project name (reports depend on it; the CLI uses `"cli"`).
        name: String,
        /// Scheduling priority, 0 (highest) ..= 9; default 5.
        priority: u8,
        /// `(relative path, contents)` pairs.
        files: Vec<(String, String)>,
        /// Campaign worker count override.
        jobs: Option<usize>,
        /// Run the campaign as a crash-tolerant multi-process sharded
        /// campaign with this many child processes (None = in-process).
        shards: Option<usize>,
    },
    /// Query a job's state (and queue position while queued).
    Status {
        /// Job id from the submit response.
        id: u64,
    },
    /// Cancel a queued or running job.
    Cancel {
        /// Job id.
        id: u64,
    },
    /// Stream span/progress events for a job until it finishes.
    Subscribe {
        /// Job id.
        id: u64,
    },
    /// Block until a job reaches a terminal state; reply with its result.
    Wait {
        /// Job id.
        id: u64,
    },
    /// Daemon counters: scheduler admissions, cache hits, and friends.
    Stats,
    /// Stop the daemon after replying. With `drain`, new submissions are
    /// refused (`"rejected":"draining"` — retryable) while admitted jobs
    /// finish, up to `deadline_ms`; without it, the stop is immediate.
    Shutdown {
        /// Refuse new work, finish what was admitted, then exit.
        drain: bool,
        /// Drain deadline in milliseconds (None = no deadline).
        deadline_ms: Option<u64>,
    },
}

fn str_field(value: &Json, key: &str) -> Result<String, String> {
    value
        .get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field {key:?}"))
}

fn u64_field(value: &Json, key: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

/// Parses one request line. Errors are protocol-level (shown to the
/// client verbatim); they never carry partial state.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = Json::parse(line).map_err(|e| format!("malformed frame: {e}"))?;
    match value.get("kind").and_then(Json::as_str) {
        Some(PROTOCOL_KIND) => {}
        Some(other) => return Err(format!("unknown protocol kind {other:?}")),
        None => return Err("missing protocol field \"kind\"".to_string()),
    }
    match value.get("v").and_then(Json::as_u64) {
        Some(PROTOCOL_VERSION) => {}
        Some(other) => {
            return Err(format!(
                "unsupported protocol version {other} (daemon speaks {PROTOCOL_VERSION})"
            ))
        }
        None => return Err("missing protocol field \"v\"".to_string()),
    }
    let op = value
        .get("op")
        .and_then(Json::as_str)
        .ok_or("missing field \"op\"")?;
    match op {
        "submit" => {
            let name = str_field(&value, "name")?;
            let priority = match value.get("priority") {
                None => crate::scheduler::DEFAULT_PRIORITY,
                Some(p) => {
                    let p = p.as_u64().ok_or("non-integer field \"priority\"")?;
                    u8::try_from(p.min(u64::from(crate::scheduler::MAX_PRIORITY)))
                        .expect("clamped to u8 range")
                }
            };
            let files_value = value
                .get("files")
                .and_then(Json::as_arr)
                .ok_or("missing or non-array field \"files\"")?;
            if files_value.is_empty() {
                return Err("submit needs at least one file".to_string());
            }
            let mut files = Vec::with_capacity(files_value.len());
            for entry in files_value {
                let pair = entry.as_arr().ok_or("each file must be [path, contents]")?;
                let (Some(path), Some(contents)) = (
                    pair.first().and_then(Json::as_str),
                    pair.get(1).and_then(Json::as_str),
                ) else {
                    return Err("each file must be [path, contents]".to_string());
                };
                files.push((path.to_string(), contents.to_string()));
            }
            let jobs = match value.get("jobs") {
                None => None,
                Some(j) => Some(
                    j.as_u64()
                        .and_then(|j| usize::try_from(j).ok())
                        .filter(|&j| j >= 1)
                        .ok_or("field \"jobs\" must be a positive integer")?,
                ),
            };
            let shards = match value.get("shards") {
                None => None,
                Some(s) => Some(
                    s.as_u64()
                        .and_then(|s| usize::try_from(s).ok())
                        .filter(|&s| s >= 1)
                        .ok_or("field \"shards\" must be a positive integer")?,
                ),
            };
            Ok(Request::Submit {
                name,
                priority,
                files,
                jobs,
                shards,
            })
        }
        "status" => Ok(Request::Status {
            id: u64_field(&value, "id")?,
        }),
        "cancel" => Ok(Request::Cancel {
            id: u64_field(&value, "id")?,
        }),
        "subscribe" => Ok(Request::Subscribe {
            id: u64_field(&value, "id")?,
        }),
        "wait" => Ok(Request::Wait {
            id: u64_field(&value, "id")?,
        }),
        "stats" => Ok(Request::Stats),
        // Old clients send a bare shutdown op: absent fields mean an
        // immediate stop, exactly the v1 behavior.
        "shutdown" => Ok(Request::Shutdown {
            drain: value.get("drain").and_then(Json::as_bool).unwrap_or(false),
            deadline_ms: value.get("deadline_ms").and_then(Json::as_u64),
        }),
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Renders a request as a wire line (without the trailing newline). The
/// `wasabi submit` client and the tests share this with the parser, so
/// both directions stay in sync.
pub fn render_request(request: &Request) -> String {
    let mut fields: Vec<(String, Json)> = vec![
        ("kind".to_string(), Json::from(PROTOCOL_KIND)),
        ("v".to_string(), Json::from(PROTOCOL_VERSION)),
    ];
    match request {
        Request::Submit {
            name,
            priority,
            files,
            jobs,
            shards,
        } => {
            fields.push(("op".to_string(), Json::from("submit")));
            fields.push(("name".to_string(), Json::from(name.as_str())));
            fields.push(("priority".to_string(), Json::from(u32::from(*priority))));
            fields.push((
                "files".to_string(),
                Json::arr(files.iter().map(|(path, contents)| {
                    Json::arr([Json::from(path.as_str()), Json::from(contents.as_str())])
                })),
            ));
            if let Some(jobs) = jobs {
                fields.push(("jobs".to_string(), Json::from(*jobs)));
            }
            if let Some(shards) = shards {
                fields.push(("shards".to_string(), Json::from(*shards)));
            }
        }
        Request::Status { id } => {
            fields.push(("op".to_string(), Json::from("status")));
            fields.push(("id".to_string(), Json::from(*id as i64)));
        }
        Request::Cancel { id } => {
            fields.push(("op".to_string(), Json::from("cancel")));
            fields.push(("id".to_string(), Json::from(*id as i64)));
        }
        Request::Subscribe { id } => {
            fields.push(("op".to_string(), Json::from("subscribe")));
            fields.push(("id".to_string(), Json::from(*id as i64)));
        }
        Request::Wait { id } => {
            fields.push(("op".to_string(), Json::from("wait")));
            fields.push(("id".to_string(), Json::from(*id as i64)));
        }
        Request::Stats => fields.push(("op".to_string(), Json::from("stats"))),
        Request::Shutdown { drain, deadline_ms } => {
            fields.push(("op".to_string(), Json::from("shutdown")));
            if *drain {
                fields.push(("drain".to_string(), Json::from(true)));
            }
            if let Some(ms) = deadline_ms {
                fields.push(("deadline_ms".to_string(), Json::from(*ms)));
            }
        }
    }
    Json::obj(fields).to_string()
}

/// An `"ok":true` response with extra fields, as one wire line.
pub fn ok_response(fields: impl IntoIterator<Item = (&'static str, Json)>) -> String {
    let mut all: Vec<(&'static str, Json)> = vec![("ok", Json::from(true))];
    all.extend(fields);
    Json::obj(all).to_string()
}

/// An `"ok":false` error response (the request failed).
pub fn error_response(message: &str) -> String {
    Json::obj([("ok", Json::from(false)), ("error", Json::from(message))]).to_string()
}

/// An `"ok":false` admission-control rejection (backpressure: the job was
/// never created).
pub fn rejected_response(reason: &str) -> String {
    Json::obj([("ok", Json::from(false)), ("rejected", Json::from(reason))]).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trips_through_render_and_parse() {
        let request = Request::Submit {
            name: "cli".to_string(),
            priority: 2,
            files: vec![("a.jav".to_string(), "class A {}\nline \"two\"".to_string())],
            jobs: Some(4),
            shards: Some(3),
        };
        assert_eq!(parse_request(&render_request(&request)), Ok(request));
    }

    #[test]
    fn control_ops_round_trip() {
        for request in [
            Request::Status { id: 7 },
            Request::Cancel { id: 7 },
            Request::Subscribe { id: 7 },
            Request::Wait { id: 7 },
            Request::Stats,
            Request::Shutdown {
                drain: false,
                deadline_ms: None,
            },
            Request::Shutdown {
                drain: true,
                deadline_ms: Some(1500),
            },
        ] {
            assert_eq!(parse_request(&render_request(&request)), Ok(request));
        }
    }

    #[test]
    fn bare_shutdown_frames_from_old_clients_stop_immediately() {
        let line = "{\"kind\":\"wasabi-serve\",\"v\":1,\"op\":\"shutdown\"}";
        assert_eq!(
            parse_request(line),
            Ok(Request::Shutdown {
                drain: false,
                deadline_ms: None,
            })
        );
    }

    #[test]
    fn malformed_and_foreign_frames_are_rejected_with_reasons() {
        assert!(parse_request("{not json").unwrap_err().contains("malformed"));
        assert!(parse_request("{\"op\":\"stats\"}")
            .unwrap_err()
            .contains("\"kind\""));
        let foreign = "{\"kind\":\"other-tool\",\"v\":1,\"op\":\"stats\"}";
        assert!(parse_request(foreign).unwrap_err().contains("other-tool"));
        let future = format!("{{\"kind\":\"wasabi-serve\",\"v\":{},\"op\":\"stats\"}}", 99);
        assert!(parse_request(&future).unwrap_err().contains("version 99"));
        let no_files = "{\"kind\":\"wasabi-serve\",\"v\":1,\"op\":\"submit\",\"name\":\"x\",\"files\":[]}";
        assert!(parse_request(no_files).unwrap_err().contains("one file"));
    }

    #[test]
    fn default_priority_applies_when_absent() {
        let line = "{\"kind\":\"wasabi-serve\",\"v\":1,\"op\":\"submit\",\"name\":\"x\",\"files\":[[\"a.jav\",\"c\"]]}";
        match parse_request(line).expect("parses") {
            Request::Submit { priority, .. } => {
                assert_eq!(priority, crate::scheduler::DEFAULT_PRIORITY)
            }
            other => panic!("unexpected request {other:?}"),
        }
    }
}
