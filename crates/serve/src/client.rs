//! A small blocking client for the serve protocol, shared by the
//! `wasabi submit` subcommand and the integration tests.

use crate::protocol::{render_request, Request};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use wasabi_util::Json;

trait StreamIo: Read + Write {}
impl<T: Read + Write> StreamIo for T {}

/// One connection to a serve daemon.
pub struct Connection {
    reader: BufReader<Box<dyn StreamIo>>,
}

impl Connection {
    /// Connects to `addr` — a unix socket path when it starts with `/`
    /// or `.`, a TCP `host:port` otherwise.
    pub fn connect(addr: &str) -> io::Result<Connection> {
        let stream: Box<dyn StreamIo> = {
            #[cfg(unix)]
            if addr.starts_with('/') || addr.starts_with('.') {
                Box::new(UnixStream::connect(addr)?)
            } else {
                let stream = TcpStream::connect(addr)?;
                let _ = stream.set_nodelay(true);
                Box::new(stream)
            }
            #[cfg(not(unix))]
            {
                let stream = TcpStream::connect(addr)?;
                let _ = stream.set_nodelay(true);
                Box::new(stream)
            }
        };
        Ok(Connection {
            reader: BufReader::new(stream),
        })
    }

    /// Sends a raw line (tests use this for malformed frames).
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        // One write per frame (see the daemon's write_line): a separate
        // newline segment interacts badly with Nagle on TCP.
        let mut framed = Vec::with_capacity(line.len() + 1);
        framed.extend_from_slice(line.as_bytes());
        framed.push(b'\n');
        let writer = self.reader.get_mut();
        writer.write_all(&framed)?;
        writer.flush()
    }

    /// Reads one response line; `None` when the daemon closed the
    /// connection.
    pub fn read_line(&mut self) -> io::Result<Option<String>> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Ok(None);
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(Some(line))
    }

    /// Sends a request and parses the one-line response.
    pub fn request(&mut self, request: &Request) -> io::Result<Json> {
        self.send_line(&render_request(request))?;
        let line = self
            .read_line()?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed connection"))?;
        Json::parse(&line)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))
    }
}
