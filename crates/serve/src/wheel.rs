//! A slotted timer wheel driven by an external microsecond clock.
//!
//! The daemon's scheduler needs deadlines (queue-wait timeouts) without
//! sleeping threads: deadlines are scheduled into a fixed ring of slots,
//! and whoever owns the wheel calls [`TimerWheel::advance`] with the
//! current [`Clock`](wasabi_util::metrics::Clock) reading — the wall
//! clock in the daemon, a `ManualClock` in tests, which is what makes
//! every scheduling test deterministic with zero real sleeps.
//!
//! Guarantees:
//! - an entry fires on the first `advance(now)` where `now` has reached
//!   its deadline tick, never before;
//! - entries firing on the same tick come back in schedule (FIFO) order;
//! - entries further out than one ring revolution stay parked in their
//!   slot (round counting) — capacity is unbounded, only *resolution* is
//!   fixed by `tick_us × slots`.

use std::collections::VecDeque;

/// One scheduled entry.
#[derive(Debug)]
struct Entry<T> {
    deadline_tick: u64,
    seq: u64,
    item: T,
}

/// A slotted timer wheel; see the module docs.
#[derive(Debug)]
pub struct TimerWheel<T> {
    tick_us: u64,
    slots: Vec<VecDeque<Entry<T>>>,
    /// The last tick fully processed by [`TimerWheel::advance`].
    current_tick: u64,
    seq: u64,
    len: usize,
}

impl<T> TimerWheel<T> {
    /// A wheel with `slots` slots of `tick_us` microseconds each. Both
    /// are clamped to at least 1 (slot count to at least 2).
    pub fn new(tick_us: u64, slots: usize) -> Self {
        TimerWheel {
            tick_us: tick_us.max(1),
            slots: (0..slots.max(2)).map(|_| VecDeque::new()).collect(),
            current_tick: 0,
            seq: 0,
            len: 0,
        }
    }

    /// Number of entries waiting in the wheel.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are waiting.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn tick_of(&self, at_us: u64) -> u64 {
        at_us / self.tick_us
    }

    /// Schedules `item` to fire once `now_us + delay_us` is reached,
    /// rounded up to the next tick boundary (an entry never fires early).
    pub fn schedule(&mut self, now_us: u64, delay_us: u64, item: T) {
        let deadline_us = now_us.saturating_add(delay_us);
        let deadline_tick = self
            .tick_of(deadline_us.saturating_add(self.tick_us - 1))
            .max(self.current_tick + 1);
        let slot = (deadline_tick % self.slots.len() as u64) as usize;
        self.slots[slot].push_back(Entry {
            deadline_tick,
            seq: self.seq,
            item,
        });
        self.seq += 1;
        self.len += 1;
    }

    /// Advances the wheel to `now_us`, returning every entry whose
    /// deadline has been reached, in (deadline tick, schedule order).
    pub fn advance(&mut self, now_us: u64) -> Vec<T> {
        let target = self.tick_of(now_us);
        let mut due: Vec<Entry<T>> = Vec::new();
        // One revolution past the target covers every slot that could
        // hold a due entry; iterating per-tick keeps deadline order.
        let span = self.slots.len() as u64;
        let first = self.current_tick + 1;
        if target >= first {
            let whole_revolutions = target - first >= span;
            if whole_revolutions {
                // Every slot gets visited at least once: drain all due
                // entries in one pass and sort (rare path — the wheel
                // was left unadvanced for a long time).
                for slot in &mut self.slots {
                    let mut keep = VecDeque::new();
                    while let Some(entry) = slot.pop_front() {
                        if entry.deadline_tick <= target {
                            due.push(entry);
                        } else {
                            keep.push_back(entry);
                        }
                    }
                    *slot = keep;
                }
                due.sort_by_key(|e| (e.deadline_tick, e.seq));
            } else {
                for tick in first..=target {
                    let slot = (tick % span) as usize;
                    let mut keep = VecDeque::new();
                    let mut batch: Vec<Entry<T>> = Vec::new();
                    while let Some(entry) = self.slots[slot].pop_front() {
                        if entry.deadline_tick <= tick {
                            batch.push(entry);
                        } else {
                            keep.push_back(entry);
                        }
                    }
                    self.slots[slot] = keep;
                    batch.sort_by_key(|e| (e.deadline_tick, e.seq));
                    due.extend(batch);
                }
            }
            self.current_tick = target;
        }
        self.len -= due.len();
        due.into_iter().map(|e| e.item).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi_util::metrics::{Clock, ManualClock};

    #[test]
    fn fires_at_deadline_never_early() {
        let clock = ManualClock::with_step(0);
        let mut wheel: TimerWheel<&str> = TimerWheel::new(100, 8);
        let now = clock.now_us();
        wheel.schedule(now, 250, "a"); // deadline rounds up to tick 3
        clock.advance(200);
        assert!(wheel.advance(clock.now_us()).is_empty(), "not due at 200us");
        clock.advance(100);
        assert_eq!(wheel.advance(clock.now_us()), vec!["a"], "due at 300us");
        assert!(wheel.is_empty());
    }

    #[test]
    fn same_tick_fires_in_fifo_order() {
        let mut wheel: TimerWheel<u32> = TimerWheel::new(10, 4);
        for item in 0..5u32 {
            wheel.schedule(0, 25, item);
        }
        assert_eq!(wheel.advance(30), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn entries_beyond_one_revolution_stay_parked() {
        let mut wheel: TimerWheel<&str> = TimerWheel::new(10, 4);
        // 4 slots × 10us: 95us is over two revolutions out.
        wheel.schedule(0, 95, "far");
        wheel.schedule(0, 15, "near");
        assert_eq!(wheel.advance(20), vec!["near"]);
        assert!(wheel.advance(80).is_empty(), "far entry not due yet");
        assert_eq!(wheel.advance(100), vec!["far"]);
    }

    #[test]
    fn big_jump_drains_in_deadline_order() {
        let mut wheel: TimerWheel<u32> = TimerWheel::new(10, 4);
        wheel.schedule(0, 95, 2);
        wheel.schedule(0, 15, 0);
        wheel.schedule(0, 35, 1);
        // Advance far past everything in one leap (> one revolution).
        assert_eq!(wheel.advance(10_000), vec![0, 1, 2]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn advance_is_monotonic() {
        let mut wheel: TimerWheel<&str> = TimerWheel::new(10, 4);
        assert!(wheel.advance(50).is_empty());
        wheel.schedule(50, 10, "x");
        // A stale (earlier) reading must not rewind the wheel.
        assert!(wheel.advance(30).is_empty());
        assert_eq!(wheel.advance(60), vec!["x"]);
    }
}
