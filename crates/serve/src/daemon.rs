//! The campaign-as-a-service daemon.
//!
//! One accept loop hands each connection to a detached session thread; a
//! fixed pool of runner threads executes jobs in the order the
//! [`Scheduler`](crate::scheduler::Scheduler) dictates. All shared state
//! lives behind one mutex; campaigns themselves run outside it, so a
//! slow campaign never blocks submissions, status queries, or cancels.
//!
//! Determinism contract: a job's report is produced by the same
//! [`compile_app`] → [`run_app_job`] → [`report_json`] pipeline as
//! `wasabi test --json`, so daemon output is byte-identical to batch
//! output for the same sources — cached or freshly compiled, whatever
//! the submission order or worker count.

use crate::cache::IndexCache;
use crate::protocol::{
    error_response, ok_response, parse_request, rejected_response, Request, DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_KIND, PROTOCOL_VERSION,
};
use crate::scheduler::{Admission, CancelOutcome, JobState, Scheduler, SchedulerConfig};
use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;
use wasabi_core::{
    compile_app, report_json, run_app_job, source_digest, DynamicOptions, ProfileCacheOptions,
};
use wasabi_engine::observer::{EngineEvent, EngineObserver};
use wasabi_util::metrics::{Clock, WallClock};
use wasabi_util::Json;

/// Where the daemon listens.
#[derive(Debug, Clone)]
pub enum Bind {
    /// A TCP address like `127.0.0.1:0` (port 0 picks a free port).
    Tcp(String),
    /// A unix-domain socket path (created at bind, removed if stale).
    #[cfg(unix)]
    Unix(PathBuf),
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen address.
    pub bind: Bind,
    /// Scheduling policy (admission caps, queue timeout).
    pub scheduler: SchedulerConfig,
    /// Compiled-app cache capacity.
    pub cache_capacity: usize,
    /// Default campaign worker count for jobs that don't override it.
    pub campaign_jobs: usize,
    /// Per-frame size cap; oversized frames get an error and the
    /// connection is dropped.
    pub max_frame_bytes: usize,
    /// Persist coverage profiles in this directory, keyed by each
    /// submission's source digest — the same key the compiled-app LRU
    /// uses — so resubmissions of unchanged sources skip the profiling
    /// pass even across daemon restarts. `None` (the default) profiles
    /// every job.
    pub profile_cache: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            bind: Bind::Tcp("127.0.0.1:0".to_string()),
            scheduler: SchedulerConfig::default(),
            cache_capacity: 8,
            campaign_jobs: 2,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            profile_cache: None,
        }
    }
}

/// A submitted job's inputs, queued until a runner picks them up.
#[derive(Debug)]
struct JobPayload {
    name: String,
    files: Vec<(String, String)>,
    jobs: Option<usize>,
    /// `Some(n)` runs the campaign as a sharded multi-process campaign
    /// with `n` child processes (re-execing this daemon's own binary).
    shards: Option<usize>,
}

/// A finished job's product.
#[derive(Debug)]
struct JobDone {
    report: String,
    bugs: usize,
    cached: bool,
}

#[derive(Debug)]
struct State {
    scheduler: Scheduler<JobPayload>,
    cache: IndexCache,
    results: BTreeMap<u64, Result<JobDone, String>>,
    subscribers: BTreeMap<u64, Vec<mpsc::Sender<String>>>,
    shutdown: bool,
    /// Graceful drain: refuse new admissions (retryable `"draining"`
    /// rejection), finish what was admitted, then flip `shutdown`.
    draining: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when queued work or a free runner slot appears.
    work: Condvar,
    /// Signalled when any job reaches a terminal state.
    done: Condvar,
    clock: WallClock,
    campaign_jobs: usize,
    profile_cache: Option<PathBuf>,
}

impl Shared {
    /// Expires queue-wait deadlines and closes their subscriber streams.
    /// Called from every wait loop so expiry does not depend on runner
    /// availability.
    fn tick_locked(&self, state: &mut State) {
        let now = self.clock.now_us();
        let expired = state.scheduler.tick(now);
        if expired.is_empty() {
            return;
        }
        for id in expired {
            finish_subscribers(state, id, "expired");
        }
        self.done.notify_all();
    }
}

/// Sends the terminal event to a job's subscribers and drops their
/// senders, which ends each subscriber's stream.
fn finish_subscribers(state: &mut State, id: u64, terminal: &str) {
    if let Some(senders) = state.subscribers.remove(&id) {
        let line = Json::obj([
            ("event", Json::from("finished")),
            ("id", Json::from(id)),
            ("state", Json::from(terminal)),
        ])
        .to_string();
        for sender in senders {
            let _ = sender.send(line.clone());
        }
    }
}

/// Forwards engine events to a job's live subscribers as JSON lines.
/// Re-reads the subscriber list per event so clients attaching mid-run
/// receive the remainder of the stream.
struct SubscriberBridge<'a> {
    shared: &'a Shared,
    id: u64,
}

impl SubscriberBridge<'_> {
    fn broadcast(&self, line: String) {
        let state = &mut *self.shared.state.lock().expect("serve state lock");
        if let Some(senders) = state.subscribers.get_mut(&self.id) {
            senders.retain(|sender| sender.send(line.clone()).is_ok());
        }
    }
}

impl EngineObserver for SubscriberBridge<'_> {
    fn on_event(&mut self, event: &EngineEvent<'_>) {
        let id = self.id;
        let line = match event {
            EngineEvent::PhaseStarted { name } => Json::obj([
                ("event", Json::from("phase_started")),
                ("id", Json::from(id)),
                ("name", Json::from(*name)),
            ]),
            EngineEvent::PhaseFinished { name } => Json::obj([
                ("event", Json::from("phase_finished")),
                ("id", Json::from(id)),
                ("name", Json::from(*name)),
            ]),
            EngineEvent::Started {
                total_runs, jobs, ..
            } => Json::obj([
                ("event", Json::from("campaign_started")),
                ("id", Json::from(id)),
                ("total_runs", Json::from(*total_runs)),
                ("jobs", Json::from(*jobs)),
            ]),
            EngineEvent::RunFinished {
                index,
                reports,
                attempts,
                ..
            } => Json::obj([
                ("event", Json::from("run_finished")),
                ("id", Json::from(id)),
                ("index", Json::from(*index)),
                ("reports", Json::from(*reports)),
                ("attempts", Json::from(u32::from(*attempts))),
            ]),
            EngineEvent::Finished { stats, .. } => Json::obj([
                ("event", Json::from("campaign_finished")),
                ("id", Json::from(id)),
                ("runs_total", Json::from(stats.runs_total)),
                ("reports", Json::from(stats.reports)),
            ]),
            // Per-attempt noise (retries, crashes, checkpoints) stays
            // local; subscribers get phase edges and run completions.
            _ => return,
        };
        self.broadcast(line.to_string());
    }
}

/// A running daemon: its bound address and the threads to join.
pub struct DaemonHandle {
    /// The bound address — `host:port` for TCP (with the real port when
    /// 0 was requested), the socket path for unix.
    pub addr: String,
    threads: Vec<thread::JoinHandle<()>>,
}

impl DaemonHandle {
    /// The startup banner printed by `wasabi serve` (and parsed by the
    /// smoke test to discover the port).
    pub fn banner(&self) -> String {
        Json::obj([
            ("kind", Json::from(PROTOCOL_KIND)),
            ("version", Json::from(PROTOCOL_VERSION)),
            ("addr", Json::from(self.addr.as_str())),
        ])
        .to_string()
    }

    /// Blocks until the daemon shuts down (via the `shutdown` op).
    pub fn join(self) {
        for handle in self.threads {
            let _ = handle.join();
        }
    }
}

enum ListenerKind {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

/// Binds, spawns the runner pool and accept loop, and returns. The
/// daemon stops when a client sends the `shutdown` op.
pub fn spawn(options: ServeOptions) -> io::Result<DaemonHandle> {
    let (listener, addr) = match &options.bind {
        Bind::Tcp(addr) => {
            let listener = TcpListener::bind(addr.as_str())?;
            let local = listener.local_addr()?.to_string();
            (ListenerKind::Tcp(listener), local)
        }
        #[cfg(unix)]
        Bind::Unix(path) => {
            // A stale socket file from a dead daemon would fail the bind;
            // connect() distinguishes stale from live.
            if path.exists() && UnixStream::connect(path).is_err() {
                let _ = std::fs::remove_file(path);
            }
            let listener = UnixListener::bind(path)?;
            (
                ListenerKind::Unix(listener),
                path.to_string_lossy().into_owned(),
            )
        }
    };

    let max_inflight = options.scheduler.max_inflight.max(1);
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            scheduler: Scheduler::new(options.scheduler.clone()),
            cache: IndexCache::new(options.cache_capacity),
            results: BTreeMap::new(),
            subscribers: BTreeMap::new(),
            shutdown: false,
            draining: false,
        }),
        work: Condvar::new(),
        done: Condvar::new(),
        clock: WallClock::new(),
        campaign_jobs: options.campaign_jobs.max(1),
        profile_cache: options.profile_cache.clone(),
    });

    let mut threads = Vec::with_capacity(max_inflight + 1);
    for _ in 0..max_inflight {
        let shared = Arc::clone(&shared);
        threads.push(thread::spawn(move || runner_loop(&shared)));
    }

    let accept_shared = Arc::clone(&shared);
    let accept_addr = addr.clone();
    let max_frame = options.max_frame_bytes;
    threads.push(thread::spawn(move || match listener {
        ListenerKind::Tcp(listener) => {
            for stream in listener.incoming() {
                if accept_shared.state.lock().expect("serve state lock").shutdown {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let _ = stream.set_nodelay(true);
                let shared = Arc::clone(&accept_shared);
                let addr = accept_addr.clone();
                // Detached: a lingering connection must not block shutdown.
                thread::spawn(move || run_session(stream, &shared, &addr, max_frame));
            }
        }
        #[cfg(unix)]
        ListenerKind::Unix(listener) => {
            for stream in listener.incoming() {
                if accept_shared.state.lock().expect("serve state lock").shutdown {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let shared = Arc::clone(&accept_shared);
                let addr = accept_addr.clone();
                thread::spawn(move || run_session(stream, &shared, &addr, max_frame));
            }
        }
    }));

    Ok(DaemonHandle { addr, threads })
}

/// Connects to the daemon's own listener; used after setting the
/// shutdown flag to unblock the blocking accept call.
fn poke_listener(addr: &str) {
    #[cfg(unix)]
    if addr.starts_with('/') || addr.starts_with('.') {
        let _ = UnixStream::connect(addr);
        return;
    }
    let _ = TcpStream::connect(addr);
}

fn runner_loop(shared: &Shared) {
    loop {
        let (id, payload) = {
            let mut state = shared.state.lock().expect("serve state lock");
            loop {
                if state.shutdown {
                    return;
                }
                shared.tick_locked(&mut state);
                if let Some(job) = state.scheduler.start_next() {
                    break job;
                }
                // The timeout bounds how stale queue-wait expiry can get
                // while every runner idles; work arrival still wakes us
                // immediately via the condvar.
                state = shared
                    .work
                    .wait_timeout(state, Duration::from_millis(25))
                    .expect("serve state lock")
                    .0;
            }
        };
        execute_job(shared, id, payload);
    }
}

fn execute_job(shared: &Shared, id: u64, payload: JobPayload) {
    if let Some(shards) = payload.shards {
        let result = execute_sharded_job(shared, id, shards, &payload);
        let mut state = shared.state.lock().expect("serve state lock");
        let was_cancelled = state.scheduler.state(id) == Some(JobState::Cancelled);
        state.scheduler.finish(id, result.is_ok());
        if was_cancelled {
            finish_subscribers(&mut state, id, "cancelled");
        } else {
            let terminal = if result.is_ok() { "done" } else { "failed" };
            state.results.insert(id, result);
            finish_subscribers(&mut state, id, terminal);
        }
        shared.done.notify_all();
        shared.work.notify_all();
        return;
    }
    let digest = source_digest(&payload.name, &payload.files);
    let cached_job = shared
        .state
        .lock()
        .expect("serve state lock")
        .cache
        .get(digest);
    let (job, cached) = match cached_job {
        Some(job) => (job, true),
        // Compile outside the lock: other sessions keep submitting and
        // querying while this runner compiles.
        None => match compile_app(&payload.name, payload.files, 0) {
            Ok(job) => {
                let job = Arc::new(job);
                shared
                    .state
                    .lock()
                    .expect("serve state lock")
                    .cache
                    .insert(Arc::clone(&job));
                (job, false)
            }
            Err(diagnostics) => {
                let message = diagnostics
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join("; ");
                let mut state = shared.state.lock().expect("serve state lock");
                state.scheduler.finish(id, false);
                state.results.insert(id, Err(format!("compile failed: {message}")));
                finish_subscribers(&mut state, id, "failed");
                shared.done.notify_all();
                shared.work.notify_all();
                return;
            }
        },
    };

    let mut options = DynamicOptions {
        jobs: payload.jobs.unwrap_or(shared.campaign_jobs),
        // The cache key is the job's source digest (relative paths +
        // contents), so a resubmission of the same sources — including
        // one that missed the compiled-app LRU after eviction — reuses
        // the persisted profile.
        profile_cache: shared.profile_cache.as_ref().map(|dir| ProfileCacheOptions {
            dir: dir.clone(),
            digest: job.digest,
            bypass: false,
        }),
        ..DynamicOptions::default()
    };
    // Timing capture only matters to subscribers watching span events;
    // unobserved jobs skip the clock reads (the report never carries
    // timing, so this cannot change the output bytes).
    options.capture_timing = {
        let state = shared.state.lock().expect("serve state lock");
        state.subscribers.contains_key(&id)
    };

    let mut bridge = SubscriberBridge { shared, id };
    let result = run_app_job(&job, &options, &mut bridge);
    let report = report_json(&job.identified, &result);
    let bugs = result.bugs.len();

    let mut state = shared.state.lock().expect("serve state lock");
    let was_cancelled = state.scheduler.state(id) == Some(JobState::Cancelled);
    state.scheduler.finish(id, true);
    if was_cancelled {
        // The cancel won: the computed result is discarded.
        finish_subscribers(&mut state, id, "cancelled");
    } else {
        state.results.insert(id, Ok(JobDone { report, bugs, cached }));
        finish_subscribers(&mut state, id, "done");
    }
    shared.done.notify_all();
    shared.work.notify_all();
}

/// Runs a submission as a crash-tolerant multi-process sharded campaign:
/// sources go to a per-job scratch directory (the child processes — this
/// daemon's own binary, re-execed — read them from disk), the supervisor
/// and merge run there, and the merged report comes back byte-identical
/// to the in-process pipeline whenever nothing was dead-lettered.
fn execute_sharded_job(
    shared: &Shared,
    id: u64,
    shards: usize,
    payload: &JobPayload,
) -> Result<JobDone, String> {
    for (path, _) in &payload.files {
        // Submitted paths are digest keys in the in-process pipeline, but
        // here they touch the filesystem: keep them inside the scratch dir.
        if std::path::Path::new(path).is_absolute() || path.split('/').any(|seg| seg == "..") {
            return Err(format!("sharded submission paths must be relative: {path:?}"));
        }
    }
    let digest = source_digest(&payload.name, &payload.files);
    let scratch = std::env::temp_dir().join(format!("wasabi-serve-shard-{digest:016x}-{id}"));
    std::fs::create_dir_all(&scratch)
        .map_err(|err| format!("create scratch dir {}: {err}", scratch.display()))?;
    let write = (|| -> Result<(), String> {
        for (path, contents) in &payload.files {
            let full = scratch.join(path);
            if let Some(parent) = full.parent() {
                std::fs::create_dir_all(parent)
                    .map_err(|err| format!("create {}: {err}", parent.display()))?;
            }
            std::fs::write(&full, contents)
                .map_err(|err| format!("write {}: {err}", full.display()))?;
        }
        Ok(())
    })();
    let result = write.and_then(|()| {
        let exe = std::env::current_exe()
            .map_err(|err| format!("cannot locate the wasabi binary for re-exec: {err}"))?;
        let options = wasabi_core::sharded::ShardedOptions {
            shards,
            dir: scratch.join("shards"),
            exe,
            cwd: Some(scratch.clone()),
            jobs: payload.jobs.unwrap_or(shared.campaign_jobs),
            quiet: true,
            ..wasabi_core::sharded::ShardedOptions::default()
        };
        let files: Vec<String> = payload.files.iter().map(|(path, _)| path.clone()).collect();
        wasabi_core::sharded::run_sharded(&files, &options).map(|outcome| JobDone {
            report: outcome.report,
            bugs: outcome.bugs,
            cached: false,
        })
    });
    let _ = std::fs::remove_dir_all(&scratch);
    result
}

/// Reads one frame (a line up to `max_frame` bytes). Returns
/// `Ok(None)` on EOF, `Err(oversized)` when the cap is hit.
fn read_frame<R: BufRead>(reader: &mut R, max_frame: usize) -> io::Result<Option<Result<String, ()>>> {
    let mut line = Vec::new();
    let n = reader
        .by_ref()
        .take(max_frame as u64 + 1)
        .read_until(b'\n', &mut line)?;
    if n == 0 {
        return Ok(None);
    }
    if line.len() > max_frame {
        return Ok(Some(Err(())));
    }
    while line.last() == Some(&b'\n') || line.last() == Some(&b'\r') {
        line.pop();
    }
    Ok(Some(Ok(String::from_utf8_lossy(&line).into_owned())))
}

fn write_line<W: Write>(writer: &mut W, line: &str) -> io::Result<()> {
    // One write per frame: splitting the newline into its own segment
    // triggers Nagle/delayed-ACK stalls (~40ms per response) on TCP.
    let mut framed = Vec::with_capacity(line.len() + 1);
    framed.extend_from_slice(line.as_bytes());
    framed.push(b'\n');
    writer.write_all(&framed)?;
    writer.flush()
}

fn run_session<S: Read + Write>(stream: S, shared: &Arc<Shared>, addr: &str, max_frame: usize) {
    let mut reader = BufReader::new(stream);
    loop {
        let frame = match read_frame(&mut reader, max_frame) {
            Ok(Some(Ok(frame))) => frame,
            Ok(Some(Err(()))) => {
                // Oversized: answer, then drop the connection — the rest
                // of the frame is unread and would desynchronize parsing.
                let _ = write_line(
                    reader.get_mut(),
                    &error_response(&format!("frame exceeds {max_frame} bytes")),
                );
                return;
            }
            Ok(None) | Err(_) => return,
        };
        if frame.trim().is_empty() {
            continue;
        }
        let request = match parse_request(&frame) {
            Ok(request) => request,
            Err(message) => {
                // Malformed frames get an error; the connection stays
                // usable (line framing is intact).
                if write_line(reader.get_mut(), &error_response(&message)).is_err() {
                    return;
                }
                continue;
            }
        };
        let keep_going = handle_request(request, &mut reader, shared, addr);
        if !keep_going {
            return;
        }
    }
}

/// Handles one request, writing responses through the reader's inner
/// stream. Returns `false` when the session should end.
fn handle_request<S: Read + Write>(
    request: Request,
    reader: &mut BufReader<S>,
    shared: &Arc<Shared>,
    addr: &str,
) -> bool {
    match request {
        Request::Submit {
            name,
            priority,
            files,
            jobs,
            shards,
        } => {
            let response = {
                let mut state = shared.state.lock().expect("serve state lock");
                if state.shutdown {
                    error_response("daemon is shutting down")
                } else if state.draining {
                    // A rejection, not an error: like a full queue, this
                    // is backpressure the client may retry elsewhere (or
                    // later, against a restarted daemon).
                    rejected_response("draining")
                } else {
                    shared.tick_locked(&mut state);
                    let now = shared.clock.now_us();
                    match state.scheduler.submit(
                        now,
                        priority,
                        JobPayload {
                            name,
                            files,
                            jobs,
                            shards,
                        },
                    ) {
                        Admission::Queued { id, position } => {
                            shared.work.notify_all();
                            ok_response([
                                ("id", Json::from(id)),
                                ("position", Json::from(position)),
                            ])
                        }
                        Admission::Rejected { reason } => rejected_response(&reason),
                    }
                }
            };
            write_line(reader.get_mut(), &response).is_ok()
        }
        Request::Status { id } => {
            let response = {
                let mut state = shared.state.lock().expect("serve state lock");
                shared.tick_locked(&mut state);
                match state.scheduler.state(id) {
                    None => error_response("unknown job id"),
                    Some(job_state) => {
                        let mut fields = vec![
                            ("id", Json::from(id)),
                            ("state", Json::from(job_state.as_str())),
                        ];
                        if let Some(position) = state.scheduler.queue_position(id) {
                            fields.push(("position", Json::from(position)));
                        }
                        ok_response(fields)
                    }
                }
            };
            write_line(reader.get_mut(), &response).is_ok()
        }
        Request::Cancel { id } => {
            let response = {
                let mut state = shared.state.lock().expect("serve state lock");
                let outcome = state.scheduler.cancel(id);
                match outcome {
                    CancelOutcome::CancelledQueued => {
                        // No runner will ever touch this job; close its
                        // subscriber streams here.
                        finish_subscribers(&mut state, id, "cancelled");
                        shared.done.notify_all();
                        ok_response([("id", Json::from(id)), ("cancelled", Json::from("queued"))])
                    }
                    CancelOutcome::CancelledRunning => {
                        shared.done.notify_all();
                        ok_response([("id", Json::from(id)), ("cancelled", Json::from("running"))])
                    }
                    CancelOutcome::AlreadyCancelled => error_response("job already cancelled"),
                    CancelOutcome::AlreadyFinished => error_response("job already finished"),
                    CancelOutcome::Unknown => error_response("unknown job id"),
                }
            };
            write_line(reader.get_mut(), &response).is_ok()
        }
        Request::Subscribe { id } => {
            let outcome = {
                let mut state = shared.state.lock().expect("serve state lock");
                shared.tick_locked(&mut state);
                match state.scheduler.state(id) {
                    None => Err(error_response("unknown job id")),
                    Some(job_state) if job_state.is_terminal() => Ok(Err(job_state)),
                    Some(_) => {
                        let (tx, rx) = mpsc::channel();
                        state.subscribers.entry(id).or_default().push(tx);
                        Ok(Ok(rx))
                    }
                }
            };
            match outcome {
                Err(response) => write_line(reader.get_mut(), &response).is_ok(),
                Ok(Err(terminal)) => {
                    let ok = ok_response([("id", Json::from(id)), ("streaming", Json::from(false))]);
                    if write_line(reader.get_mut(), &ok).is_err() {
                        return false;
                    }
                    let line = Json::obj([
                        ("event", Json::from("finished")),
                        ("id", Json::from(id)),
                        ("state", Json::from(terminal.as_str())),
                    ])
                    .to_string();
                    write_line(reader.get_mut(), &line).is_ok()
                }
                Ok(Ok(rx)) => {
                    let ok = ok_response([("id", Json::from(id)), ("streaming", Json::from(true))]);
                    if write_line(reader.get_mut(), &ok).is_err() {
                        return false;
                    }
                    // Stream until the runner (or cancel/expiry) drops
                    // the senders; the "finished" event is last.
                    for line in rx {
                        if write_line(reader.get_mut(), &line).is_err() {
                            return false;
                        }
                    }
                    true
                }
            }
        }
        Request::Wait { id } => {
            let response = wait_for_job(shared, id);
            write_line(reader.get_mut(), &response).is_ok()
        }
        Request::Stats => {
            let response = {
                let state = shared.state.lock().expect("serve state lock");
                let c = state.scheduler.counters;
                ok_response([
                    ("queued", Json::from(state.scheduler.queued_len())),
                    ("running", Json::from(state.scheduler.running_len())),
                    ("submitted", Json::from(c.submitted)),
                    ("rejected", Json::from(c.rejected)),
                    ("expired", Json::from(c.expired)),
                    ("cancelled", Json::from(c.cancelled)),
                    ("finished", Json::from(c.finished)),
                    ("cache_hits", Json::from(state.cache.hits)),
                    ("cache_misses", Json::from(state.cache.misses)),
                    ("cache_evicted", Json::from(state.cache.evicted)),
                ])
            };
            write_line(reader.get_mut(), &response).is_ok()
        }
        Request::Shutdown { drain, deadline_ms } => {
            if drain {
                {
                    let mut state = shared.state.lock().expect("serve state lock");
                    state.draining = true;
                    shared.work.notify_all();
                    shared.done.notify_all();
                }
                // A detached monitor flips `shutdown` once the scheduler
                // is empty (or the deadline passes); runners and waiters
                // never have to know drain exists.
                let monitor = Arc::clone(shared);
                let monitor_addr = addr.to_string();
                let deadline_us = deadline_ms
                    .map(|ms| shared.clock.now_us().saturating_add(ms.saturating_mul(1000)));
                thread::spawn(move || drain_monitor(&monitor, &monitor_addr, deadline_us));
                let response =
                    ok_response([("stopping", Json::from(true)), ("draining", Json::from(true))]);
                let _ = write_line(reader.get_mut(), &response);
            } else {
                {
                    let mut state = shared.state.lock().expect("serve state lock");
                    state.shutdown = true;
                    shared.work.notify_all();
                    shared.done.notify_all();
                }
                let _ =
                    write_line(reader.get_mut(), &ok_response([("stopping", Json::from(true))]));
                // Unblock the accept loop so it observes the flag.
                poke_listener(addr);
            }
            false
        }
    }
}

/// Waits out a graceful drain: once every admitted job is terminal (or
/// the deadline passes, abandoning whatever is still queued), flips the
/// shutdown flag and pokes the accept loop so the daemon exits cleanly.
fn drain_monitor(shared: &Shared, addr: &str, deadline_us: Option<u64>) {
    loop {
        let finished = {
            let mut state = shared.state.lock().expect("serve state lock");
            if state.shutdown {
                true
            } else {
                shared.tick_locked(&mut state);
                let idle =
                    state.scheduler.queued_len() == 0 && state.scheduler.running_len() == 0;
                let expired = deadline_us.is_some_and(|d| shared.clock.now_us() >= d);
                if idle || expired {
                    state.shutdown = true;
                    true
                } else {
                    let _ = shared
                        .done
                        .wait_timeout(state, Duration::from_millis(25))
                        .expect("serve state lock");
                    false
                }
            }
        };
        if finished {
            shared.work.notify_all();
            shared.done.notify_all();
            poke_listener(addr);
            return;
        }
    }
}

fn wait_for_job(shared: &Shared, id: u64) -> String {
    let mut state = shared.state.lock().expect("serve state lock");
    loop {
        shared.tick_locked(&mut state);
        match state.scheduler.state(id) {
            None => return error_response("unknown job id"),
            Some(JobState::Done) | Some(JobState::Failed) => {
                return match state.results.get(&id) {
                    Some(Ok(done)) => ok_response([
                        ("id", Json::from(id)),
                        ("state", Json::from("done")),
                        ("cached", Json::from(done.cached)),
                        ("bugs", Json::from(done.bugs)),
                        ("report", Json::from(done.report.as_str())),
                    ]),
                    Some(Err(message)) => error_response(message),
                    None => error_response("job result was discarded"),
                };
            }
            Some(JobState::Cancelled) => return error_response("job was cancelled"),
            Some(JobState::Expired) => {
                return error_response("job expired waiting in queue")
            }
            Some(JobState::Queued) | Some(JobState::Running) => {
                if state.shutdown {
                    return error_response("daemon is shutting down");
                }
                // The timeout keeps queue-wait expiry moving even when
                // no runner is idle to tick the wheel.
                state = shared
                    .done
                    .wait_timeout(state, Duration::from_millis(25))
                    .expect("serve state lock")
                    .0;
            }
        }
    }
}
