//! Client-side submit retry: bounded attempts, exponential backoff,
//! deterministic jitter.
//!
//! The daemon refuses work for two very different reasons, and the paper's
//! central WHEN question — *should* this error be retried? — applies to
//! our own client too:
//!
//! - **Rejections** (`"ok":false` with a `"rejected"` field) are
//!   backpressure: a full queue, or a draining daemon. The condition is
//!   transient by construction, so retrying with backoff is correct.
//! - **Errors** (`"ok":false` with an `"error"` field) are protocol or
//!   input failures: malformed frames, oversized frames, bad fields.
//!   Retrying cannot help and only re-sends the same doomed bytes.
//!
//! Connect failures sit with rejections (the daemon may be restarting).
//! The backoff schedule is exponential with a cap and *equal jitter* —
//! delay drawn from `[cap/2, cap)` of the capped exponential — from a
//! seeded [`Rng`], so tests can pin the exact schedule.

use std::time::Duration;
use wasabi_util::rng::fnv1a64;

/// Bounded-retry configuration for `wasabi submit`.
#[derive(Debug, Clone)]
pub struct RetryConfig {
    /// Total attempts, including the first (1 = no retry).
    pub attempts: u32,
    /// First retry's base delay.
    pub base: Duration,
    /// Exponential growth factor per retry.
    pub multiplier: f64,
    /// Ceiling on the un-jittered delay.
    pub cap: Duration,
    /// Jitter seed; attempts draw deterministically from it.
    pub jitter_seed: u64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            attempts: 1,
            base: Duration::from_millis(50),
            multiplier: 2.0,
            cap: Duration::from_secs(2),
            jitter_seed: 0x5355_424D_4954, // "SUBMIT"
        }
    }
}

/// One attempt's verdict, as classified by the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Attempt<T> {
    /// The operation succeeded.
    Ok(T),
    /// A transient refusal (connect failure, `"rejected"` response):
    /// worth retrying after a backoff.
    Retryable(String),
    /// A permanent failure (`"error"` response): retrying re-sends the
    /// same doomed request, so stop immediately.
    Fatal(String),
}

/// The delay before retry number `retry` (1-based): capped exponential
/// with equal jitter, deterministic in `(config.jitter_seed, retry)`.
///
/// The math is the workspace-shared formula, which carries the exponent
/// clamp, the non-negative guard, and the zero-base early return this
/// copy used to lack — extreme `retry`/`multiplier` values fed a wrapped
/// or NaN/negative value into `Duration::from_secs_f64`, which panics.
pub fn backoff_delay(config: &RetryConfig, retry: u32) -> Duration {
    let seed = fnv1a64([
        &config.jitter_seed.to_le_bytes()[..],
        &retry.to_le_bytes()[..],
    ]);
    wasabi_util::equal_jitter_backoff(config.base, config.multiplier, config.cap, retry, seed)
}

/// Drives `operation` up to `config.attempts` times, sleeping the
/// jittered backoff between retryable failures via `sleep` (injectable so
/// tests never wall-block). Returns the success value, or the last
/// failure message once attempts are exhausted or a fatal verdict lands.
pub fn retry_submit<T>(
    config: &RetryConfig,
    mut operation: impl FnMut(u32) -> Attempt<T>,
    mut sleep: impl FnMut(Duration),
) -> Result<T, String> {
    let attempts = config.attempts.max(1);
    let mut last = String::new();
    for attempt in 0..attempts {
        match operation(attempt) {
            Attempt::Ok(value) => return Ok(value),
            Attempt::Fatal(message) => return Err(message),
            Attempt::Retryable(message) => {
                last = message;
                if attempt + 1 < attempts {
                    sleep(backoff_delay(config, attempt + 1));
                }
            }
        }
    }
    Err(format!("giving up after {attempts} attempt(s): {last}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(attempts: u32) -> RetryConfig {
        RetryConfig {
            attempts,
            ..RetryConfig::default()
        }
    }

    #[test]
    fn backoff_schedule_is_deterministic_capped_and_jittered() {
        let config = config(8);
        let first: Vec<Duration> = (1..=8).map(|r| backoff_delay(&config, r)).collect();
        let again: Vec<Duration> = (1..=8).map(|r| backoff_delay(&config, r)).collect();
        assert_eq!(first, again, "same seed, same schedule");
        for (retry, delay) in first.iter().enumerate() {
            let retry = retry as u32 + 1;
            let capped = (0.05 * 2.0_f64.powi(retry as i32 - 1)).min(2.0);
            let secs = delay.as_secs_f64();
            assert!(
                secs >= capped * 0.5 && secs < capped,
                "retry {retry}: {secs}s outside equal-jitter window of {capped}s"
            );
        }
        // Deep retries pin to the cap's jitter window, not the raw curve.
        assert!(backoff_delay(&config, 30) < Duration::from_secs(2));
    }

    #[test]
    fn extreme_retry_and_multiplier_values_never_panic() {
        // Regression: the old copy cast the exponent `u32 as i32` without a
        // clamp and skipped the non-negative guard, so retry counts past
        // i32::MAX wrapped negative and hostile multipliers drove
        // `Duration::from_secs_f64` into its panic cases.
        for retry in [0, 1, u32::MAX] {
            for multiplier in [0.1, 0.5, 1.0, 2.0, 1e308, -3.0, f64::NAN, f64::INFINITY] {
                let config = RetryConfig {
                    attempts: 3,
                    multiplier,
                    ..RetryConfig::default()
                };
                let delay = backoff_delay(&config, retry);
                assert!(
                    delay <= config.cap,
                    "retry {retry} x{multiplier}: {delay:?} above cap"
                );
            }
        }
        // Zero base disables backoff outright.
        let zero = RetryConfig {
            base: Duration::ZERO,
            ..RetryConfig::default()
        };
        assert_eq!(backoff_delay(&zero, u32::MAX), Duration::ZERO);
    }

    #[test]
    fn retryable_failures_are_retried_with_bounded_attempts() {
        let mut slept = Vec::new();
        let mut calls = 0;
        let result: Result<u32, String> = retry_submit(
            &config(3),
            |_| {
                calls += 1;
                Attempt::Retryable("queue full".to_string())
            },
            |delay| slept.push(delay),
        );
        assert_eq!(calls, 3, "attempts bound the loop");
        assert_eq!(slept.len(), 2, "no sleep after the final failure");
        let message = result.expect_err("exhausted");
        assert!(message.contains("3 attempt(s)") && message.contains("queue full"));
    }

    #[test]
    fn success_and_fatal_verdicts_stop_immediately() {
        let mut calls = 0;
        let ok = retry_submit(
            &config(5),
            |attempt| {
                calls += 1;
                if attempt < 2 {
                    Attempt::Retryable("draining".to_string())
                } else {
                    Attempt::Ok(attempt)
                }
            },
            |_| {},
        );
        assert_eq!(ok, Ok(2));
        assert_eq!(calls, 3, "stops on the first success");

        calls = 0;
        let fatal: Result<u32, String> = retry_submit(
            &config(5),
            |_| {
                calls += 1;
                Attempt::Fatal("unknown op".to_string())
            },
            |_| panic!("fatal verdicts never sleep"),
        );
        assert_eq!(fatal, Err("unknown op".to_string()));
        assert_eq!(calls, 1, "fatal verdicts never retry");
    }
}
