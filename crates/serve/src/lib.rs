#![forbid(unsafe_code)]
//! Campaign-as-a-service: the `wasabi serve` daemon.
//!
//! The batch CLI recompiles an app for every invocation; the daemon
//! keeps a process warm, caches compiled [`wasabi_core::AppJob`]s by
//! source digest, and schedules submitted campaigns across a bounded
//! runner pool with per-client priorities and explicit backpressure.
//! Clients speak a schema-versioned JSON-lines protocol over TCP or a
//! unix socket: submit sources, poll status, cancel, wait for the
//! report, or subscribe to a live span/progress event stream.
//!
//! Layering:
//! - [`wheel`]: a slotted timer wheel driven by an external clock — the
//!   deadline primitive, deterministic under `ManualClock`;
//! - [`scheduler`]: the pure admission/priority/timeout state machine;
//! - [`cache`]: the compiled-app LRU;
//! - [`protocol`]: wire frames (requests, responses, events);
//! - [`daemon`]: threads and sockets around all of the above;
//! - [`client`]: the blocking client the CLI and tests use;
//! - [`retry`]: the client-side bounded/jittered submit retry policy.
//!
//! The determinism contract carries over from the engine: a submitted
//! job's report is byte-identical to `wasabi test --json` on the same
//! sources, whether it was compiled fresh or served from the cache.

pub mod cache;
pub mod client;
pub mod daemon;
pub mod protocol;
pub mod retry;
pub mod scheduler;
pub mod wheel;

pub use cache::IndexCache;
pub use client::Connection;
pub use daemon::{spawn, Bind, DaemonHandle, ServeOptions};
pub use protocol::{parse_request, render_request, Request, PROTOCOL_KIND, PROTOCOL_VERSION};
pub use retry::{retry_submit, Attempt, RetryConfig};
pub use scheduler::{Admission, CancelOutcome, JobState, Scheduler, SchedulerConfig};
pub use wheel::TimerWheel;
