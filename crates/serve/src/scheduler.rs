//! Job scheduling for the serve daemon: per-client priorities, admission
//! control, and queue-wait deadlines.
//!
//! The scheduler is a pure state machine — no threads, no sockets, no
//! clock of its own. Every mutating call takes `now_us` from the caller's
//! [`Clock`](wasabi_util::metrics::Clock), so the whole policy (admission,
//! priority order, timeouts) is unit-testable on a `ManualClock` with
//! zero real sleeps. The daemon wraps one of these in a `Mutex` and feeds
//! it wall-clock readings.
//!
//! Admission control and backpressure: a submission beyond
//! [`SchedulerConfig::max_queued`] is *rejected with a reason* — the
//! daemon turns that into an explicit `Rejected` response instead of
//! buffering without bound. At most [`SchedulerConfig::max_inflight`]
//! jobs run concurrently; the rest wait in priority order.

use crate::wheel::TimerWheel;
use std::collections::BTreeMap;

/// Scheduler policy knobs.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Maximum jobs waiting in the queue; submissions beyond it are
    /// rejected (backpressure, never unbounded buffering).
    pub max_queued: usize,
    /// Maximum jobs running concurrently.
    pub max_inflight: usize,
    /// Optional queue-wait deadline: a job still queued this many
    /// microseconds after submission expires (reported to the client as
    /// an error, not silently dropped).
    pub queue_timeout_us: Option<u64>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            max_queued: 64,
            max_inflight: 2,
            queue_timeout_us: None,
        }
    }
}

/// Lowest-numbered priority runs first; submissions at equal priority run
/// in arrival order. The protocol default.
pub const DEFAULT_PRIORITY: u8 = 5;
/// Highest accepted priority value (0..=MAX_PRIORITY).
pub const MAX_PRIORITY: u8 = 9;

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the priority queue.
    Queued,
    /// Handed to a runner.
    Running,
    /// Finished; the daemon holds its result.
    Done,
    /// Finished with an error (compile failure).
    Failed,
    /// Cancelled by a client before completion.
    Cancelled,
    /// Timed out waiting in the queue.
    Expired,
}

impl JobState {
    /// Stable wire string for status responses.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::Expired => "expired",
        }
    }

    /// Whether the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

/// The outcome of a submission.
#[derive(Debug)]
pub enum Admission {
    /// Admitted; `position` is the 0-based queue position at admission.
    Queued {
        /// The new job's id.
        id: u64,
        /// Queue position at admission time.
        position: usize,
    },
    /// Refused — the queue is full. The reason is sent verbatim to the
    /// client as a `Rejected` response.
    Rejected {
        /// Human-readable refusal reason.
        reason: String,
    },
}

/// What a cancel request achieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// Removed from the queue before running.
    CancelledQueued,
    /// Marked cancelled while running; the runner's result is discarded.
    CancelledRunning,
    /// The job already reached a terminal state.
    AlreadyFinished,
    /// The job was already cancelled (double-cancel).
    AlreadyCancelled,
    /// No such job id.
    Unknown,
}

#[derive(Debug)]
struct JobEntry<T> {
    priority: u8,
    seq: u64,
    state: JobState,
    payload: Option<T>,
}

/// The priority scheduler; generic over the job payload so tests can
/// drive it with plain values.
#[derive(Debug)]
pub struct Scheduler<T> {
    config: SchedulerConfig,
    next_id: u64,
    next_seq: u64,
    /// `(priority, seq) -> id`: BTreeMap order *is* dispatch order.
    queue: BTreeMap<(u8, u64), u64>,
    jobs: BTreeMap<u64, JobEntry<T>>,
    running: usize,
    deadlines: TimerWheel<u64>,
    /// Monotonic counters for the `stats` protocol op.
    pub counters: Counters,
}

/// Scheduler lifetime counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct Counters {
    /// Jobs admitted.
    pub submitted: u64,
    /// Submissions rejected by admission control.
    pub rejected: u64,
    /// Jobs expired by the queue-wait deadline.
    pub expired: u64,
    /// Jobs cancelled (queued or running).
    pub cancelled: u64,
    /// Jobs that reached `Done` or `Failed`.
    pub finished: u64,
}

impl<T> Scheduler<T> {
    /// A scheduler with the given policy.
    pub fn new(config: SchedulerConfig) -> Self {
        Scheduler {
            config,
            next_id: 1,
            next_seq: 0,
            queue: BTreeMap::new(),
            jobs: BTreeMap::new(),
            running: 0,
            // 256 slots of 10ms: 2.56s per revolution; longer deadlines
            // park with round counting.
            deadlines: TimerWheel::new(10_000, 256),
            counters: Counters::default(),
        }
    }

    /// Jobs currently waiting.
    pub fn queued_len(&self) -> usize {
        self.queue.len()
    }

    /// Jobs currently running.
    pub fn running_len(&self) -> usize {
        self.running
    }

    /// Submits a job at `priority` (clamped to [`MAX_PRIORITY`]).
    /// Rejects with a reason when the queue is full.
    pub fn submit(&mut self, now_us: u64, priority: u8, payload: T) -> Admission {
        if self.queue.len() >= self.config.max_queued {
            self.counters.rejected += 1;
            return Admission::Rejected {
                reason: format!(
                    "queue full: {} queued (max {}), {} running (max {})",
                    self.queue.len(),
                    self.config.max_queued,
                    self.running,
                    self.config.max_inflight
                ),
            };
        }
        let id = self.next_id;
        self.next_id += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        let priority = priority.min(MAX_PRIORITY);
        let position = self.queue.range(..(priority, seq)).count();
        self.queue.insert((priority, seq), id);
        self.jobs.insert(
            id,
            JobEntry {
                priority,
                seq,
                state: JobState::Queued,
                payload: Some(payload),
            },
        );
        if let Some(timeout) = self.config.queue_timeout_us {
            self.deadlines.schedule(now_us, timeout, id);
        }
        self.counters.submitted += 1;
        Admission::Queued { id, position }
    }

    /// Hands the highest-priority queued job to a runner, if the in-flight
    /// cap allows another.
    pub fn start_next(&mut self) -> Option<(u64, T)> {
        if self.running >= self.config.max_inflight {
            return None;
        }
        let (&slot, &id) = self.queue.iter().next()?;
        self.queue.remove(&slot);
        let entry = self.jobs.get_mut(&id).expect("queued job has an entry");
        entry.state = JobState::Running;
        self.running += 1;
        Some((id, entry.payload.take().expect("queued job has a payload")))
    }

    /// Marks a running job finished. `ok` distinguishes `Done` from
    /// `Failed`; a job cancelled while running stays `Cancelled`.
    pub fn finish(&mut self, id: u64, ok: bool) {
        let Some(entry) = self.jobs.get_mut(&id) else {
            return;
        };
        if entry.state == JobState::Running {
            entry.state = if ok { JobState::Done } else { JobState::Failed };
            self.counters.finished += 1;
        }
        self.running = self.running.saturating_sub(1);
    }

    /// Cancels a job; see [`CancelOutcome`] for the exact semantics.
    pub fn cancel(&mut self, id: u64) -> CancelOutcome {
        let Some(entry) = self.jobs.get_mut(&id) else {
            return CancelOutcome::Unknown;
        };
        match entry.state {
            JobState::Queued => {
                let key = (entry.priority, entry.seq);
                entry.state = JobState::Cancelled;
                entry.payload = None;
                self.queue.remove(&key);
                self.counters.cancelled += 1;
                CancelOutcome::CancelledQueued
            }
            JobState::Running => {
                entry.state = JobState::Cancelled;
                self.counters.cancelled += 1;
                CancelOutcome::CancelledRunning
            }
            JobState::Cancelled => CancelOutcome::AlreadyCancelled,
            JobState::Done | JobState::Failed | JobState::Expired => {
                CancelOutcome::AlreadyFinished
            }
        }
    }

    /// Advances the deadline wheel to `now_us`, expiring jobs still
    /// queued past their queue-wait deadline. Returns the expired ids.
    pub fn tick(&mut self, now_us: u64) -> Vec<u64> {
        let mut expired = Vec::new();
        for id in self.deadlines.advance(now_us) {
            let Some(entry) = self.jobs.get_mut(&id) else {
                continue;
            };
            if entry.state == JobState::Queued {
                let key = (entry.priority, entry.seq);
                entry.state = JobState::Expired;
                entry.payload = None;
                self.queue.remove(&key);
                self.counters.expired += 1;
                expired.push(id);
            }
        }
        expired
    }

    /// The job's current state, if the id exists.
    pub fn state(&self, id: u64) -> Option<JobState> {
        self.jobs.get(&id).map(|e| e.state)
    }

    /// 0-based queue position of a queued job.
    pub fn queue_position(&self, id: u64) -> Option<usize> {
        let entry = self.jobs.get(&id)?;
        if entry.state != JobState::Queued {
            return None;
        }
        let key = (entry.priority, entry.seq);
        Some(self.queue.range(..key).count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi_util::metrics::{Clock, ManualClock};

    fn sched(max_queued: usize, max_inflight: usize, timeout: Option<u64>) -> Scheduler<&'static str> {
        Scheduler::new(SchedulerConfig {
            max_queued,
            max_inflight,
            queue_timeout_us: timeout,
        })
    }

    fn id_of(admission: Admission) -> u64 {
        match admission {
            Admission::Queued { id, .. } => id,
            Admission::Rejected { reason } => panic!("unexpected rejection: {reason}"),
        }
    }

    #[test]
    fn priority_then_fifo_dispatch_order() {
        let mut s = sched(16, 16, None);
        let low = id_of(s.submit(0, 7, "low"));
        let first_high = id_of(s.submit(0, 2, "h1"));
        let second_high = id_of(s.submit(0, 2, "h2"));
        let urgent = id_of(s.submit(0, 0, "urgent"));
        let order: Vec<u64> = std::iter::from_fn(|| s.start_next().map(|(id, _)| id)).collect();
        assert_eq!(order, vec![urgent, first_high, second_high, low]);
    }

    #[test]
    fn admission_rejects_beyond_max_queued_with_reason() {
        let mut s = sched(2, 1, None);
        id_of(s.submit(0, 5, "a"));
        id_of(s.submit(0, 5, "b"));
        match s.submit(0, 5, "c") {
            Admission::Rejected { reason } => {
                assert!(reason.contains("queue full"), "reason: {reason}");
                assert!(reason.contains("max 2"), "reason: {reason}");
            }
            Admission::Queued { .. } => panic!("third submission must be rejected"),
        }
        assert_eq!(s.counters.rejected, 1);
        // Draining one slot re-opens admission.
        assert!(s.start_next().is_some());
        assert!(matches!(s.submit(0, 5, "c"), Admission::Queued { .. }));
    }

    #[test]
    fn max_inflight_caps_concurrency() {
        let mut s = sched(16, 2, None);
        let a = id_of(s.submit(0, 5, "a"));
        id_of(s.submit(0, 5, "b"));
        id_of(s.submit(0, 5, "c"));
        assert!(s.start_next().is_some());
        assert!(s.start_next().is_some());
        assert!(s.start_next().is_none(), "cap of 2 holds the third back");
        s.finish(a, true);
        assert!(s.start_next().is_some(), "finishing frees a slot");
        assert_eq!(s.state(a), Some(JobState::Done));
    }

    #[test]
    fn queue_timeout_expires_only_still_queued_jobs() {
        let clock = ManualClock::with_step(0);
        let mut s = sched(16, 1, Some(50_000));
        let started = id_of(s.submit(clock.now_us(), 5, "started"));
        let waiting = id_of(s.submit(clock.now_us(), 5, "waiting"));
        let (id, _) = s.start_next().expect("one slot free");
        assert_eq!(id, started);
        clock.advance(100_000);
        let expired = s.tick(clock.now_us());
        assert_eq!(expired, vec![waiting], "only the queued job expires");
        assert_eq!(s.state(waiting), Some(JobState::Expired));
        assert_eq!(s.state(started), Some(JobState::Running));
        assert_eq!(s.counters.expired, 1);
        assert!(s.start_next().is_none(), "expired job never dispatches");
    }

    #[test]
    fn cancel_semantics_including_double_cancel() {
        let mut s = sched(16, 1, None);
        let running = id_of(s.submit(0, 5, "running"));
        let queued = id_of(s.submit(0, 5, "queued"));
        s.start_next();
        assert_eq!(s.cancel(queued), CancelOutcome::CancelledQueued);
        assert_eq!(s.cancel(queued), CancelOutcome::AlreadyCancelled);
        assert_eq!(s.cancel(running), CancelOutcome::CancelledRunning);
        assert_eq!(s.cancel(running), CancelOutcome::AlreadyCancelled);
        // The runner eventually reports back; the job stays cancelled.
        s.finish(running, true);
        assert_eq!(s.state(running), Some(JobState::Cancelled));
        assert_eq!(s.cancel(999), CancelOutcome::Unknown);
        let done = id_of(s.submit(0, 5, "done"));
        s.start_next();
        s.finish(done, true);
        assert_eq!(s.cancel(done), CancelOutcome::AlreadyFinished);
        assert_eq!(s.counters.cancelled, 2);
        // The scheduler is not poisoned: submissions still flow.
        let next = id_of(s.submit(0, 5, "next"));
        assert_eq!(s.start_next().map(|(id, _)| id), Some(next));
    }

    #[test]
    fn queue_position_reflects_priority_order() {
        let mut s = sched(16, 1, None);
        let low = id_of(s.submit(0, 8, "low"));
        assert_eq!(s.queue_position(low), Some(0));
        let high = id_of(s.submit(0, 1, "high"));
        assert_eq!(s.queue_position(high), Some(0), "jumps the queue");
        assert_eq!(s.queue_position(low), Some(1));
    }
}
