//! LRU cache of compiled apps, keyed by source digest.
//!
//! Compilation plus identification is the expensive front half of a
//! campaign (interning, lowering, the LLM sweep); a repeat submission of
//! the same sources skips it entirely by hitting this cache. Entries are
//! `Arc<AppJob>` so a runner can hold a compiled app while another
//! submission evicts it.

use std::collections::VecDeque;
use std::sync::Arc;
use wasabi_core::AppJob;

/// A small LRU over compiled apps. Linear scans are fine: the capacity is
/// single digits (the daemon default is 8) and entries are compared by
/// `u64` digest.
#[derive(Debug)]
pub struct IndexCache {
    capacity: usize,
    /// Front is least-recently-used; back is most-recently-used.
    entries: VecDeque<(u64, Arc<AppJob>)>,
    /// Lookups that found a compiled app.
    pub hits: u64,
    /// Lookups that missed (the caller compiled and inserted).
    pub misses: u64,
    /// Entries evicted to stay within capacity.
    pub evicted: u64,
}

impl IndexCache {
    /// A cache holding at most `capacity` compiled apps (min 1).
    pub fn new(capacity: usize) -> Self {
        IndexCache {
            capacity: capacity.max(1),
            entries: VecDeque::new(),
            hits: 0,
            misses: 0,
            evicted: 0,
        }
    }

    /// Number of cached apps.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a compiled app by digest, marking it most-recently-used.
    pub fn get(&mut self, digest: u64) -> Option<Arc<AppJob>> {
        if let Some(index) = self.entries.iter().position(|(d, _)| *d == digest) {
            let entry = self.entries.remove(index).expect("index from position");
            let job = Arc::clone(&entry.1);
            self.entries.push_back(entry);
            self.hits += 1;
            Some(job)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Inserts a freshly compiled app, evicting the least-recently-used
    /// entry if over capacity. Re-inserting an existing digest refreshes
    /// its position.
    pub fn insert(&mut self, job: Arc<AppJob>) {
        let digest = job.digest;
        if let Some(index) = self.entries.iter().position(|(d, _)| *d == digest) {
            self.entries.remove(index);
        }
        self.entries.push_back((digest, job));
        while self.entries.len() > self.capacity {
            self.entries.pop_front();
            self.evicted += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi_core::compile_app;

    fn job(tag: &str) -> Arc<AppJob> {
        // Distinct sources per tag → distinct digests.
        let src = format!(
            "exception E;\nclass C{tag} {{\n  method op() throws E {{ return \"ok\"; }}\n  test t() {{ assert(this.op() == \"ok\"); }}\n}}\n"
        );
        Arc::new(compile_app("cli", vec![(format!("{tag}.jav"), src)], 0).expect("compile"))
    }

    #[test]
    fn get_hits_after_insert_and_counts() {
        let mut cache = IndexCache::new(2);
        let a = job("A");
        assert!(cache.get(a.digest).is_none());
        cache.insert(Arc::clone(&a));
        let hit = cache.get(a.digest).expect("hit");
        assert_eq!(hit.digest, a.digest);
        assert_eq!((cache.hits, cache.misses), (1, 1));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = IndexCache::new(2);
        let (a, b, c) = (job("A"), job("B"), job("C"));
        cache.insert(Arc::clone(&a));
        cache.insert(Arc::clone(&b));
        // Touch A so B becomes the LRU entry.
        cache.get(a.digest).expect("a cached");
        cache.insert(Arc::clone(&c));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(b.digest).is_none(), "B was evicted");
        assert!(cache.get(a.digest).is_some());
        assert!(cache.get(c.digest).is_some());
        assert_eq!(cache.evicted, 1);
    }
}
