//! Fault-injection planning (§3.1.4).
//!
//! A naive plan injects at every retry location in every unit test —
//! redundant for locations covered by many tests and wasteful when one test
//! covers many locations. WASABI's plan instead pairs each coverable retry
//! location with exactly one unit test, preferring to spread the pairs over
//! distinct tests: iterate over tests, give each its first uncovered
//! location, and keep iterating until every coverable location is planned.

use crate::coverage::CoverageProfile;
use std::collections::BTreeSet;
use wasabi_analysis::loops::RetryLocation;
use wasabi_inject::InjectionSpec;
use wasabi_lang::project::{CallSite, MethodId};

/// One planned `{unit test, retry location}` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanEntry {
    /// The test to repurpose.
    pub test: MethodId,
    /// The retry-location call site to inject at.
    pub site: CallSite,
}

/// The complete plan.
#[derive(Debug, Clone, Default)]
pub struct TestPlan {
    /// Planned pairs; every coverable site appears exactly once.
    pub entries: Vec<PlanEntry>,
    /// Sites no test covers (untestable by repurposed unit testing).
    pub uncovered_sites: Vec<CallSite>,
}

/// Builds the plan from a coverage profile.
pub fn plan(profile: &CoverageProfile, all_sites: &BTreeSet<CallSite>) -> TestPlan {
    let mut remaining: BTreeSet<CallSite> = profile.covered_sites();
    let mut entries = Vec::new();
    let tests: Vec<&MethodId> = profile.per_test.keys().collect();
    // Round-robin over tests, one site per test per pass, until all covered
    // sites are planned.
    while !remaining.is_empty() {
        let mut progressed = false;
        for test in &tests {
            let sites = &profile.per_test[*test];
            if let Some(site) = sites.iter().find(|s| remaining.contains(s)) {
                remaining.remove(site);
                entries.push(PlanEntry {
                    test: (*test).clone(),
                    site: *site,
                });
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    let covered = profile.covered_sites();
    let uncovered_sites = all_sites.difference(&covered).copied().collect();
    TestPlan {
        entries,
        uncovered_sites,
    }
}

/// A fully-specified injection run: a test plus one injection spec.
#[derive(Debug, Clone)]
pub struct InjectionRun {
    /// The test to run.
    pub test: MethodId,
    /// What to inject.
    pub spec: InjectionSpec,
}

/// The stable identity of an [`InjectionRun`] within a campaign:
/// `(test, call site, exception, K)`. Within one campaign a key is unique —
/// the plan pairs each site with exactly one test, and the expansion emits
/// one run per `(exception, K)` at that site.
///
/// This key is the *only* ordering the workspace uses for runs: the
/// planner sorts its expansion by it, and the campaign engine merges
/// parallel results back into it, so serial (`jobs=1`) and parallel
/// (`jobs=N`) executions produce byte-identical reports.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RunKey {
    /// The test being repurposed.
    pub test: MethodId,
    /// The injected call site.
    pub site: CallSite,
    /// The injected exception type.
    pub exception: String,
    /// The injection count bound K.
    pub k: u32,
}

impl InjectionRun {
    /// The run's stable campaign-wide sort key.
    pub fn key(&self) -> RunKey {
        RunKey {
            test: self.test.clone(),
            site: self.spec.location.site,
            exception: self.spec.location.exception.clone(),
            k: self.spec.k,
        }
    }
}

/// Runs compare by [`RunKey`] alone: two runs are equal iff they name the
/// same `(test, site, exception, K)`, which identifies a run uniquely
/// within a campaign.
impl PartialEq for InjectionRun {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for InjectionRun {}

impl PartialOrd for InjectionRun {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for InjectionRun {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Expands a plan into concrete runs: one per (entry, exception at the
/// site, K value), sorted by [`RunKey`]. The sort makes run order a pure
/// function of the plan — independent of coverage-profile iteration order
/// and of how a campaign engine schedules the runs.
pub fn expand_plan(
    plan: &TestPlan,
    locations: &[RetryLocation],
    ks: &[u32],
) -> Vec<InjectionRun> {
    let mut runs = Vec::new();
    for entry in &plan.entries {
        for location in locations.iter().filter(|l| l.site == entry.site) {
            for &k in ks {
                runs.push(InjectionRun {
                    test: entry.test.clone(),
                    spec: InjectionSpec::new(location.clone(), k),
                });
            }
        }
    }
    runs.sort();
    runs
}

/// Number of runs a naive plan (every test × every location it covers)
/// would need, for the same expansion factors.
pub fn naive_run_count(
    profile: &CoverageProfile,
    locations: &[RetryLocation],
    ks: &[u32],
) -> usize {
    let mut count = 0;
    for sites in profile.per_test.values() {
        for site in sites {
            let exceptions = locations.iter().filter(|l| l.site == *site).count();
            count += exceptions * ks.len();
        }
    }
    count
}

/// Filters expanded runs down to those that inject into one of the named
/// coordinator methods (`Class.method` strings), preserving order.
///
/// The repair loop's validation step uses this targeted re-plan: after
/// patching a method it re-executes only the runs whose retry location
/// lives in a patched coordinator, instead of the whole campaign. Keys
/// are unchanged — a targeted run's [`RunKey`] still identifies the same
/// run in the full campaign, so baseline outcomes stay comparable.
pub fn targeted_runs(runs: &[InjectionRun], coordinators: &BTreeSet<String>) -> Vec<InjectionRun> {
    runs.iter()
        .filter(|run| coordinators.contains(&run.spec.location.coordinator.to_string()))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi_analysis::loops::Mechanism;
    use wasabi_lang::ast::{CallId, LoopId};
    use wasabi_lang::project::FileId;

    fn site(call: u32) -> CallSite {
        CallSite {
            file: FileId(0),
            call: CallId(call),
        }
    }

    fn test_id(name: &str) -> MethodId {
        MethodId::new("T", name)
    }

    fn profile(per_test: &[(&str, &[u32])]) -> CoverageProfile {
        let mut profile = CoverageProfile {
            tests_total: per_test.len(),
            ..CoverageProfile::default()
        };
        for (name, sites) in per_test {
            let test = test_id(name);
            let sites: Vec<CallSite> = sites.iter().map(|c| site(*c)).collect();
            for s in &sites {
                profile
                    .site_to_tests
                    .entry(*s)
                    .or_default()
                    .push(test.clone());
            }
            profile.per_test.insert(test, sites);
        }
        profile
    }

    fn location(call: u32, exception: &str) -> RetryLocation {
        RetryLocation {
            site: site(call),
            coordinator: MethodId::new("C", "run"),
            retried: MethodId::new("C", "op"),
            exception: exception.to_string(),
            mechanism: Mechanism::Loop(LoopId(0)),
        }
    }

    #[test]
    fn every_coverable_site_planned_exactly_once() {
        let profile = profile(&[
            ("t1", &[1, 2, 3]),
            ("t2", &[1, 2]),
            ("t3", &[3]),
        ]);
        let all: BTreeSet<CallSite> = [1, 2, 3, 9].into_iter().map(site).collect();
        let plan = plan(&profile, &all);
        let mut planned_sites: Vec<CallSite> = plan.entries.iter().map(|e| e.site).collect();
        planned_sites.sort();
        assert_eq!(planned_sites, vec![site(1), site(2), site(3)]);
        assert_eq!(plan.uncovered_sites, vec![site(9)]);
    }

    #[test]
    fn plan_spreads_sites_over_distinct_tests() {
        let profile = profile(&[("t1", &[1, 2, 3]), ("t2", &[1, 2, 3]), ("t3", &[1, 2, 3])]);
        let all: BTreeSet<CallSite> = [1, 2, 3].into_iter().map(site).collect();
        let plan = plan(&profile, &all);
        assert_eq!(plan.entries.len(), 3);
        let tests: BTreeSet<&MethodId> = plan.entries.iter().map(|e| &e.test).collect();
        assert_eq!(tests.len(), 3, "each site goes to a different test");
    }

    #[test]
    fn expansion_multiplies_exceptions_and_k_values() {
        let profile = profile(&[("t1", &[1])]);
        let all: BTreeSet<CallSite> = [1].into_iter().map(site).collect();
        let plan = plan(&profile, &all);
        let locations = vec![location(1, "E1"), location(1, "E2")];
        let runs = expand_plan(&plan, &locations, &[1, 100]);
        assert_eq!(runs.len(), 4, "2 exceptions × 2 K values");
    }

    #[test]
    fn planning_cuts_redundant_runs() {
        // 50 tests all covering the same 2 sites.
        let tests: Vec<(String, Vec<u32>)> = (0..50)
            .map(|i| (format!("t{i:02}"), vec![1, 2]))
            .collect();
        let test_refs: Vec<(&str, &[u32])> = tests
            .iter()
            .map(|(n, s)| (n.as_str(), s.as_slice()))
            .collect();
        let profile = profile(&test_refs);
        let all: BTreeSet<CallSite> = [1, 2].into_iter().map(site).collect();
        let locations = vec![location(1, "E"), location(2, "E")];
        let planned = plan(&profile, &all);
        let with = expand_plan(&planned, &locations, &[1, 100]).len();
        let without = naive_run_count(&profile, &locations, &[1, 100]);
        assert_eq!(with, 4);
        assert_eq!(without, 200);
        assert!(without / with >= 27, "reduction {}x", without / with);
    }

    #[test]
    fn targeted_runs_filter_by_coordinator_and_keep_order() {
        let mut runs = Vec::new();
        for (call, class) in [(1, "Flaky"), (2, "Solid"), (3, "Flaky")] {
            let loc = RetryLocation {
                coordinator: MethodId::new(class, "run"),
                ..location(call, "E")
            };
            runs.push(InjectionRun {
                test: test_id("t1"),
                spec: InjectionSpec::new(loc, 100),
            });
        }
        let targets: BTreeSet<String> = ["Flaky.run".to_string()].into();
        let targeted = targeted_runs(&runs, &targets);
        assert_eq!(targeted.len(), 2);
        assert_eq!(
            targeted.iter().map(|r| r.key().site).collect::<Vec<_>>(),
            vec![site(1), site(3)],
            "order preserved, Solid.run dropped"
        );
        assert!(targeted_runs(&runs, &BTreeSet::new()).is_empty());
    }

    #[test]
    fn expansion_is_sorted_by_run_key() {
        let profile = profile(&[("t2", &[2]), ("t1", &[1])]);
        let all: BTreeSet<CallSite> = [1, 2].into_iter().map(site).collect();
        let plan = plan(&profile, &all);
        let locations = vec![
            location(2, "E2"),
            location(1, "E1"),
            location(1, "E0"),
        ];
        let runs = expand_plan(&plan, &locations, &[100, 1]);
        let keys: Vec<_> = runs.iter().map(InjectionRun::key).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "expand_plan returns runs in RunKey order");
        assert_eq!(runs.len(), 6, "3 (site, exception) pairs × 2 K values");
        // Within one (test, site, exception), K ascends.
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn empty_profile_plans_nothing() {
        let profile = CoverageProfile::default();
        let all: BTreeSet<CallSite> = [7].into_iter().map(site).collect();
        let plan = plan(&profile, &all);
        assert!(plan.entries.is_empty());
        assert_eq!(plan.uncovered_sites, vec![site(7)]);
    }
}
