//! Fault-injection planning (§3.1.4).
//!
//! A naive plan injects at every retry location in every unit test —
//! redundant for locations covered by many tests and wasteful when one test
//! covers many locations. WASABI's plan instead pairs each coverable retry
//! location with exactly one unit test, preferring to spread the pairs over
//! distinct tests: iterate over tests, give each its first uncovered
//! location, and keep iterating until every coverable location is planned.

use crate::coverage::CoverageProfile;
use std::collections::BTreeSet;
use wasabi_analysis::loops::RetryLocation;
use wasabi_inject::InjectionSpec;
use wasabi_lang::project::{CallSite, MethodId};

/// One planned `{unit test, retry location}` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanEntry {
    /// The test to repurpose.
    pub test: MethodId,
    /// The retry-location call site to inject at.
    pub site: CallSite,
}

/// The complete plan.
#[derive(Debug, Clone, Default)]
pub struct TestPlan {
    /// Planned pairs; every coverable site appears exactly once.
    pub entries: Vec<PlanEntry>,
    /// Sites no test covers (untestable by repurposed unit testing).
    pub uncovered_sites: Vec<CallSite>,
}

/// Builds the plan from a coverage profile.
pub fn plan(profile: &CoverageProfile, all_sites: &BTreeSet<CallSite>) -> TestPlan {
    let mut remaining: BTreeSet<CallSite> = profile.covered_sites();
    let mut entries = Vec::new();
    let tests: Vec<&MethodId> = profile.per_test.keys().collect();
    // Round-robin over tests, one site per test per pass, until all covered
    // sites are planned.
    while !remaining.is_empty() {
        let mut progressed = false;
        for test in &tests {
            let sites = &profile.per_test[*test];
            if let Some(site) = sites.iter().find(|s| remaining.contains(s)) {
                remaining.remove(site);
                entries.push(PlanEntry {
                    test: (*test).clone(),
                    site: *site,
                });
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    let covered = profile.covered_sites();
    let uncovered_sites = all_sites.difference(&covered).copied().collect();
    TestPlan {
        entries,
        uncovered_sites,
    }
}

/// A fully-specified injection run: a test plus one injection spec.
#[derive(Debug, Clone)]
pub struct InjectionRun {
    /// The test to run.
    pub test: MethodId,
    /// What to inject.
    pub spec: InjectionSpec,
}

/// Expands a plan into concrete runs: one per (entry, exception at the
/// site, K value).
pub fn expand_plan(
    plan: &TestPlan,
    locations: &[RetryLocation],
    ks: &[u32],
) -> Vec<InjectionRun> {
    let mut runs = Vec::new();
    for entry in &plan.entries {
        for location in locations.iter().filter(|l| l.site == entry.site) {
            for &k in ks {
                runs.push(InjectionRun {
                    test: entry.test.clone(),
                    spec: InjectionSpec::new(location.clone(), k),
                });
            }
        }
    }
    runs
}

/// Number of runs a naive plan (every test × every location it covers)
/// would need, for the same expansion factors.
pub fn naive_run_count(
    profile: &CoverageProfile,
    locations: &[RetryLocation],
    ks: &[u32],
) -> usize {
    let mut count = 0;
    for sites in profile.per_test.values() {
        for site in sites {
            let exceptions = locations.iter().filter(|l| l.site == *site).count();
            count += exceptions * ks.len();
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi_analysis::loops::Mechanism;
    use wasabi_lang::ast::{CallId, LoopId};
    use wasabi_lang::project::FileId;

    fn site(call: u32) -> CallSite {
        CallSite {
            file: FileId(0),
            call: CallId(call),
        }
    }

    fn test_id(name: &str) -> MethodId {
        MethodId::new("T", name)
    }

    fn profile(per_test: &[(&str, &[u32])]) -> CoverageProfile {
        let mut profile = CoverageProfile {
            tests_total: per_test.len(),
            ..CoverageProfile::default()
        };
        for (name, sites) in per_test {
            let test = test_id(name);
            let sites: Vec<CallSite> = sites.iter().map(|c| site(*c)).collect();
            for s in &sites {
                profile
                    .site_to_tests
                    .entry(*s)
                    .or_default()
                    .push(test.clone());
            }
            profile.per_test.insert(test, sites);
        }
        profile
    }

    fn location(call: u32, exception: &str) -> RetryLocation {
        RetryLocation {
            site: site(call),
            coordinator: MethodId::new("C", "run"),
            retried: MethodId::new("C", "op"),
            exception: exception.to_string(),
            mechanism: Mechanism::Loop(LoopId(0)),
        }
    }

    #[test]
    fn every_coverable_site_planned_exactly_once() {
        let profile = profile(&[
            ("t1", &[1, 2, 3]),
            ("t2", &[1, 2]),
            ("t3", &[3]),
        ]);
        let all: BTreeSet<CallSite> = [1, 2, 3, 9].into_iter().map(site).collect();
        let plan = plan(&profile, &all);
        let mut planned_sites: Vec<CallSite> = plan.entries.iter().map(|e| e.site).collect();
        planned_sites.sort();
        assert_eq!(planned_sites, vec![site(1), site(2), site(3)]);
        assert_eq!(plan.uncovered_sites, vec![site(9)]);
    }

    #[test]
    fn plan_spreads_sites_over_distinct_tests() {
        let profile = profile(&[("t1", &[1, 2, 3]), ("t2", &[1, 2, 3]), ("t3", &[1, 2, 3])]);
        let all: BTreeSet<CallSite> = [1, 2, 3].into_iter().map(site).collect();
        let plan = plan(&profile, &all);
        assert_eq!(plan.entries.len(), 3);
        let tests: BTreeSet<&MethodId> = plan.entries.iter().map(|e| &e.test).collect();
        assert_eq!(tests.len(), 3, "each site goes to a different test");
    }

    #[test]
    fn expansion_multiplies_exceptions_and_k_values() {
        let profile = profile(&[("t1", &[1])]);
        let all: BTreeSet<CallSite> = [1].into_iter().map(site).collect();
        let plan = plan(&profile, &all);
        let locations = vec![location(1, "E1"), location(1, "E2")];
        let runs = expand_plan(&plan, &locations, &[1, 100]);
        assert_eq!(runs.len(), 4, "2 exceptions × 2 K values");
    }

    #[test]
    fn planning_cuts_redundant_runs() {
        // 50 tests all covering the same 2 sites.
        let tests: Vec<(String, Vec<u32>)> = (0..50)
            .map(|i| (format!("t{i:02}"), vec![1, 2]))
            .collect();
        let test_refs: Vec<(&str, &[u32])> = tests
            .iter()
            .map(|(n, s)| (n.as_str(), s.as_slice()))
            .collect();
        let profile = profile(&test_refs);
        let all: BTreeSet<CallSite> = [1, 2].into_iter().map(site).collect();
        let locations = vec![location(1, "E"), location(2, "E")];
        let planned = plan(&profile, &all);
        let with = expand_plan(&planned, &locations, &[1, 100]).len();
        let without = naive_run_count(&profile, &locations, &[1, 100]);
        assert_eq!(with, 4);
        assert_eq!(without, 200);
        assert!(without / with >= 27, "reduction {}x", without / with);
    }

    #[test]
    fn empty_profile_plans_nothing() {
        let profile = CoverageProfile::default();
        let all: BTreeSet<CallSite> = [7].into_iter().map(site).collect();
        let plan = plan(&profile, &all);
        assert!(plan.entries.is_empty());
        assert_eq!(plan.uncovered_sites, vec![site(7)]);
    }
}
