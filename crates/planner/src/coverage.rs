//! Coverage profiling: which unit test covers which retry location.
//!
//! WASABI instruments every retry location and runs the whole suite once
//! (§3.1.4). Here the instrumentation is a
//! [`wasabi_inject::CoverageRecorder`] attached to the interpreter.

use std::collections::{BTreeMap, BTreeSet};
use wasabi_analysis::loops::RetryLocation;
use wasabi_inject::CoverageRecorder;
use wasabi_lang::project::{CallSite, MethodId, Project};
use wasabi_vm::runner::{run_test, RunOptions};

/// The result of the profiling pass.
#[derive(Debug, Clone, Default)]
pub struct CoverageProfile {
    /// Sites covered by each test (only tests that cover at least one).
    pub per_test: BTreeMap<MethodId, Vec<CallSite>>,
    /// Tests covering each site.
    pub site_to_tests: BTreeMap<CallSite, Vec<MethodId>>,
    /// Total number of tests in the suite.
    pub tests_total: usize,
    /// Total virtual milliseconds spent profiling.
    pub profile_virtual_ms: u64,
}

impl CoverageProfile {
    /// Number of tests covering at least one retry location.
    pub fn tests_covering_retry(&self) -> usize {
        self.per_test.len()
    }

    /// Sites covered by at least one test.
    pub fn covered_sites(&self) -> BTreeSet<CallSite> {
        self.site_to_tests.keys().copied().collect()
    }
}

/// Runs every test once with coverage instrumentation on `locations`.
pub fn profile_coverage(
    project: &Project,
    locations: &[RetryLocation],
    options: &RunOptions,
) -> CoverageProfile {
    let sites: BTreeSet<CallSite> = locations.iter().map(|l| l.site).collect();
    let mut recorder = CoverageRecorder::new(sites.iter().copied());
    let mut profile = CoverageProfile::default();
    let tests = project.tests();
    profile.tests_total = tests.len();
    for (_, test) in &tests {
        recorder.reset();
        let run = run_test(project, test, &mut recorder, options);
        profile.profile_virtual_ms += run.virtual_ms;
        let covered = recorder.covered();
        if covered.is_empty() {
            continue;
        }
        for site in &covered {
            profile
                .site_to_tests
                .entry(*site)
                .or_default()
                .push(test.clone());
        }
        profile.per_test.insert(test.clone(), covered);
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi_analysis::loops::{all_retry_locations, LoopQueryOptions};
    use wasabi_analysis::resolve::ProjectIndex;

    fn project() -> Project {
        let src = "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method op2() throws E { return 2; }\n\
               method runA() {\n\
                 for (var retry = 0; retry < 3; retry = retry + 1) {\n\
                   try { return this.op(); } catch (E e) { sleep(1); }\n\
                 }\n\
                 return null;\n\
               }\n\
               method runB() {\n\
                 for (var retries = 0; retries < 3; retries = retries + 1) {\n\
                   try { return this.op2(); } catch (E e) { sleep(1); }\n\
                 }\n\
                 return null;\n\
               }\n\
               test t1() { assert(this.runA() == 1); }\n\
               test t2() { assert(this.runA() == 1); assert(this.runB() == 2); }\n\
               test t3() { assert(true); }\n\
             }";
        Project::compile("t", vec![("c.jav", src)]).expect("compile")
    }

    #[test]
    fn profiles_per_test_site_coverage() {
        let p = project();
        let index = ProjectIndex::build(&p);
        let locations: Vec<RetryLocation> =
            all_retry_locations(&index, &LoopQueryOptions::default())
                .into_iter()
                .flat_map(|(_, locs)| locs)
                .collect();
        assert_eq!(locations.len(), 2, "two retry locations");
        let profile = profile_coverage(&p, &locations, &RunOptions::default());
        assert_eq!(profile.tests_total, 3);
        assert_eq!(profile.tests_covering_retry(), 2, "t3 covers nothing");
        assert_eq!(profile.covered_sites().len(), 2);
        let t1 = profile.per_test.get(&MethodId::new("C", "t1")).unwrap();
        assert_eq!(t1.len(), 1);
        let t2 = profile.per_test.get(&MethodId::new("C", "t2")).unwrap();
        assert_eq!(t2.len(), 2);
        // Both t1 and t2 cover the runA site.
        let shared = profile.site_to_tests.get(&t1[0]).unwrap();
        assert_eq!(shared.len(), 2);
    }
}
