//! Coverage profiling: which unit test covers which retry location.
//!
//! WASABI instruments every retry location and runs the whole suite once
//! (§3.1.4). Here the instrumentation is a
//! [`wasabi_inject::CoverageRecorder`] attached to the interpreter.

use std::collections::{BTreeMap, BTreeSet};
use wasabi_analysis::loops::RetryLocation;
use wasabi_inject::CoverageRecorder;
use wasabi_lang::project::{CallSite, FileId, MethodId, Project};
use wasabi_vm::runner::{run_test, RunOptions};

/// The result of the profiling pass.
#[derive(Debug, Clone, Default)]
pub struct CoverageProfile {
    /// Sites covered by each test (only tests that cover at least one).
    pub per_test: BTreeMap<MethodId, Vec<CallSite>>,
    /// Tests covering each site.
    pub site_to_tests: BTreeMap<CallSite, Vec<MethodId>>,
    /// Total number of tests in the suite.
    pub tests_total: usize,
    /// Total virtual milliseconds spent profiling.
    pub profile_virtual_ms: u64,
}

impl CoverageProfile {
    /// Number of tests covering at least one retry location.
    pub fn tests_covering_retry(&self) -> usize {
        self.per_test.len()
    }

    /// Sites covered by at least one test.
    pub fn covered_sites(&self) -> BTreeSet<CallSite> {
        self.site_to_tests.keys().copied().collect()
    }
}

/// Runs every test once with coverage instrumentation on `locations`.
pub fn profile_coverage(
    project: &Project,
    locations: &[RetryLocation],
    options: &RunOptions,
) -> CoverageProfile {
    profile_coverage_jobs(project, locations, options, 1)
}

/// [`profile_coverage`] on `jobs` worker threads. Baseline executions are
/// independent (each test runs in its own interpreter with its own
/// recorder), so the suite is split into contiguous chunks and the
/// per-chunk results concatenated back in suite order — the resulting
/// profile is byte-identical to the serial one for any `jobs` value.
pub fn profile_coverage_jobs(
    project: &Project,
    locations: &[RetryLocation],
    options: &RunOptions,
    jobs: usize,
) -> CoverageProfile {
    let sites: BTreeSet<CallSite> = locations.iter().map(|l| l.site).collect();
    let tests = project.tests();
    let mut profile = CoverageProfile {
        tests_total: tests.len(),
        ..CoverageProfile::default()
    };
    let jobs = jobs.max(1).min(tests.len().max(1));
    let per_test: Vec<(MethodId, Vec<CallSite>, u64)> = if jobs == 1 {
        profile_chunk(project, &sites, &tests, options)
    } else {
        let chunk_len = tests.len().div_ceil(jobs);
        let mut merged = Vec::with_capacity(tests.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = tests
                .chunks(chunk_len)
                .map(|chunk| {
                    let sites = &sites;
                    scope.spawn(move || profile_chunk(project, sites, chunk, options))
                })
                .collect();
            for handle in handles {
                merged.extend(handle.join().expect("profile worker panicked"));
            }
        });
        merged
    };
    for (test, covered, virtual_ms) in per_test {
        profile.profile_virtual_ms += virtual_ms;
        if covered.is_empty() {
            continue;
        }
        for site in &covered {
            profile
                .site_to_tests
                .entry(*site)
                .or_default()
                .push(test.clone());
        }
        profile.per_test.insert(test, covered);
    }
    profile
}

/// Profiles one contiguous chunk of the suite, returning `(test, covered
/// sites, virtual ms)` in chunk order.
fn profile_chunk(
    project: &Project,
    sites: &BTreeSet<CallSite>,
    tests: &[(FileId, MethodId)],
    options: &RunOptions,
) -> Vec<(MethodId, Vec<CallSite>, u64)> {
    let mut recorder = CoverageRecorder::new(sites.iter().copied());
    tests
        .iter()
        .map(|(_, test)| {
            recorder.reset();
            let run = run_test(project, test, &mut recorder, options);
            (test.clone(), recorder.covered(), run.virtual_ms)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi_analysis::loops::{all_retry_locations, LoopQueryOptions};
    use wasabi_analysis::resolve::ProjectIndex;

    fn project() -> Project {
        let src = "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method op2() throws E { return 2; }\n\
               method runA() {\n\
                 for (var retry = 0; retry < 3; retry = retry + 1) {\n\
                   try { return this.op(); } catch (E e) { sleep(1); }\n\
                 }\n\
                 return null;\n\
               }\n\
               method runB() {\n\
                 for (var retries = 0; retries < 3; retries = retries + 1) {\n\
                   try { return this.op2(); } catch (E e) { sleep(1); }\n\
                 }\n\
                 return null;\n\
               }\n\
               test t1() { assert(this.runA() == 1); }\n\
               test t2() { assert(this.runA() == 1); assert(this.runB() == 2); }\n\
               test t3() { assert(true); }\n\
             }";
        Project::compile("t", vec![("c.jav", src)]).expect("compile")
    }

    #[test]
    fn profiles_per_test_site_coverage() {
        let p = project();
        let index = ProjectIndex::build(&p);
        let locations: Vec<RetryLocation> =
            all_retry_locations(&index, &LoopQueryOptions::default())
                .into_iter()
                .flat_map(|(_, locs)| locs)
                .collect();
        assert_eq!(locations.len(), 2, "two retry locations");
        let profile = profile_coverage(&p, &locations, &RunOptions::default());
        assert_eq!(profile.tests_total, 3);
        assert_eq!(profile.tests_covering_retry(), 2, "t3 covers nothing");
        assert_eq!(profile.covered_sites().len(), 2);
        let t1 = profile.per_test.get(&MethodId::new("C", "t1")).unwrap();
        assert_eq!(t1.len(), 1);
        let t2 = profile.per_test.get(&MethodId::new("C", "t2")).unwrap();
        assert_eq!(t2.len(), 2);
        // Both t1 and t2 cover the runA site.
        let shared = profile.site_to_tests.get(&t1[0]).unwrap();
        assert_eq!(shared.len(), 2);
    }

    #[test]
    fn parallel_profile_is_identical_to_serial() {
        let p = project();
        let index = ProjectIndex::build(&p);
        let locations: Vec<RetryLocation> =
            all_retry_locations(&index, &LoopQueryOptions::default())
                .into_iter()
                .flat_map(|(_, locs)| locs)
                .collect();
        let serial = profile_coverage(&p, &locations, &RunOptions::default());
        // jobs beyond the suite size must clamp, not spawn idle workers.
        for jobs in [2, 3, 4, 16] {
            let parallel = profile_coverage_jobs(&p, &locations, &RunOptions::default(), jobs);
            assert_eq!(
                format!("{serial:?}"),
                format!("{parallel:?}"),
                "profile diverges at jobs={jobs}"
            );
        }
    }
}
