//! Coverage profiling: which unit test covers which retry location.
//!
//! WASABI instruments every retry location and runs the whole suite once
//! (§3.1.4). Here the instrumentation is a
//! [`wasabi_inject::CoverageRecorder`] attached to the interpreter.

use std::collections::{BTreeMap, BTreeSet};
use wasabi_analysis::loops::RetryLocation;
use wasabi_inject::CoverageRecorder;
use wasabi_lang::index::{ClassId, LExpr, LStmt};
use wasabi_lang::intern::Symbol;
use wasabi_lang::project::{CallSite, FileId, MethodId, Project};
use wasabi_vm::runner::{run_test, RunOptions};

/// The result of the profiling pass.
#[derive(Debug, Clone, Default)]
pub struct CoverageProfile {
    /// Sites covered by each test (only tests that cover at least one).
    pub per_test: BTreeMap<MethodId, Vec<CallSite>>,
    /// Tests covering each site.
    pub site_to_tests: BTreeMap<CallSite, Vec<MethodId>>,
    /// Total number of tests in the suite.
    pub tests_total: usize,
    /// Total virtual milliseconds spent profiling.
    pub profile_virtual_ms: u64,
}

impl CoverageProfile {
    /// Number of tests covering at least one retry location.
    pub fn tests_covering_retry(&self) -> usize {
        self.per_test.len()
    }

    /// Sites covered by at least one test.
    pub fn covered_sites(&self) -> BTreeSet<CallSite> {
        self.site_to_tests.keys().copied().collect()
    }
}

/// Runs every test once with coverage instrumentation on `locations`.
pub fn profile_coverage(
    project: &Project,
    locations: &[RetryLocation],
    options: &RunOptions,
) -> CoverageProfile {
    profile_coverage_jobs(project, locations, options, 1)
}

/// [`profile_coverage`] on `jobs` worker threads. Baseline executions are
/// independent (each test runs in its own interpreter with its own
/// recorder), so the suite is split into contiguous chunks and the
/// per-chunk results concatenated back in suite order — the resulting
/// profile is byte-identical to the serial one for any `jobs` value.
pub fn profile_coverage_jobs(
    project: &Project,
    locations: &[RetryLocation],
    options: &RunOptions,
    jobs: usize,
) -> CoverageProfile {
    let sites: BTreeSet<CallSite> = locations.iter().map(|l| l.site).collect();
    let tests = project.tests();
    let mut profile = CoverageProfile {
        tests_total: tests.len(),
        ..CoverageProfile::default()
    };
    // Static reachability prefilter: a test whose call graph provably
    // cannot reach any instrumented site would record empty coverage —
    // exactly what `per_test` drops below — so executing it buys nothing.
    // Large generated suites are mostly such filler (app HI: ~35k tests
    // for a handful of sites), which made the profile phase the dominant
    // cost of every campaign.
    let tests: Vec<(FileId, MethodId)> = match reachable_test_mask(project, &sites, &tests) {
        Some(mask) => tests
            .into_iter()
            .zip(mask)
            .filter_map(|(test, keep)| keep.then_some(test))
            .collect(),
        None => tests,
    };
    let jobs = jobs.max(1).min(tests.len().max(1));
    let per_test: Vec<(MethodId, Vec<CallSite>, u64)> = if jobs == 1 {
        profile_chunk(project, &sites, &tests, options)
    } else {
        let chunk_len = tests.len().div_ceil(jobs);
        let mut merged = Vec::with_capacity(tests.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = tests
                .chunks(chunk_len)
                .map(|chunk| {
                    let sites = &sites;
                    scope.spawn(move || profile_chunk(project, sites, chunk, options))
                })
                .collect();
            for handle in handles {
                merged.extend(handle.join().expect("profile worker panicked"));
            }
        });
        merged
    };
    for (test, covered, virtual_ms) in per_test {
        profile.profile_virtual_ms += virtual_ms;
        if covered.is_empty() {
            continue;
        }
        for site in &covered {
            profile
                .site_to_tests
                .entry(*site)
                .or_default()
                .push(test.clone());
        }
        profile.per_test.insert(test, covered);
    }
    profile
}

/// Profiles one contiguous chunk of the suite, returning `(test, covered
/// sites, virtual ms)` in chunk order.
fn profile_chunk(
    project: &Project,
    sites: &BTreeSet<CallSite>,
    tests: &[(FileId, MethodId)],
    options: &RunOptions,
) -> Vec<(MethodId, Vec<CallSite>, u64)> {
    let mut recorder = CoverageRecorder::new(sites.iter().copied());
    tests
        .iter()
        .map(|(_, test)| {
            recorder.reset();
            let run = run_test(project, test, &mut recorder, options);
            (test.clone(), recorder.covered(), run.virtual_ms)
        })
        .collect()
}

/// Which suite tests can possibly reach one of the instrumented sites,
/// decided by a *maximally over-approximate* static walk; `None` disables
/// the prefilter entirely (every test executes, the pre-existing
/// behaviour).
///
/// Soundness is the whole game here — a skipped test that dynamically
/// covered a site would change the plan and therefore the report bytes —
/// so the walk is deliberately cruder than the lint layer's typed
/// [`CallGraph`](wasabi_analysis::callgraph::CallGraph):
///
/// - a call `x.m(...)` may target **every** compiled method named `m`,
///   regardless of what receiver typing could prove (dynamic dispatch
///   always lands on a method of the called name, so the name-set is a
///   superset of any resolution);
/// - `new C(...)` edges to `C`'s (possibly inherited) `init` constructor;
/// - global builtins never invoke user methods (they fault on unknown
///   names), so `GlobalCall`s contribute no edges beyond their argument
///   expressions;
/// - field initialisers also run on instantiation but live outside method
///   bodies, so if **any** class's initialiser expression contains a call
///   or an instantiation the prefilter refuses (`None`) rather than model
///   it. (Corpus and example programs initialise fields with literals.)
fn reachable_test_mask(
    project: &Project,
    sites: &BTreeSet<CallSite>,
    tests: &[(FileId, MethodId)],
) -> Option<Vec<bool>> {
    let index = &project.index;
    for class in &index.classes {
        for init in &class.inits {
            if expr_contains_user_call(&init.expr) {
                return None;
            }
        }
    }

    // Per-method facts from one body walk: called names, instantiated
    // classes, and whether the body contains a target call site.
    let n = index.methods.len();
    let mut called_names: Vec<BTreeSet<Symbol>> = vec![BTreeSet::new(); n];
    let mut instantiated: Vec<BTreeSet<ClassId>> = vec![BTreeSet::new(); n];
    let mut hits_target = vec![false; n];
    let mut methods_by_name: BTreeMap<Symbol, Vec<u32>> = BTreeMap::new();
    for (m, method) in index.methods.iter().enumerate() {
        methods_by_name
            .entry(method.name)
            .or_default()
            .push(m as u32);
        walk_stmts(&method.body, &mut |expr| match expr {
            LExpr::Call { site, method, .. } => {
                called_names[m].insert(*method);
                if sites.contains(site) {
                    hits_target[m] = true;
                }
            }
            LExpr::NewObj { class, .. } => {
                instantiated[m].insert(*class);
            }
            _ => {}
        });
    }

    // Reverse-reachability BFS from the site-bearing methods over the
    // reversed name/constructor edges.
    let mut reverse: Vec<Vec<u32>> = vec![Vec::new(); n];
    for m in 0..n {
        for name in &called_names[m] {
            if let Some(targets) = methods_by_name.get(name) {
                for &t in targets {
                    reverse[t as usize].push(m as u32);
                }
            }
        }
        for &class in &instantiated[m] {
            if let Some(ctor) = index.resolve_dispatch(class, index.wk.init) {
                reverse[ctor as usize].push(m as u32);
            }
        }
    }
    let mut reach = hits_target;
    let mut frontier: Vec<u32> = reach
        .iter()
        .enumerate()
        .filter_map(|(m, &r)| r.then_some(m as u32))
        .collect();
    while let Some(m) = frontier.pop() {
        for &caller in &reverse[m as usize] {
            if !reach[caller as usize] {
                reach[caller as usize] = true;
                frontier.push(caller);
            }
        }
    }

    Some(
        tests
            .iter()
            .map(|(_, test)| {
                // A test that cannot be mapped back to a compiled method
                // executes unconditionally: degrade to profiling, never to
                // silently skipping.
                let resolved = index
                    .class_by_name(&test.class)
                    .zip(index.interner.lookup(&test.name))
                    .and_then(|(class, name)| index.resolve_dispatch(class, name));
                match resolved {
                    Some(m) => reach[m as usize],
                    None => true,
                }
            })
            .collect(),
    )
}

/// Whether an expression contains user-code invocation (a dispatchable
/// call or an instantiation, whose constructor and field initialisers run
/// user code). Builtin `GlobalCall`s and exception constructions are
/// benign in themselves; their argument expressions still recurse.
fn expr_contains_user_call(expr: &LExpr) -> bool {
    let mut found = false;
    walk_expr(expr, &mut |e| {
        if matches!(e, LExpr::Call { .. } | LExpr::NewObj { .. }) {
            found = true;
        }
    });
    found
}

/// Pre-order visit of every expression node in a body.
fn walk_stmts<'a>(stmts: &'a [LStmt], visit: &mut dyn FnMut(&'a LExpr)) {
    for stmt in stmts {
        match stmt {
            LStmt::Var { init, .. } => walk_expr(init, visit),
            LStmt::AssignLocal { value, .. } => walk_expr(value, visit),
            LStmt::AssignField { recv, value, .. } => {
                walk_expr(recv, visit);
                walk_expr(value, visit);
            }
            LStmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                walk_expr(cond, visit);
                walk_stmts(then_blk, visit);
                if let Some(e) = else_blk {
                    walk_stmts(e, visit);
                }
            }
            LStmt::While { cond, body } => {
                walk_expr(cond, visit);
                walk_stmts(body, visit);
            }
            LStmt::For {
                init,
                cond,
                update,
                body,
            } => {
                if let Some(i) = init {
                    walk_stmts(std::slice::from_ref(i), visit);
                }
                if let Some(c) = cond {
                    walk_expr(c, visit);
                }
                if let Some(u) = update {
                    walk_stmts(std::slice::from_ref(u), visit);
                }
                walk_stmts(body, visit);
            }
            LStmt::Switch {
                scrutinee,
                cases,
                default,
            } => {
                walk_expr(scrutinee, visit);
                for (_, body) in cases {
                    walk_stmts(body, visit);
                }
                if let Some(d) = default {
                    walk_stmts(d, visit);
                }
            }
            LStmt::Try {
                body,
                catches,
                finally,
            } => {
                walk_stmts(body, visit);
                for c in catches {
                    walk_stmts(&c.body, visit);
                }
                if let Some(f) = finally {
                    walk_stmts(f, visit);
                }
            }
            LStmt::Throw { expr } | LStmt::Log { expr } | LStmt::Expr { expr } => {
                walk_expr(expr, visit)
            }
            LStmt::Return { expr } => {
                if let Some(e) = expr {
                    walk_expr(e, visit);
                }
            }
            LStmt::Sleep { ms } => walk_expr(ms, visit),
            LStmt::Assert { cond, msg } => {
                walk_expr(cond, visit);
                if let Some(m) = msg {
                    walk_expr(m, visit);
                }
            }
            LStmt::Break | LStmt::Continue => {}
        }
    }
}

fn walk_expr<'a>(expr: &'a LExpr, visit: &mut dyn FnMut(&'a LExpr)) {
    visit(expr);
    match expr {
        LExpr::Call { recv, args, .. } => {
            if let Some(r) = recv {
                walk_expr(r, visit);
            }
            for a in args {
                walk_expr(a, visit);
            }
        }
        LExpr::Field { recv, .. } => walk_expr(recv, visit),
        LExpr::GlobalCall { args, .. }
        | LExpr::NewExc { args, .. }
        | LExpr::NewObj { args, .. }
        | LExpr::NewUnknown { args, .. } => {
            for a in args {
                walk_expr(a, visit);
            }
        }
        LExpr::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, visit);
            walk_expr(rhs, visit);
        }
        LExpr::Unary { expr, .. } => walk_expr(expr, visit),
        LExpr::InstanceOf { expr, .. } => walk_expr(expr, visit),
        LExpr::Literal(_) | LExpr::Local { .. } | LExpr::ImplicitField { .. } | LExpr::This => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi_analysis::loops::{all_retry_locations, LoopQueryOptions};
    use wasabi_analysis::resolve::ProjectIndex;

    fn project() -> Project {
        let src = "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method op2() throws E { return 2; }\n\
               method runA() {\n\
                 for (var retry = 0; retry < 3; retry = retry + 1) {\n\
                   try { return this.op(); } catch (E e) { sleep(1); }\n\
                 }\n\
                 return null;\n\
               }\n\
               method runB() {\n\
                 for (var retries = 0; retries < 3; retries = retries + 1) {\n\
                   try { return this.op2(); } catch (E e) { sleep(1); }\n\
                 }\n\
                 return null;\n\
               }\n\
               test t1() { assert(this.runA() == 1); }\n\
               test t2() { assert(this.runA() == 1); assert(this.runB() == 2); }\n\
               test t3() { assert(true); }\n\
             }";
        Project::compile("t", vec![("c.jav", src)]).expect("compile")
    }

    #[test]
    fn profiles_per_test_site_coverage() {
        let p = project();
        let index = ProjectIndex::build(&p);
        let locations: Vec<RetryLocation> =
            all_retry_locations(&index, &LoopQueryOptions::default())
                .into_iter()
                .flat_map(|(_, locs)| locs)
                .collect();
        assert_eq!(locations.len(), 2, "two retry locations");
        let profile = profile_coverage(&p, &locations, &RunOptions::default());
        assert_eq!(profile.tests_total, 3);
        assert_eq!(profile.tests_covering_retry(), 2, "t3 covers nothing");
        assert_eq!(profile.covered_sites().len(), 2);
        let t1 = profile.per_test.get(&MethodId::new("C", "t1")).unwrap();
        assert_eq!(t1.len(), 1);
        let t2 = profile.per_test.get(&MethodId::new("C", "t2")).unwrap();
        assert_eq!(t2.len(), 2);
        // Both t1 and t2 cover the runA site.
        let shared = profile.site_to_tests.get(&t1[0]).unwrap();
        assert_eq!(shared.len(), 2);
    }

    fn locations_of(p: &Project) -> Vec<RetryLocation> {
        let index = ProjectIndex::build(p);
        all_retry_locations(&index, &LoopQueryOptions::default())
            .into_iter()
            .flat_map(|(_, locs)| locs)
            .collect()
    }

    #[test]
    fn prefilter_keeps_reaching_tests_and_skips_filler() {
        let p = project();
        let locations = locations_of(&p);
        let sites: BTreeSet<CallSite> = locations.iter().map(|l| l.site).collect();
        let tests = p.tests();
        let mask = reachable_test_mask(&p, &sites, &tests).expect("prefilter enabled");
        let verdicts: BTreeMap<&str, bool> = tests
            .iter()
            .zip(&mask)
            .map(|((_, t), &keep)| (t.name.as_str(), keep))
            .collect();
        assert!(verdicts["t1"] && verdicts["t2"], "covering tests kept");
        assert!(!verdicts["t3"], "filler test provably reaches no site");
    }

    #[test]
    fn prefilter_traces_reachability_through_constructors() {
        // The covering test only touches the retry loop via `new D()`:
        // D's constructor calls the coordinator, so the test is reachable
        // only through the NewObj -> init edge.
        let src = "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 for (var retry = 0; retry < 3; retry = retry + 1) {\n\
                   try { return this.op(); } catch (E e) { sleep(1); }\n\
                 }\n\
                 return null;\n\
               }\n\
             }\n\
             class D {\n\
               method init() { var c = new C(); c.run(); }\n\
             }\n\
             class T {\n\
               test tCtor() { var d = new D(); assert(true); }\n\
               test tFiller() { assert(true); }\n\
             }";
        let p = Project::compile("t", vec![("c.jav", src)]).expect("compile");
        let locations = locations_of(&p);
        assert_eq!(locations.len(), 1);
        let sites: BTreeSet<CallSite> = locations.iter().map(|l| l.site).collect();
        let tests = p.tests();
        let mask = reachable_test_mask(&p, &sites, &tests).expect("prefilter enabled");
        let verdicts: BTreeMap<&str, bool> = tests
            .iter()
            .zip(&mask)
            .map(|((_, t), &keep)| (t.name.as_str(), keep))
            .collect();
        assert!(verdicts["tCtor"], "constructor edge keeps the test");
        assert!(!verdicts["tFiller"]);
        // And the executed profile agrees with the static verdict.
        let profile = profile_coverage(&p, &locations, &RunOptions::default());
        assert!(profile
            .per_test
            .contains_key(&MethodId::new("T", "tCtor")));
    }

    #[test]
    fn prefilter_refuses_field_initialiser_calls() {
        // `field w = new Worker()` runs Worker's constructor outside any
        // method body; the prefilter must disable itself rather than
        // model it.
        let src = "exception E;\n\
             class Worker { method go() { return 1; } }\n\
             class C {\n\
               field w = new Worker();\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 for (var retry = 0; retry < 3; retry = retry + 1) {\n\
                   try { return this.op(); } catch (E e) { sleep(1); }\n\
                 }\n\
                 return null;\n\
               }\n\
               test t() { assert(this.run() == 1); }\n\
             }";
        let p = Project::compile("t", vec![("c.jav", src)]).expect("compile");
        let locations = locations_of(&p);
        let sites: BTreeSet<CallSite> = locations.iter().map(|l| l.site).collect();
        assert!(
            reachable_test_mask(&p, &sites, &p.tests()).is_none(),
            "field-initialiser instantiation disables the prefilter"
        );
    }

    #[test]
    fn parallel_profile_is_identical_to_serial() {
        let p = project();
        let index = ProjectIndex::build(&p);
        let locations: Vec<RetryLocation> =
            all_retry_locations(&index, &LoopQueryOptions::default())
                .into_iter()
                .flat_map(|(_, locs)| locs)
                .collect();
        let serial = profile_coverage(&p, &locations, &RunOptions::default());
        // jobs beyond the suite size must clamp, not spawn idle workers.
        for jobs in [2, 3, 4, 16] {
            let parallel = profile_coverage_jobs(&p, &locations, &RunOptions::default(), jobs);
            assert_eq!(
                format!("{serial:?}"),
                format!("{parallel:?}"),
                "profile diverges at jobs={jobs}"
            );
        }
    }
}
