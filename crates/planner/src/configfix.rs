//! Restoring default retry configurations in unit tests (§3.1.4).
//!
//! Developers sometimes restrict retry in tests by overriding retry
//! configuration keys (e.g. setting the maximum attempts to 0). WASABI scans
//! tests for such writes and pins the affected keys to their declared
//! defaults during repurposed runs, so injected faults exercise the real
//! retry behaviour.

use std::collections::BTreeMap;
use wasabi_lang::ast::{Expr, Item};
use wasabi_lang::project::{MethodId, Project};

/// Substrings that mark a configuration key as retry-related.
pub const RETRY_KEY_MARKERS: &[&str] = &["retry", "retries", "attempt", "backoff"];

/// Result of the scan: which keys to pin, and which tests altered them.
#[derive(Debug, Clone, Default)]
pub struct ConfigRestoration {
    /// Retry-related keys written by at least one test, to be pinned to
    /// their declared defaults.
    pub pinned: Vec<String>,
    /// For each pinned key, the tests that wrote it.
    pub altered_by: BTreeMap<String, Vec<MethodId>>,
}

/// Whether a configuration key looks retry-related.
pub fn is_retry_key(key: &str) -> bool {
    let lower = key.to_lowercase();
    RETRY_KEY_MARKERS.iter().any(|m| lower.contains(m))
}

/// Scans every test method for `setConfig("<retry key>", ...)` writes.
pub fn restore_retry_configs(project: &Project) -> ConfigRestoration {
    let mut restoration = ConfigRestoration::default();
    for file in &project.files {
        for item in &file.items {
            let Item::Class(class) = item else { continue };
            for method in &class.methods {
                if !method.is_test {
                    continue;
                }
                let test = MethodId::new(&class.name, &method.name);
                wasabi_lang::ast::walk_exprs(&method.body, &mut |expr| {
                    let Expr::Call { recv, method: name, args, .. } = expr else {
                        return;
                    };
                    if recv.is_some() || name != "setConfig" {
                        return;
                    }
                    let Some(Expr::Literal(wasabi_lang::ast::Literal::Str(key), _)) =
                        args.first()
                    else {
                        return;
                    };
                    if is_retry_key(key) && project.symbols.config_default(key).is_some() {
                        restoration
                            .altered_by
                            .entry(key.clone())
                            .or_default()
                            .push(test.clone());
                    }
                });
            }
        }
    }
    restoration.pinned = restoration.altered_by.keys().cloned().collect();
    restoration
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_key_matching() {
        assert!(is_retry_key("dfs.mover.retry.max.attempts"));
        assert!(is_retry_key("client.backoff.ms"));
        assert!(is_retry_key("job.maxAttempts"));
        assert!(!is_retry_key("dfs.blocksize"));
    }

    #[test]
    fn finds_test_local_retry_overrides() {
        let src = "config \"rpc.retry.max\" default 10;\n\
             config \"io.buffer\" default 4096;\n\
             class T {\n\
               test tRestricts() { setConfig(\"rpc.retry.max\", 0); assert(true); }\n\
               test tUnrelated() { setConfig(\"io.buffer\", 1); assert(true); }\n\
               method helper() { setConfig(\"rpc.retry.max\", 1); }\n\
             }";
        let p = Project::compile("t", vec![("t.jav", src)]).unwrap();
        let restoration = restore_retry_configs(&p);
        assert_eq!(restoration.pinned, vec!["rpc.retry.max"]);
        let writers = &restoration.altered_by["rpc.retry.max"];
        assert_eq!(writers, &vec![MethodId::new("T", "tRestricts")]);
    }

    #[test]
    fn undeclared_keys_are_ignored() {
        let src = "class T { test t() { setConfig(\"ghost.retry.max\", 0); assert(true); } }";
        let p = Project::compile("t", vec![("t.jav", src)]).unwrap();
        let restoration = restore_retry_configs(&p);
        assert!(restoration.pinned.is_empty());
    }

    #[test]
    fn pinned_keys_integrate_with_runner() {
        use wasabi_vm::runner::{run_all_tests, RunOptions};
        let src = "config \"job.retry.max\" default 3;\n\
             class T {\n\
               test tPinned() {\n\
                 setConfig(\"job.retry.max\", 0);\n\
                 assert(getConfig(\"job.retry.max\") == 3, \"default restored\");\n\
               }\n\
             }";
        let p = Project::compile("t", vec![("t.jav", src)]).unwrap();
        let restoration = restore_retry_configs(&p);
        let options = RunOptions {
            pinned_configs: restoration.pinned,
            ..RunOptions::default()
        };
        let runs = run_all_tests(&p, &options);
        assert!(runs[0].outcome.is_pass(), "outcome: {:?}", runs[0].outcome);
    }
}
