//! Coverage-guided adaptive campaign planning (ROADMAP item 2).
//!
//! The fixed grid expands every planned `(test, site, exception)` group
//! into one run per K value and executes them all. The adaptive mode
//! keeps the *same* pairing (so recall against the fixed grid cannot be
//! lost to a different test/site assignment) but executes it in two
//! waves:
//!
//! 1. **Probe** — the max-K run of every group. The cap and delay
//!    oracles are fully decided by this run (both need the injector to
//!    keep failing the retried call: `MissingRetryCap` requires the
//!    observed attempt count to reach the cap threshold, and
//!    `MissingBackoffDelay` at least two injections), so no information
//!    those oracles could ever produce is lost by starting here.
//! 2. **Widen** — the remaining K values (the K=1 probe feeding the
//!    different-exception/HOW oracle), scheduled **only where the probe
//!    was inconclusive** (see [`ProbeSignal::conclusive`]) and not
//!    already explained by an equivalence class seen earlier in key
//!    order (see [`select_widen_runs`]).
//!
//! Everything here is pure data-flow over sorted structures: signals
//! arrive merged by [`RunKey`] (the engine observer feeds them back in
//! scheduling order; the caller re-merges), widen candidates are
//! processed in key order, and equivalence classes live in a `BTreeSet` —
//! so the selected run set is byte-identical across `--jobs` values and
//! resume splits.

use crate::plan::{InjectionRun, RunKey};
use std::collections::{BTreeMap, BTreeSet};
use wasabi_analysis::loops::RetryLocation;
use wasabi_lang::project::CallSite;
use wasabi_util::rng::fnv1a64;

/// The K the probe wave executes: the largest planned K (the cap-oracle
/// workhorse).
pub fn probe_k(ks: &[u32]) -> u32 {
    ks.iter().copied().max().unwrap_or(0)
}

/// A plan split into the two adaptive waves, both in key order.
#[derive(Debug, Clone, Default)]
pub struct AdaptivePlan {
    /// Wave 1: every group's max-K run.
    pub probe: Vec<InjectionRun>,
    /// Wave 2 candidates: every other K, subject to
    /// [`select_widen_runs`].
    pub widen: Vec<InjectionRun>,
}

/// Splits a key-sorted expansion into probe and widen waves.
pub fn split_waves(runs: Vec<InjectionRun>, probe_k: u32) -> AdaptivePlan {
    let mut plan = AdaptivePlan::default();
    for run in runs {
        if run.spec.k == probe_k {
            plan.probe.push(run);
        } else {
            plan.widen.push(run);
        }
    }
    plan
}

/// Priority of each injection site: the number of catch-paths (retry
/// locations — `(site, exception)` triplets) anchored there. Before any
/// injection run executes, every catch-path is uncovered, so sites with
/// more of them have the most unexplored behaviour and probe first.
pub fn site_priorities(locations: &[RetryLocation]) -> BTreeMap<CallSite, u64> {
    let mut priorities: BTreeMap<CallSite, u64> = BTreeMap::new();
    for location in locations {
        *priorities.entry(location.site).or_insert(0) += 1;
    }
    priorities
}

/// Expands site priorities into a per-run dispatch-order hint for the
/// engine (`CampaignOptions::schedule_priority` — pure scheduling, never
/// report-bearing).
pub fn run_priorities(
    runs: &[InjectionRun],
    sites: &BTreeMap<CallSite, u64>,
) -> BTreeMap<RunKey, u64> {
    runs.iter()
        .map(|run| {
            let key = run.key();
            let priority = sites.get(&key.site).copied().unwrap_or(0);
            (key, priority)
        })
        .collect()
}

/// Priority boost applied per disagreement-tier catch-path. Far above any
/// realistic catch-path count, so disagreement sites always dispatch
/// before unanimous ones while preserving the catch-path order *within*
/// each band.
pub const DISAGREEMENT_BOOST: u64 = 1 << 20;

/// CERBERUS-style arbitration hint (`wasabi lint --cross-check`): sites
/// whose coordinator method landed in a disagreement tier (static-only or
/// llm-only — exactly one detector flagged it) get a large priority boost,
/// so the probe wave spends its earliest runs where the two detectors
/// contradict each other. Pure scheduling, never report-bearing: the
/// executed run *set* is unchanged, only its dispatch order moves.
pub fn boost_disagreement_sites(
    sites: &mut BTreeMap<CallSite, u64>,
    locations: &[RetryLocation],
    methods: &BTreeSet<String>,
) {
    if methods.is_empty() {
        return;
    }
    for location in locations {
        if methods.contains(&location.coordinator.name) {
            if let Some(priority) = sites.get_mut(&location.site) {
                *priority += DISAGREEMENT_BOOST;
            }
        }
    }
}

/// The structure key of each site, for equivalence-class bucketing. When
/// several locations share a site they share a structure, so the first
/// wins.
pub fn site_structures(locations: &[RetryLocation]) -> BTreeMap<CallSite, String> {
    let mut structures = BTreeMap::new();
    for location in locations {
        structures
            .entry(location.site)
            .or_insert_with(|| location.structure_key());
    }
    structures
}

/// What a probe run observed, reduced to plain data (the planner has no
/// engine dependency; `wasabi-core` converts each `RunRecord` into one of
/// these as the observer feeds records back).
#[derive(Debug, Clone, Default)]
pub struct ProbeSignal {
    /// Stable outcome kind string (`"passed"`, `"exception_escaped"`,
    /// `"timed_out"`, ... — the journal/trace vocabulary).
    pub outcome_kind: String,
    /// The escaped exception's crash key (`type@frame>frame`), or the
    /// assertion/fault message; empty when neither applies.
    pub crash_detail: String,
    /// The run was filtered as a correct give-up rethrow.
    pub rethrow_filtered: bool,
    /// The run evidenced a misidentified trigger.
    pub not_a_trigger: bool,
    /// The run exhausted the engine retry policy.
    pub quarantined: bool,
    /// Faults injected.
    pub injections: u32,
    /// `(kind, dedup_key)` of every oracle report the run produced, in
    /// report order.
    pub reports: Vec<(String, String)>,
}

impl ProbeSignal {
    /// Whether the probe decided everything the remaining (smaller) K
    /// values could ever contribute:
    ///
    /// - `passed` — the test survived max-K injections, so it survives
    ///   one; the different-exception oracle (which only reports from
    ///   K=1 runs) has nothing to find.
    /// - `rethrow_filtered` — the structure gave up correctly by
    ///   rethrowing the injected type; correct give-up at max K is
    ///   correct give-up at K=1.
    /// - `not_a_trigger` — the site is not actually a retry trigger;
    ///   no K changes that.
    /// - zero injections — the fault never fired, so smaller K values
    ///   are byte-identical baseline runs.
    ///
    /// Everything else (a different exception type escaped, an assertion
    /// failed, virtual/host timeout, engine crash, quarantine) is
    /// inconclusive: the HOW oracle may still speak at K=1, so the widen
    /// wave runs.
    pub fn conclusive(&self) -> bool {
        !self.quarantined
            && (self.outcome_kind == "passed"
                || self.rethrow_filtered
                || self.not_a_trigger
                || self.injections == 0)
    }

    /// FNV-1a fingerprint of the probe's observable behaviour. Includes
    /// every report's `(kind, dedup_key)` and the crash detail, so two
    /// probes witnessing *different* bugs can never share a fingerprint —
    /// which is what makes class-based dedup sole-witness-safe by
    /// construction.
    pub fn fingerprint(&self) -> u64 {
        let mut buf = Vec::new();
        buf.extend_from_slice(self.outcome_kind.as_bytes());
        buf.push(0);
        buf.extend_from_slice(self.crash_detail.as_bytes());
        buf.push(0);
        buf.push(u8::from(self.rethrow_filtered));
        buf.push(u8::from(self.not_a_trigger));
        buf.push(u8::from(self.quarantined));
        buf.extend_from_slice(&self.injections.to_le_bytes());
        let mut reports: Vec<&(String, String)> = self.reports.iter().collect();
        reports.sort();
        for (kind, dedup) in reports {
            buf.extend_from_slice(kind.as_bytes());
            buf.push(0);
            buf.extend_from_slice(dedup.as_bytes());
            buf.push(0);
        }
        fnv1a64([buf.as_slice()])
    }
}

/// The widen wave after probe-driven selection, plus why candidates were
/// dropped.
#[derive(Debug, Clone, Default)]
pub struct WidenSelection {
    /// Runs to execute, in key order.
    pub runs: Vec<InjectionRun>,
    /// Candidates skipped because their probe was conclusive.
    pub skipped_conclusive: usize,
    /// Candidates skipped because an earlier group (in key order) already
    /// exhibited the same `(structure, fingerprint)` equivalence class.
    pub skipped_dedup: usize,
    /// Distinct inconclusive equivalence classes observed.
    pub classes: usize,
}

/// Selects which widen candidates actually execute.
///
/// Candidates are processed in key order. Each group's probe signal is
/// looked up under the probe key (`same (test, site, exception)`,
/// `k = probe_k`); a conclusive probe drops the group, an inconclusive
/// one executes **iff** its `(structure_key, fingerprint)` equivalence
/// class has not been claimed by an earlier group. A group with no probe
/// signal at all executes unconditionally — missing feedback must degrade
/// to the fixed grid, never to silence.
pub fn select_widen_runs(
    widen: Vec<InjectionRun>,
    probe_k: u32,
    signals: &BTreeMap<RunKey, ProbeSignal>,
    structures: &BTreeMap<CallSite, String>,
) -> WidenSelection {
    #[derive(Clone, Copy, PartialEq)]
    enum Decision {
        Keep,
        Conclusive,
        Dedup,
    }
    let mut seen: BTreeSet<(String, u64)> = BTreeSet::new();
    let mut decided: BTreeMap<RunKey, Decision> = BTreeMap::new();
    let mut selection = WidenSelection::default();
    for run in widen {
        let key = run.key();
        let probe_key = RunKey {
            k: probe_k,
            ..key.clone()
        };
        let decision = match decided.get(&probe_key) {
            Some(&d) => d,
            None => {
                let d = match signals.get(&probe_key) {
                    None => Decision::Keep,
                    Some(signal) if signal.conclusive() => Decision::Conclusive,
                    Some(signal) => {
                        let structure = structures
                            .get(&key.site)
                            .cloned()
                            .unwrap_or_else(|| key.site.to_string());
                        if seen.insert((structure, signal.fingerprint())) {
                            Decision::Keep
                        } else {
                            Decision::Dedup
                        }
                    }
                };
                decided.insert(probe_key, d);
                d
            }
        };
        match decision {
            Decision::Keep => selection.runs.push(run),
            Decision::Conclusive => selection.skipped_conclusive += 1,
            Decision::Dedup => selection.skipped_dedup += 1,
        }
    }
    selection.classes = seen.len();
    selection
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi_analysis::loops::Mechanism;
    use wasabi_inject::InjectionSpec;
    use wasabi_lang::ast::{CallId, LoopId};
    use wasabi_lang::project::{FileId, MethodId};

    fn site(call: u32) -> CallSite {
        CallSite {
            file: FileId(0),
            call: CallId(call),
        }
    }

    fn location(call: u32, exception: &str) -> RetryLocation {
        RetryLocation {
            site: site(call),
            coordinator: MethodId::new("C", "run"),
            retried: MethodId::new("C", "op"),
            exception: exception.to_string(),
            mechanism: Mechanism::Loop(LoopId(call)),
        }
    }

    fn run(test: &str, call: u32, exception: &str, k: u32) -> InjectionRun {
        InjectionRun {
            test: MethodId::new("T", test),
            spec: InjectionSpec::new(location(call, exception), k),
        }
    }

    fn signal(kind: &str, detail: &str) -> ProbeSignal {
        ProbeSignal {
            outcome_kind: kind.to_string(),
            crash_detail: detail.to_string(),
            injections: 3,
            ..ProbeSignal::default()
        }
    }

    #[test]
    fn probe_k_is_max() {
        assert_eq!(probe_k(&[1, 100]), 100);
        assert_eq!(probe_k(&[7]), 7);
        assert_eq!(probe_k(&[]), 0);
    }

    #[test]
    fn split_waves_partitions_by_k() {
        let runs = vec![run("t", 1, "E", 1), run("t", 1, "E", 100), run("t", 2, "E", 1)];
        let plan = split_waves(runs, 100);
        assert_eq!(plan.probe.len(), 1);
        assert_eq!(plan.widen.len(), 2);
    }

    #[test]
    fn conclusive_signals() {
        let mut s = signal("passed", "");
        assert!(s.conclusive());
        s.quarantined = true;
        assert!(!s.conclusive(), "quarantine always re-probes");
        let mut s = signal("exception_escaped", "E@C.run");
        assert!(!s.conclusive());
        s.rethrow_filtered = true;
        assert!(s.conclusive());
        let mut s = signal("timeout", "");
        assert!(!s.conclusive());
        s.injections = 0;
        assert!(s.conclusive(), "no injections fired: baseline behaviour");
        assert!(!signal("assertion_failed", "boom").conclusive());
    }

    #[test]
    fn fingerprint_separates_distinct_bugs() {
        let a = signal("exception_escaped", "Wrapped@C.run>C.op");
        let b = signal("exception_escaped", "Other@C.run>C.op");
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut with_report = a.clone();
        with_report
            .reports
            .push(("missing_cap".into(), "f0:0".into()));
        assert_ne!(a.fingerprint(), with_report.fingerprint());
    }

    #[test]
    fn fingerprint_ignores_report_order() {
        let mut a = signal("passed", "");
        a.reports.push(("missing_cap".into(), "k1".into()));
        a.reports.push(("missing_delay".into(), "k2".into()));
        let mut b = signal("passed", "");
        b.reports.push(("missing_delay".into(), "k2".into()));
        b.reports.push(("missing_cap".into(), "k1".into()));
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn selection_drops_conclusive_keeps_inconclusive() {
        let widen = vec![run("t1", 1, "E", 1), run("t2", 2, "E", 1)];
        let mut signals = BTreeMap::new();
        signals.insert(run("t1", 1, "E", 100).key(), signal("passed", ""));
        signals.insert(
            run("t2", 2, "E", 100).key(),
            signal("exception_escaped", "Wrapped@C.run"),
        );
        let structures = site_structures(&[location(1, "E"), location(2, "E")]);
        let sel = select_widen_runs(widen, 100, &signals, &structures);
        assert_eq!(sel.runs.len(), 1);
        assert_eq!(sel.runs[0].key().site, site(2));
        assert_eq!(sel.skipped_conclusive, 1);
        assert_eq!(sel.skipped_dedup, 0);
        assert_eq!(sel.classes, 1);
    }

    #[test]
    fn selection_dedups_same_class_but_never_distinct_details() {
        // Three inconclusive groups in three structures... two share the
        // exact same fingerprint *and* structure? No — structures differ
        // per site here, so nothing dedups.
        let widen = vec![
            run("t1", 1, "E", 1),
            run("t2", 2, "E", 1),
            run("t3", 3, "E", 1),
        ];
        let mut signals = BTreeMap::new();
        for (t, c) in [("t1", 1), ("t2", 2), ("t3", 3)] {
            signals.insert(run(t, c, "E", 100).key(), signal("exception_escaped", "W@C"));
        }
        let structures = site_structures(&[location(1, "E"), location(2, "E"), location(3, "E")]);
        let sel = select_widen_runs(widen.clone(), 100, &signals, &structures);
        assert_eq!(sel.runs.len(), 3, "distinct structures never collapse");

        // Same structure for all three sites: later groups dedup.
        let mut shared = BTreeMap::new();
        for c in [1, 2, 3] {
            shared.insert(site(c), "s:shared".to_string());
        }
        let sel = select_widen_runs(widen, 100, &signals, &shared);
        assert_eq!(sel.runs.len(), 1, "one witness per equivalence class");
        assert_eq!(sel.skipped_dedup, 2);
        assert_eq!(sel.classes, 1);
    }

    #[test]
    fn missing_signal_degrades_to_fixed_grid() {
        let widen = vec![run("t1", 1, "E", 1)];
        let sel = select_widen_runs(widen, 100, &BTreeMap::new(), &BTreeMap::new());
        assert_eq!(sel.runs.len(), 1);
    }

    #[test]
    fn disagreement_hints_boost_matching_sites_only() {
        let locations = vec![location(1, "E"), location(2, "E")];
        let mut sites = site_priorities(&locations);
        let baseline = sites.clone();

        // No hints: nothing moves.
        boost_disagreement_sites(&mut sites, &locations, &BTreeSet::new());
        assert_eq!(sites, baseline);

        // A hint naming the coordinator method boosts every site it
        // anchors; "run" covers both locations here.
        let hints: BTreeSet<String> = ["run".to_string()].into_iter().collect();
        boost_disagreement_sites(&mut sites, &locations, &hints);
        assert_eq!(sites[&site(1)], baseline[&site(1)] + DISAGREEMENT_BOOST);
        assert_eq!(sites[&site(2)], baseline[&site(2)] + DISAGREEMENT_BOOST);

        // A hint naming no coordinator leaves priorities alone.
        let mut fresh = site_priorities(&locations);
        let miss: BTreeSet<String> = ["nothing".to_string()].into_iter().collect();
        boost_disagreement_sites(&mut fresh, &locations, &miss);
        assert_eq!(fresh, baseline);
    }

    #[test]
    fn priorities_count_catch_paths_per_site() {
        let locations = vec![location(1, "E"), location(1, "F"), location(2, "E")];
        let sites = site_priorities(&locations);
        assert_eq!(sites[&site(1)], 2);
        assert_eq!(sites[&site(2)], 1);
        let runs = vec![run("t", 1, "E", 100), run("t", 2, "E", 100)];
        let by_run = run_priorities(&runs, &sites);
        assert_eq!(by_run[&runs[0].key()], 2);
        assert_eq!(by_run[&runs[1].key()], 1);
    }
}
