#![forbid(unsafe_code)]
//! Test preparation and fault-injection planning (§3.1.4 of the paper).
//!
//! Three stages turn a project's existing unit tests into an efficient
//! fault-injection campaign:
//!
//! 1. [`configfix`] — find tests that restrict retry via configuration
//!    overrides and pin those keys back to their declared defaults;
//! 2. [`coverage`] — run the whole suite once with instrumented retry
//!    locations to learn which test covers which location;
//! 3. [`plan`] — pair every coverable location with exactly one test
//!    (spreading across distinct tests), then expand each pair into concrete
//!    injection runs (one per trigger exception and K value).

pub mod adaptive;
pub mod configfix;
pub mod coverage;
pub mod plan;
pub mod profile_cache;

pub use adaptive::{probe_k, select_widen_runs, split_waves, AdaptivePlan, ProbeSignal};
pub use configfix::{is_retry_key, restore_retry_configs, ConfigRestoration};
pub use coverage::{profile_coverage, CoverageProfile};
pub use plan::{expand_plan, naive_run_count, plan, targeted_runs, InjectionRun, PlanEntry, TestPlan};
pub use profile_cache::ProfileCacheOptions;
