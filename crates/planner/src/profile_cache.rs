//! Digest-keyed persistence for [`CoverageProfile`]s.
//!
//! The profiling pass dominates campaign wall time (it executes the whole
//! unit-test suite once), yet its result is a pure function of the
//! project's sources and retry locations. This module caches that result
//! on disk, keyed by the same FNV-1a source digest the serve daemon's
//! compiled-app LRU uses — and for the same reason: the digest hashes
//! **relative** file paths alongside contents, because the simulated LLM
//! draws are keyed on paths, so two checkouts of identical sources under
//! different absolute roots must still share a cache entry (and two
//! layouts of the same bytes must not).
//!
//! Staleness is refused, never repaired silently: a cache file whose
//! schema version, source digest, or retry-location fingerprint does not
//! match the current campaign is ignored (with a stderr note) and
//! overwritten by the freshly profiled result.

use crate::coverage::CoverageProfile;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use wasabi_analysis::loops::RetryLocation;
use wasabi_lang::ast::CallId;
use wasabi_lang::project::{CallSite, FileId, MethodId};
use wasabi_util::rng::fnv1a64;
use wasabi_util::Json;

/// Cache file schema version; bump on any layout change so stale files
/// are refused, not misparsed.
pub const SCHEMA_VERSION: u64 = 1;

/// Where and how to cache coverage profiles.
#[derive(Debug, Clone)]
pub struct ProfileCacheOptions {
    /// Cache directory (created on first store).
    pub dir: PathBuf,
    /// Source digest of the project being profiled
    /// (`wasabi_core`-style FNV-1a over relative paths + contents).
    pub digest: u64,
    /// Skip the read side entirely (always re-profile), still writing the
    /// fresh result back. `--profile-cache-bypass`.
    pub bypass: bool,
}

/// A stable fingerprint of the retry locations a profile was built
/// against. The same sources can yield different location sets under
/// different analysis options (LLM seed, loop-query options), and a
/// profile only answers coverage questions for the sites it instrumented
/// — so the fingerprint participates in staleness alongside the digest.
pub fn locations_fingerprint(locations: &[RetryLocation]) -> u64 {
    let mut entries: Vec<String> = locations
        .iter()
        .map(|l| {
            format!(
                "{}:{}|{}|{}|{}|{}",
                l.site.file.0,
                l.site.call.0,
                l.exception,
                l.coordinator,
                l.retried,
                l.structure_key()
            )
        })
        .collect();
    entries.sort_unstable();
    let mut joined = String::new();
    for e in &entries {
        joined.push_str(e);
        joined.push('\n');
    }
    fnv1a64([joined.as_bytes()])
}

/// The cache file for a digest: `profile-<digest-hex>.json`.
pub fn cache_path(dir: &Path, digest: u64) -> PathBuf {
    dir.join(format!("profile-{digest:016x}.json"))
}

fn site_json(site: &CallSite) -> Json {
    Json::obj([
        ("file", Json::from(site.file.0)),
        ("call", Json::from(site.call.0)),
    ])
}

fn test_json(test: &MethodId) -> Json {
    Json::obj([
        ("class", Json::from(test.class.as_str())),
        ("name", Json::from(test.name.as_str())),
    ])
}

fn parse_site(value: &Json) -> Option<CallSite> {
    Some(CallSite {
        file: FileId(u32::try_from(value.get("file")?.as_u64()?).ok()?),
        call: CallId(u32::try_from(value.get("call")?.as_u64()?).ok()?),
    })
}

fn parse_test(value: &Json) -> Option<MethodId> {
    Some(MethodId::new(
        value.get("class")?.as_str()?,
        value.get("name")?.as_str()?,
    ))
}

/// Serializes a profile to the cache document. `site_to_tests` values are
/// written explicitly: they hold tests in suite order, which is *not*
/// reconstructible from the `per_test` map's key order, so the document
/// round-trips byte-exactly rather than approximately.
fn to_json(digest: u64, locations_fp: u64, profile: &CoverageProfile) -> Json {
    Json::obj([
        ("schema_version", Json::from(SCHEMA_VERSION)),
        ("digest", Json::from(format!("{digest:016x}"))),
        ("locations_fp", Json::from(format!("{locations_fp:016x}"))),
        ("tests_total", Json::from(profile.tests_total)),
        (
            "profile_virtual_ms",
            Json::from(profile.profile_virtual_ms as i64),
        ),
        (
            "per_test",
            Json::arr(profile.per_test.iter().map(|(test, sites)| {
                Json::obj([
                    ("class", Json::from(test.class.as_str())),
                    ("name", Json::from(test.name.as_str())),
                    ("sites", Json::arr(sites.iter().map(site_json))),
                ])
            })),
        ),
        (
            "site_to_tests",
            Json::arr(profile.site_to_tests.iter().map(|(site, tests)| {
                Json::obj([
                    ("file", Json::from(site.file.0)),
                    ("call", Json::from(site.call.0)),
                    ("tests", Json::arr(tests.iter().map(test_json))),
                ])
            })),
        ),
    ])
}

fn from_json(value: &Json) -> Option<CoverageProfile> {
    let mut profile = CoverageProfile {
        tests_total: usize::try_from(value.get("tests_total")?.as_u64()?).ok()?,
        profile_virtual_ms: value.get("profile_virtual_ms")?.as_u64()?,
        ..CoverageProfile::default()
    };
    for entry in value.get("per_test")?.as_arr()? {
        let test = parse_test(entry)?;
        let sites = entry
            .get("sites")?
            .as_arr()?
            .iter()
            .map(parse_site)
            .collect::<Option<Vec<_>>>()?;
        profile.per_test.insert(test, sites);
    }
    let mut site_to_tests = BTreeMap::new();
    for entry in value.get("site_to_tests")?.as_arr()? {
        let site = parse_site(entry)?;
        let tests = entry
            .get("tests")?
            .as_arr()?
            .iter()
            .map(parse_test)
            .collect::<Option<Vec<_>>>()?;
        site_to_tests.insert(site, tests);
    }
    profile.site_to_tests = site_to_tests;
    Some(profile)
}

/// Loads a cached profile, or `None` when the cache must not be used:
/// bypass requested, file absent/unreadable, or **stale** (schema,
/// digest, or location-fingerprint mismatch — refused with a stderr note,
/// never partially applied).
pub fn load(options: &ProfileCacheOptions, locations_fp: u64) -> Option<CoverageProfile> {
    if options.bypass {
        return None;
    }
    let path = cache_path(&options.dir, options.digest);
    let text = std::fs::read_to_string(&path).ok()?;
    let value = match Json::parse(&text) {
        Ok(v) => v,
        Err(err) => {
            eprintln!(
                "[planner] profile cache {} unreadable ({err}); re-profiling",
                path.display()
            );
            return None;
        }
    };
    let schema = value.get("schema_version").and_then(Json::as_u64);
    let digest = value.get("digest").and_then(Json::as_str);
    let fp = value.get("locations_fp").and_then(Json::as_str);
    if schema != Some(SCHEMA_VERSION)
        || digest != Some(format!("{:016x}", options.digest).as_str())
        || fp != Some(format!("{locations_fp:016x}").as_str())
    {
        eprintln!(
            "[planner] profile cache {} is stale (schema/digest/locations mismatch); re-profiling",
            path.display()
        );
        return None;
    }
    match from_json(&value) {
        Some(profile) => Some(profile),
        None => {
            eprintln!(
                "[planner] profile cache {} is malformed; re-profiling",
                path.display()
            );
            None
        }
    }
}

/// Writes a freshly computed profile into the cache (creating the
/// directory), atomically: write to a temp sibling, then rename, so a
/// concurrent reader never sees a torn file.
pub fn store(
    options: &ProfileCacheOptions,
    locations_fp: u64,
    profile: &CoverageProfile,
) -> io::Result<()> {
    std::fs::create_dir_all(&options.dir)?;
    let path = cache_path(&options.dir, options.digest);
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, to_json(options.digest, locations_fp, profile).pretty())?;
    std::fs::rename(&tmp, &path)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> CoverageProfile {
        let site_a = CallSite {
            file: FileId(0),
            call: CallId(3),
        };
        let site_b = CallSite {
            file: FileId(1),
            call: CallId(7),
        };
        let t1 = MethodId::new("C", "t1");
        let t2 = MethodId::new("C", "t2");
        let mut profile = CoverageProfile {
            tests_total: 5,
            profile_virtual_ms: 42,
            ..CoverageProfile::default()
        };
        profile.per_test.insert(t1.clone(), vec![site_a]);
        profile.per_test.insert(t2.clone(), vec![site_a, site_b]);
        // Suite order deliberately differs from key order to pin that the
        // cache preserves it.
        profile.site_to_tests.insert(site_a, vec![t2.clone(), t1]);
        profile.site_to_tests.insert(site_b, vec![t2]);
        profile
    }

    fn options(dir: &Path, digest: u64) -> ProfileCacheOptions {
        ProfileCacheOptions {
            dir: dir.to_path_buf(),
            digest,
            bypass: false,
        }
    }

    #[test]
    fn round_trips_byte_exactly() {
        let dir = std::env::temp_dir().join(format!("wasabi-pc-rt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let profile = sample_profile();
        let opts = options(&dir, 0xDEAD);
        store(&opts, 7, &profile).unwrap();
        let loaded = load(&opts, 7).expect("cache hit");
        assert_eq!(format!("{profile:?}"), format!("{loaded:?}"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn refuses_digest_and_fingerprint_mismatch() {
        let dir = std::env::temp_dir().join(format!("wasabi-pc-stale-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let profile = sample_profile();
        let opts = options(&dir, 0xBEEF);
        store(&opts, 7, &profile).unwrap();
        // Wrong locations fingerprint: same digest, different sites.
        assert!(load(&opts, 8).is_none());
        // Wrong digest: different sources never read this path at all
        // (distinct file name), but a hand-copied file must still refuse.
        let other = options(&dir, 0xF00D);
        std::fs::copy(
            cache_path(&dir, 0xBEEF),
            cache_path(&dir, 0xF00D),
        )
        .unwrap();
        assert!(load(&other, 7).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bypass_skips_read_side() {
        let dir = std::env::temp_dir().join(format!("wasabi-pc-bypass-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let profile = sample_profile();
        let mut opts = options(&dir, 0xCAFE);
        store(&opts, 7, &profile).unwrap();
        opts.bypass = true;
        assert!(load(&opts, 7).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn locations_fingerprint_is_order_independent() {
        use wasabi_analysis::loops::Mechanism;
        use wasabi_lang::ast::LoopId;
        let loc = |call: u32, exc: &str| RetryLocation {
            site: CallSite {
                file: FileId(0),
                call: CallId(call),
            },
            coordinator: MethodId::new("C", "run"),
            retried: MethodId::new("C", "op"),
            exception: exc.to_string(),
            mechanism: Mechanism::Loop(LoopId(0)),
        };
        let a = locations_fingerprint(&[loc(1, "E"), loc(2, "F")]);
        let b = locations_fingerprint(&[loc(2, "F"), loc(1, "E")]);
        let c = locations_fingerprint(&[loc(1, "E"), loc(2, "G")]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
