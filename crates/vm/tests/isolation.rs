//! Per-run isolation regression tests.
//!
//! The campaign engine runs many interpreters concurrently, one per worker
//! thread, over the same `Project`. That is only sound because an `Interp`
//! owns all of its mutable state — virtual clock, config store, trace
//! buffer, injection counters. These tests pin that property down: two
//! concurrent runs with different injected exceptions and different config
//! mutations must never observe each other's clock advances, trace events,
//! or config values.

use std::thread;
use wasabi_lang::project::Project;
use wasabi_vm::interceptor::{CallCtx, InterceptAction, Interceptor};
use wasabi_vm::runner::{run_test, RunOptions};
use wasabi_vm::trace::{Event, TestOutcome};
use wasabi_lang::project::MethodId;

/// Injects `exc_type` at every call to `callee_name`, without limit.
struct InjectOn {
    callee_name: String,
    exc_type: String,
    fired: u32,
}

impl Interceptor for InjectOn {
    fn before_call(&mut self, ctx: &CallCtx<'_>) -> InterceptAction {
        if ctx.names.resolve(ctx.callee.name) == self.callee_name && self.fired < 3 {
            self.fired += 1;
            return InterceptAction::Throw {
                exc_type: self.exc_type.clone(),
                message: format!("injected {}", self.exc_type),
            };
        }
        InterceptAction::Proceed
    }
}

const SOURCE: &str = "\
exception IOException;\n\
exception TimeoutException;\n\
config \"retry.max\" default 5;\n\
class Client {\n\
  method fetch() throws IOException { return 1; }\n\
  test tRetryA() {\n\
    setConfig(\"retry.max\", 11);\n\
    var attempts = 0;\n\
    var done = false;\n\
    while (!done && attempts < 10) {\n\
      try {\n\
        this.fetch();\n\
        done = true;\n\
      } catch (IOException e) {\n\
        attempts = attempts + 1;\n\
        sleep(100);\n\
      }\n\
    }\n\
    assert(done);\n\
  }\n\
  test tRetryB() {\n\
    setConfig(\"retry.max\", 77);\n\
    var attempts = 0;\n\
    var done = false;\n\
    while (!done && attempts < 10) {\n\
      try {\n\
        this.fetch();\n\
        done = true;\n\
      } catch (TimeoutException e) {\n\
        attempts = attempts + 1;\n\
        sleep(7000);\n\
      }\n\
    }\n\
    assert(done);\n\
  }\n\
}\n";

fn compile() -> Project {
    Project::compile("iso", vec![("iso.jav", SOURCE)]).expect("compile")
}

#[test]
fn concurrent_runs_do_not_share_clock_trace_or_config() {
    let project = compile();
    let options = RunOptions::default();

    // Run the two tests many times concurrently on two threads; each thread
    // uses a different injected exception and a different sleep pattern, so
    // any state bleed (shared clock, shared trace buffer, shared config
    // store) would show up as cross-contaminated observations.
    thread::scope(|scope| {
        let run_a = scope.spawn(|| {
            let mut runs = Vec::new();
            for _ in 0..50 {
                let mut interceptor = InjectOn {
                    callee_name: "fetch".to_string(),
                    exc_type: "IOException".to_string(),
                    fired: 0,
                };
                runs.push(run_test(
                    &project,
                    &MethodId::new("Client", "tRetryA"),
                    &mut interceptor,
                    &options,
                ));
            }
            runs
        });
        let run_b = scope.spawn(|| {
            let mut runs = Vec::new();
            for _ in 0..50 {
                let mut interceptor = InjectOn {
                    callee_name: "fetch".to_string(),
                    exc_type: "TimeoutException".to_string(),
                    fired: 0,
                };
                runs.push(run_test(
                    &project,
                    &MethodId::new("Client", "tRetryB"),
                    &mut interceptor,
                    &options,
                ));
            }
            runs
        });

        let runs_a = run_a.join().expect("thread A");
        let runs_b = run_b.join().expect("thread B");

        for run in &runs_a {
            // A retries IOException: 3 injections × 100 ms sleeps → exactly
            // 300 virtual ms. Any bleed from B's 7000 ms sleeps would move
            // this.
            assert_eq!(run.outcome, TestOutcome::Passed, "A outcome");
            assert_eq!(run.virtual_ms, 300, "A virtual clock isolated");
            assert_eq!(run.trace.injection_count(), 3, "A injections isolated");
            for event in run.trace.injections() {
                let Event::Injected { exc_type, .. } = event else {
                    unreachable!()
                };
                assert_eq!(exc_type, "IOException", "A only sees its own faults");
            }
        }
        for run in &runs_b {
            // B's TimeoutException is not retried as IOException; it retries
            // via its own catch arm: 3 injections × 7000 ms → 21000 ms.
            assert_eq!(run.outcome, TestOutcome::Passed, "B outcome");
            assert_eq!(run.virtual_ms, 21_000, "B virtual clock isolated");
            assert_eq!(run.trace.injection_count(), 3, "B injections isolated");
            for event in run.trace.injections() {
                let Event::Injected { exc_type, .. } = event else {
                    unreachable!()
                };
                assert_eq!(exc_type, "TimeoutException", "B only sees its own faults");
            }
        }
    });
}

#[test]
fn config_mutations_stay_within_a_run() {
    // Each test writes a different value to the same config key; re-running
    // either test afterwards must start from the declared default again.
    const CHECK: &str = "\
exception IOException;\n\
config \"retry.max\" default 5;\n\
class Probe {\n\
  test tReadDefault() { assert(getConfig(\"retry.max\") == 5); }\n\
  test tWrite() { setConfig(\"retry.max\", 99); assert(getConfig(\"retry.max\") == 99); }\n\
}\n";
    let probe = Project::compile("probe", vec![("probe.jav", CHECK)]).expect("compile");
    let options = RunOptions::default();
    let mut noop = wasabi_vm::NoopInterceptor;

    let write = run_test(&probe, &MethodId::new("Probe", "tWrite"), &mut noop, &options);
    assert_eq!(write.outcome, TestOutcome::Passed);
    let read = run_test(
        &probe,
        &MethodId::new("Probe", "tReadDefault"),
        &mut noop,
        &options,
    );
    assert_eq!(
        read.outcome,
        TestOutcome::Passed,
        "config write leaked across runs"
    );
}

#[test]
fn a_contained_panic_leaves_the_project_reusable() {
    // The campaign engine wraps every run in `catch_unwind` and keeps
    // using the same `Project` afterwards. That is only sound because a
    // run's mutable state lives entirely in the per-run interpreter: a
    // panic mid-run (here: from an interceptor, mirroring the engine's
    // chaos hook) must not poison later runs over the same `Project`.
    struct PanicOnce {
        armed: bool,
    }
    impl Interceptor for PanicOnce {
        fn before_call(&mut self, ctx: &CallCtx<'_>) -> InterceptAction {
            if self.armed && ctx.names.resolve(ctx.callee.name) == "fetch" {
                panic!("isolation test: injected panic");
            }
            InterceptAction::Proceed
        }
    }

    let project = compile();
    let options = RunOptions::default();
    let baseline = {
        let mut noop = wasabi_vm::NoopInterceptor;
        run_test(&project, &MethodId::new("Client", "tRetryA"), &mut noop, &options)
    };
    assert_eq!(baseline.outcome, TestOutcome::Passed);

    // Quiet the panic hook for the deliberate panic, then restore it.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut interceptor = PanicOnce { armed: true };
        run_test(
            &project,
            &MethodId::new("Client", "tRetryA"),
            &mut interceptor,
            &options,
        )
    }));
    std::panic::set_hook(hook);
    assert!(panicked.is_err(), "the interceptor panic must propagate");

    // The shared Project is untouched: a fresh run observes exactly the
    // baseline outcome, clock, and trace.
    let mut noop = wasabi_vm::NoopInterceptor;
    let after = run_test(&project, &MethodId::new("Client", "tRetryA"), &mut noop, &options);
    assert_eq!(after.outcome, baseline.outcome);
    assert_eq!(after.virtual_ms, baseline.virtual_ms);
    assert_eq!(after.trace.injection_count(), baseline.trace.injection_count());
}

#[test]
fn wall_clock_budget_aborts_a_stuck_run() {
    use std::time::{Duration, Instant};
    const STUCK: &str = "class T { test tSpin() { while (true) { var x = 1; } } }";
    let project = Project::compile("stuck", vec![("stuck.jav", STUCK)]).expect("compile");
    let mut options = RunOptions::default();
    // Plenty of fuel: only the wall-clock budget can stop this run.
    options.limits.fuel = u64::MAX / 2;
    options.limits.wall_deadline = Some(Instant::now() + Duration::from_millis(50));
    let mut noop = wasabi_vm::NoopInterceptor;
    let started = Instant::now();
    let run = run_test(&project, &MethodId::new("T", "tSpin"), &mut noop, &options);
    assert_eq!(run.outcome, TestOutcome::WallClockExceeded);
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "deadline should fire promptly, took {:?}",
        started.elapsed()
    );
}
