//! Integration tests for Javelin interpreter semantics: exception handling,
//! collections, the virtual clock, and call interception.

use wasabi_lang::project::{MethodId, Project};
use wasabi_vm::interceptor::{CallCtx, InterceptAction, Interceptor, NoopInterceptor};
use wasabi_vm::interp::{Interp, InvokeResult, RunLimits};
use wasabi_vm::runner::{run_test, RunOptions};
use wasabi_vm::trace::{Event, TestOutcome};
use wasabi_vm::value::Value;

fn project(src: &str) -> Project {
    Project::compile("t", vec![("t.jav", src)]).expect("compile should succeed")
}

fn invoke(src: &str, class: &str, method: &str) -> InvokeResult {
    let p = project(src);
    let mut noop = NoopInterceptor;
    let mut interp = Interp::new(&p, &mut noop, RunLimits::default());
    interp.invoke(class, method, Vec::new())
}

fn expect_int(result: InvokeResult) -> i64 {
    match result {
        InvokeResult::Ok(Value::Int(v)) => v,
        other => panic!("expected int result, got {other:?}"),
    }
}

fn expect_str(result: InvokeResult) -> String {
    match result {
        InvokeResult::Ok(Value::Str(s)) => s.as_ref().clone(),
        other => panic!("expected string result, got {other:?}"),
    }
}

#[test]
fn arithmetic_and_precedence() {
    let v = expect_int(invoke(
        "class C { method m() { return 2 + 3 * 4 - 10 / 2 % 3; } }",
        "C",
        "m",
    ));
    assert_eq!(v, 2 + 3 * 4 - 10 / 2 % 3);
}

#[test]
fn string_concatenation_coerces() {
    let s = expect_str(invoke(
        "class C { method m() { return \"n=\" + 4 + \", b=\" + true; } }",
        "C",
        "m",
    ));
    assert_eq!(s, "n=4, b=true");
}

#[test]
fn division_by_zero_raises_catchable_exception() {
    let v = expect_int(invoke(
        "class C { method m() { try { return 1 / 0; } catch (ArithmeticException e) { return -1; } } }",
        "C",
        "m",
    ));
    assert_eq!(v, -1);
}

#[test]
fn catch_matches_subtypes_in_order() {
    let v = expect_int(invoke(
        "exception IOException;\n\
         exception ConnectException extends IOException;\n\
         class C {\n\
           method boom() throws ConnectException { throw new ConnectException(\"x\"); }\n\
           method m() {\n\
             try { this.boom(); }\n\
             catch (ConnectException e) { return 1; }\n\
             catch (IOException e) { return 2; }\n\
             return 0;\n\
           }\n\
         }",
        "C",
        "m",
    ));
    assert_eq!(v, 1);
}

#[test]
fn supertype_catch_catches_subtype() {
    let v = expect_int(invoke(
        "exception IOException;\n\
         exception ConnectException extends IOException;\n\
         class C {\n\
           method boom() throws ConnectException { throw new ConnectException(\"x\"); }\n\
           method m() {\n\
             try { this.boom(); } catch (IOException e) { return 7; }\n\
             return 0;\n\
           }\n\
         }",
        "C",
        "m",
    ));
    assert_eq!(v, 7);
}

#[test]
fn uncaught_exception_propagates_through_frames() {
    let result = invoke(
        "exception IOException;\n\
         class C {\n\
           method a() throws IOException { this.b(); }\n\
           method b() throws IOException { throw new IOException(\"deep\"); }\n\
           method m() throws IOException { this.a(); }\n\
         }",
        "C",
        "m",
    );
    match result {
        InvokeResult::Exception(exc) => {
            assert_eq!(exc.ty, "IOException");
            let frames: Vec<String> = exc.raised_at.iter().map(|m| m.to_string()).collect();
            assert!(frames.contains(&"C.a".to_string()) && frames.contains(&"C.b".to_string()));
        }
        other => panic!("expected exception, got {other:?}"),
    }
}

#[test]
fn finally_runs_on_normal_and_exceptional_paths() {
    let v = expect_int(invoke(
        "exception E;\n\
         class C {\n\
           field count = 0;\n\
           method risky(fail) throws E { if (fail) { throw new E(\"x\"); } }\n\
           method go(fail) {\n\
             try { this.risky(fail); } catch (E e) { } finally { this.count = this.count + 1; }\n\
           }\n\
           method m() { this.go(true); this.go(false); return this.count; }\n\
         }",
        "C",
        "m",
    ));
    assert_eq!(v, 2);
}

#[test]
fn finally_overrides_pending_return() {
    // Java semantics: abrupt completion of finally wins.
    let result = invoke(
        "exception E;\n\
         class C {\n\
           method m() throws E {\n\
             try { return 1; } finally { throw new E(\"override\"); }\n\
           }\n\
         }",
        "C",
        "m",
    );
    assert!(matches!(result, InvokeResult::Exception(exc) if exc.ty == "E"));
}

#[test]
fn wrapped_exception_cause_is_inspectable() {
    let v = expect_int(invoke(
        "exception AccessControlException;\n\
         exception HadoopException;\n\
         class C {\n\
           method inner() throws AccessControlException { throw new AccessControlException(\"denied\"); }\n\
           method outer() throws HadoopException {\n\
             try { this.inner(); } catch (AccessControlException e) { throw new HadoopException(\"wrapped\", e); }\n\
           }\n\
           method m() {\n\
             try { this.outer(); }\n\
             catch (HadoopException he) {\n\
               if (he.getCause() instanceof AccessControlException) { return 1; }\n\
               return 2;\n\
             }\n\
             return 0;\n\
           }\n\
         }",
        "C",
        "m",
    ));
    assert_eq!(v, 1);
}

#[test]
fn null_method_call_raises_npe() {
    let v = expect_int(invoke(
        "class C {\n\
           field conn;\n\
           method m() {\n\
             try { this.conn.close(); } catch (NullPointerException e) { return 42; }\n\
             return 0;\n\
           }\n\
         }",
        "C",
        "m",
    ));
    assert_eq!(v, 42);
}

#[test]
fn objects_have_identity_and_mutable_fields() {
    let v = expect_int(invoke(
        "class Task { field status = \"new\"; }\n\
         class C {\n\
           method m() {\n\
             var t1 = new Task();\n\
             var t2 = new Task();\n\
             var alias = t1;\n\
             alias.status = \"done\";\n\
             if (t1 == alias && t1 != t2 && t1.status == \"done\" && t2.status == \"new\") { return 1; }\n\
             return 0;\n\
           }\n\
         }",
        "C",
        "m",
    ));
    assert_eq!(v, 1);
}

#[test]
fn constructor_init_runs_with_args() {
    let v = expect_int(invoke(
        "class Point {\n\
           field x; field y;\n\
           method init(x, y) { this.x = x; this.y = y; }\n\
           method sum() { return this.x + this.y; }\n\
         }\n\
         class C { method m() { return new Point(3, 4).sum(); } }",
        "C",
        "m",
    ));
    assert_eq!(v, 7);
}

#[test]
fn inherited_methods_and_fields() {
    let v = expect_int(invoke(
        "class Base { field base = 10; method get() { return this.base; } }\n\
         class Derived extends Base { method m() { return this.get() + 1; } }",
        "Derived",
        "m",
    ));
    assert_eq!(v, 11);
}

#[test]
fn queue_fifo_and_builtins() {
    let v = expect_int(invoke(
        "class C {\n\
           method m() {\n\
             var q = queue();\n\
             q.put(1); q.put(2); q.put(3);\n\
             var a = q.take();\n\
             var b = q.peek();\n\
             if (a == 1 && b == 2 && q.size() == 2 && !q.isEmpty()) { return 1; }\n\
             return 0;\n\
           }\n\
         }",
        "C",
        "m",
    ));
    assert_eq!(v, 1);
}

#[test]
fn delayed_queue_take_advances_clock() {
    let p = project(
        "class C {\n\
           test t() {\n\
             var q = queue();\n\
             q.putDelayed(\"task\", 5000);\n\
             var before = now();\n\
             var v = q.take();\n\
             assert(now() - before == 5000, \"clock should advance by the delay\");\n\
             assert(v == \"task\");\n\
           }\n\
         }",
    );
    let run = run_test(
        &p,
        &MethodId::new("C", "t"),
        &mut NoopInterceptor,
        &RunOptions::default(),
    );
    assert!(run.outcome.is_pass(), "outcome: {:?}", run.outcome);
    // The wait is recorded as a sleep event for the delay oracle.
    assert!(run
        .trace
        .events
        .iter()
        .any(|e| matches!(e, Event::Slept { ms: 5000, .. })));
}

#[test]
fn list_and_map_builtins() {
    let v = expect_int(invoke(
        "class C {\n\
           method m() {\n\
             var l = list();\n\
             l.add(5); l.add(6); l.add(5);\n\
             var removed = l.remove(5);\n\
             var mp = map();\n\
             mp.put(\"a\", 1); mp.put(\"b\", 2); mp.put(\"a\", 10);\n\
             if (removed && l.size() == 2 && l.get(0) == 6 && mp.size() == 2 && mp.get(\"a\") == 10 && mp.get(\"zz\") == null) { return 1; }\n\
             return 0;\n\
           }\n\
         }",
        "C",
        "m",
    ));
    assert_eq!(v, 1);
}

#[test]
fn map_keys_are_sorted_for_determinism() {
    let v = expect_str(invoke(
        "class C {\n\
           method m() {\n\
             var mp = map();\n\
             mp.put(\"b\", 1); mp.put(\"a\", 1); mp.put(\"c\", 1);\n\
             var ks = mp.keys();\n\
             return ks.get(0) + ks.get(1) + ks.get(2);\n\
           }\n\
         }",
        "C",
        "m",
    ));
    assert_eq!(v, "abc");
}

#[test]
fn string_builtins() {
    let v = expect_int(invoke(
        "class C {\n\
           method m() {\n\
             var s = \"retryOnConflict\";\n\
             if (s.contains(\"retry\") && s.startsWith(\"retry\") && s.endsWith(\"Conflict\")\n\
                 && s.length() == 15 && s.equals(\"retryOnConflict\")) { return 1; }\n\
             return 0;\n\
           }\n\
         }",
        "C",
        "m",
    ));
    assert_eq!(v, 1);
}

#[test]
fn switch_selects_case_or_default() {
    let src = "class C {\n\
           method pick(s) {\n\
             switch (s) {\n\
               case \"A\": { return 1; }\n\
               case \"B\": { return 2; }\n\
               default: { return 99; }\n\
             }\n\
           }\n\
           method m() { return this.pick(\"B\") * 100 + this.pick(\"Z\"); }\n\
         }";
    assert_eq!(expect_int(invoke(src, "C", "m")), 299);
}

#[test]
fn break_inside_switch_exits_enclosing_loop() {
    let v = expect_int(invoke(
        "class C {\n\
           method m() {\n\
             var i = 0;\n\
             while (true) {\n\
               i = i + 1;\n\
               switch (i) { case 3: { break; } default: { } }\n\
             }\n\
             return i;\n\
           }\n\
         }",
        "C",
        "m",
    ));
    assert_eq!(v, 3);
}

#[test]
fn exponential_backoff_with_pow() {
    let v = expect_int(invoke(
        "class C { method m() { return 1000 * pow(2, 4); } }",
        "C",
        "m",
    ));
    assert_eq!(v, 16000);
}

#[test]
fn sleep_records_stack_in_trace() {
    let p = project(
        "class C {\n\
           method pause() { sleep(250); }\n\
           test t() { this.pause(); }\n\
         }",
    );
    let run = run_test(
        &p,
        &MethodId::new("C", "t"),
        &mut NoopInterceptor,
        &RunOptions::default(),
    );
    let slept: Vec<_> = run
        .trace
        .events
        .iter()
        .filter_map(|e| match e {
            Event::Slept { ms, stack, .. } => Some((*ms, stack.clone())),
            _ => None,
        })
        .collect();
    assert_eq!(slept.len(), 1);
    assert_eq!(slept[0].0, 250);
    let frames: Vec<String> = slept[0].1.iter().map(|m| m.to_string()).collect();
    assert!(frames.contains(&"C.pause".to_string()), "frames: {frames:?}");
    assert_eq!(run.virtual_ms, 250);
}

/// An interceptor that injects an exception at a named callee the first K
/// times it is called.
struct InjectAtCallee {
    callee: String,
    exc_type: String,
    budget: u32,
    seen_callers: Vec<String>,
}

impl Interceptor for InjectAtCallee {
    fn before_call(&mut self, ctx: &CallCtx<'_>) -> InterceptAction {
        if ctx.names.resolve(ctx.callee.name) == self.callee && self.budget > 0 {
            self.budget -= 1;
            self.seen_callers.push(ctx.names.method_display(ctx.caller));
            InterceptAction::Throw {
                exc_type: self.exc_type.clone(),
                message: "injected".into(),
            }
        } else {
            InterceptAction::Proceed
        }
    }
}

const RETRY_LOOP: &str = "exception ConnectException;\n\
     class Client {\n\
       field attempts = 0;\n\
       method connect() throws ConnectException { this.attempts = this.attempts + 1; return \"ok\"; }\n\
       method run() {\n\
         for (var retry = 0; retry < 5; retry = retry + 1) {\n\
           try { return this.connect(); } catch (ConnectException e) { sleep(100); }\n\
         }\n\
         return null;\n\
       }\n\
       test tRun() { assert(this.run() == \"ok\"); }\n\
     }";

#[test]
fn injection_triggers_retry_until_budget_exhausted() {
    let p = project(RETRY_LOOP);
    let mut inj = InjectAtCallee {
        callee: "connect".into(),
        exc_type: "ConnectException".into(),
        budget: 3,
        seen_callers: Vec::new(),
    };
    let run = run_test(&p, &MethodId::new("Client", "tRun"), &mut inj, &RunOptions::default());
    assert!(run.outcome.is_pass(), "outcome: {:?}", run.outcome);
    // Three injections, then the fourth attempt succeeds.
    assert_eq!(run.trace.injection_count(), 3);
    assert_eq!(run.trace.max_injection_count(), Some(3));
    assert_eq!(run.virtual_ms, 300, "three backoff sleeps of 100 ms");
    assert!(inj.seen_callers.iter().all(|c| c == "Client.run"));
}

#[test]
fn injection_beyond_cap_escapes_as_injected_exception() {
    let p = project(RETRY_LOOP);
    let mut inj = InjectAtCallee {
        callee: "connect".into(),
        exc_type: "ConnectException".into(),
        budget: 100,
        seen_callers: Vec::new(),
    };
    let run = run_test(&p, &MethodId::new("Client", "tRun"), &mut inj, &RunOptions::default());
    // The loop gives up after 5 attempts, run() returns null, and the
    // assertion fails — retry capping worked as designed.
    assert!(
        matches!(run.outcome, TestOutcome::AssertionFailed { .. }),
        "outcome: {:?}",
        run.outcome
    );
    assert_eq!(run.trace.injection_count(), 5);
}

#[test]
fn injected_exception_carries_injected_flag() {
    let p = project(
        "exception SocketException;\n\
         class C {\n\
           method fetch() throws SocketException { return 1; }\n\
           test t() { this.fetch(); }\n\
         }",
    );
    let mut inj = InjectAtCallee {
        callee: "fetch".into(),
        exc_type: "SocketException".into(),
        budget: 1,
        seen_callers: Vec::new(),
    };
    let run = run_test(&p, &MethodId::new("C", "t"), &mut inj, &RunOptions::default());
    match &run.outcome {
        TestOutcome::ExceptionEscaped { exc } => {
            assert!(exc.injected);
            assert_eq!(exc.ty, "SocketException");
            assert_eq!(
                exc.raised_at.last().map(|m| m.to_string()).as_deref(),
                Some("C.fetch"),
                "injected exception appears to come from inside the callee"
            );
        }
        other => panic!("unexpected outcome {other:?}"),
    }
}

#[test]
fn queue_based_retry_reenqueues_task() {
    // The HIVE-23894 shape: a task processor that re-enqueues failed tasks.
    let p = project(
        "exception TaskException;\n\
         class Task {\n\
           field failuresLeft = 2;\n\
           field done = false;\n\
           method execute() throws TaskException {\n\
             if (this.failuresLeft > 0) {\n\
               this.failuresLeft = this.failuresLeft - 1;\n\
               throw new TaskException(\"transient\");\n\
             }\n\
             this.done = true;\n\
           }\n\
         }\n\
         class Processor {\n\
           method run(q) {\n\
             while (!q.isEmpty()) {\n\
               var task = q.take();\n\
               try { task.execute(); }\n\
               catch (TaskException e) { q.put(task); }\n\
             }\n\
           }\n\
         }\n\
         class T {\n\
           test t() {\n\
             var q = queue();\n\
             var task = new Task();\n\
             q.put(task);\n\
             new Processor().run(q);\n\
             assert(task.done, \"task should eventually complete\");\n\
           }\n\
         }",
    );
    let run = run_test(&p, &MethodId::new("T", "t"), &mut NoopInterceptor, &RunOptions::default());
    assert!(run.outcome.is_pass(), "outcome: {:?}", run.outcome);
}

#[test]
fn state_machine_procedure_retries_current_state() {
    // The HBASE-20492 shape: a state machine that stays in the current state
    // on error (implicit retry) and otherwise advances.
    let p = project(
        "exception MetaException;\n\
         class Proc {\n\
           field state = \"DISPATCH\";\n\
           field failuresLeft = 3;\n\
           field finished = false;\n\
           method markRegionAsClosing() throws MetaException {\n\
             if (this.failuresLeft > 0) {\n\
               this.failuresLeft = this.failuresLeft - 1;\n\
               throw new MetaException(\"meta not ready\");\n\
             }\n\
           }\n\
           method step() {\n\
             switch (this.state) {\n\
               case \"DISPATCH\": {\n\
                 try { this.markRegionAsClosing(); this.state = \"FINISH\"; }\n\
                 catch (MetaException e) { sleep(1000); }\n\
               }\n\
               case \"FINISH\": { this.finished = true; }\n\
             }\n\
           }\n\
           method drive() { while (!this.finished) { this.step(); } }\n\
         }\n\
         class T {\n\
           test t() {\n\
             var p = new Proc();\n\
             p.drive();\n\
             assert(p.finished);\n\
           }\n\
         }",
    );
    let run = run_test(&p, &MethodId::new("T", "t"), &mut NoopInterceptor, &RunOptions::default());
    assert!(run.outcome.is_pass(), "outcome: {:?}", run.outcome);
    assert_eq!(run.virtual_ms, 3000, "three retry delays of 1000 ms");
}

#[test]
fn get_and_set_config_roundtrip() {
    let v = expect_int(invoke(
        "config \"mover.retry.max\" default 7;\n\
         class C {\n\
           method m() {\n\
             var before = getConfig(\"mover.retry.max\");\n\
             setConfig(\"mover.retry.max\", 2);\n\
             return before * 10 + getConfig(\"mover.retry.max\");\n\
           }\n\
         }",
        "C",
        "m",
    ));
    assert_eq!(v, 72);
}

#[test]
fn deep_recursion_hits_depth_limit() {
    let result = invoke(
        "class C { method m() { return this.m(); } }",
        "C",
        "m",
    );
    match result {
        InvokeResult::Vm(err) => assert!(err.to_string().contains("depth")),
        other => panic!("expected vm error, got {other:?}"),
    }
}
