//! Execution traces: the log a WASABI test run leaves behind.
//!
//! The retry oracles (crate `wasabi-oracles`) work purely on these traces,
//! mirroring the paper's post-mortem log processing: injection entries
//! written by the fault-injection handler (Listing 5), sleep entries written
//! by the sleep-API pointcut, and the test outcome.

use crate::value::ExceptionValue;
use std::rc::Rc;
use wasabi_lang::project::MethodId;
#[cfg(test)]
use wasabi_lang::project::FileId;

pub use wasabi_lang::project::CallSite;

/// One event in a test-run trace.
#[derive(Debug, Clone)]
pub enum Event {
    /// A fault-injection handler threw an exception at a call site.
    Injected {
        /// The call site the exception was injected at.
        site: CallSite,
        /// The caller (candidate coordinator method).
        caller: MethodId,
        /// The callee (candidate retried method).
        callee: MethodId,
        /// Injected exception type.
        exc_type: String,
        /// How many times this (site, exception) pair has injected so far,
        /// starting at 1.
        count: u32,
        /// Virtual time of the injection.
        at_ms: u64,
    },
    /// The virtual clock advanced via `sleep` or a delayed queue take.
    Slept {
        /// Milliseconds slept.
        ms: u64,
        /// Virtual time when the sleep began.
        at_ms: u64,
        /// Call stack at the sleep, outermost first.
        stack: Vec<MethodId>,
    },
    /// A `log(...)` statement executed.
    Logged {
        /// Rendered message.
        message: String,
        /// Virtual time.
        at_ms: u64,
    },
    /// An exception was raised by program code (not by injection).
    Raised {
        /// Exception type.
        exc_type: String,
        /// Virtual time.
        at_ms: u64,
    },
}

/// The trace of one test run.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Events in execution order.
    pub events: Vec<Event>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Number of injection events.
    pub fn injection_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::Injected { .. }))
            .count()
    }

    /// Iterates over injection events only.
    pub fn injections(&self) -> impl Iterator<Item = &Event> {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::Injected { .. }))
    }

    /// The highest per-site injection count observed, if any injection ran.
    pub fn max_injection_count(&self) -> Option<u32> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Injected { count, .. } => Some(*count),
                _ => None,
            })
            .max()
    }
}

/// Summary of an exception for reports (detached from the value graph).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExcSummary {
    /// Exception type.
    pub ty: String,
    /// Message.
    pub message: String,
    /// Type chain including causes: `[ty, cause, cause-of-cause, ...]`.
    pub chain: Vec<String>,
    /// Stack (outermost first) where the exception was raised.
    pub raised_at: Vec<MethodId>,
    /// Whether the exception originated from a fault-injection handler.
    pub injected: bool,
}

impl ExcSummary {
    /// Builds a summary from a runtime exception value.
    pub fn from_value(exc: &Rc<ExceptionValue>) -> Self {
        ExcSummary {
            ty: exc.ty.clone(),
            message: exc.message.clone(),
            chain: exc.cause_chain(),
            raised_at: exc.raised_at.clone(),
            injected: exc.injected,
        }
    }

    /// A stable key identifying the crash stack, used by the
    /// different-exception oracle to group failures into one bug.
    pub fn crash_key(&self) -> String {
        let frames: Vec<String> = self.raised_at.iter().map(|m| m.to_string()).collect();
        format!("{}@{}", self.ty, frames.join(">"))
    }
}

/// How a test run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestOutcome {
    /// The test ran to completion with all assertions passing.
    Passed,
    /// An `assert` failed (an `AssertionError` escaped the test).
    AssertionFailed {
        /// Assertion message.
        message: String,
    },
    /// A non-assertion exception escaped the test method.
    ExceptionEscaped {
        /// The escaping exception.
        exc: ExcSummary,
    },
    /// The virtual clock exceeded the per-test time limit.
    Timeout {
        /// Virtual time at abort, in ms.
        virtual_ms: u64,
    },
    /// The interpreter step budget was exhausted (runaway loop).
    FuelExhausted,
    /// The real (wall-clock) per-run budget expired. Host-dependent, so the
    /// oracles ignore it and the campaign engine normalizes the whole run
    /// record before reporting.
    WallClockExceeded,
    /// The interpreter itself faulted (malformed program).
    VmFault {
        /// Description of the fault.
        message: String,
    },
}

impl TestOutcome {
    /// Whether the run ended without any failure.
    pub fn is_pass(&self) -> bool {
        matches!(self, TestOutcome::Passed)
    }
}

/// A completed test run: identity, outcome, trace, and timing.
#[derive(Debug, Clone)]
pub struct TestRun {
    /// The test method that ran.
    pub test: MethodId,
    /// How it ended.
    pub outcome: TestOutcome,
    /// The trace it produced.
    pub trace: Trace,
    /// Virtual duration of the run in milliseconds.
    pub virtual_ms: u64,
    /// Interpreter steps consumed.
    pub steps: u64,
    /// Host wall time the interpreter spent on this run, in microseconds
    /// (saturating; scheduling-dependent, excluded from determinism
    /// comparisons).
    pub wall_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi_lang::ast::CallId;

    fn site() -> CallSite {
        CallSite {
            file: FileId(0),
            call: CallId(3),
        }
    }

    #[test]
    fn trace_counts_injections() {
        let mut trace = Trace::new();
        assert_eq!(trace.injection_count(), 0);
        assert_eq!(trace.max_injection_count(), None);
        trace.events.push(Event::Injected {
            site: site(),
            caller: MethodId::new("C", "run"),
            callee: MethodId::new("C", "connect"),
            exc_type: "ConnectException".into(),
            count: 1,
            at_ms: 0,
        });
        trace.events.push(Event::Injected {
            site: site(),
            caller: MethodId::new("C", "run"),
            callee: MethodId::new("C", "connect"),
            exc_type: "ConnectException".into(),
            count: 2,
            at_ms: 5,
        });
        trace.events.push(Event::Logged {
            message: "x".into(),
            at_ms: 5,
        });
        assert_eq!(trace.injection_count(), 2);
        assert_eq!(trace.max_injection_count(), Some(2));
    }

    #[test]
    fn crash_key_includes_type_and_stack() {
        let summary = ExcSummary {
            ty: "NullPointerException".into(),
            message: String::new(),
            chain: vec!["NullPointerException".into()],
            raised_at: vec![MethodId::new("A", "m"), MethodId::new("B", "n")],
            injected: false,
        };
        assert_eq!(summary.crash_key(), "NullPointerException@A.m>B.n");
    }

    #[test]
    fn call_site_display() {
        assert_eq!(site().to_string(), "f0:c3");
    }
}
