#![forbid(unsafe_code)]
//! The Javelin interpreter: values, virtual clock, traces, interception, and
//! the unit-test runner.
//!
//! This crate is WASABI's substitute for the Java runtime, the AspectJ
//! weaver, and the JUnit test driver:
//!
//! - [`interp::Interp`] executes Javelin methods with a **virtual clock**
//!   (sleeps advance time instead of blocking) and strict resource limits;
//! - [`interceptor::Interceptor`] is the pointcut hook fired before every
//!   user-method call — fault injectors and coverage profilers plug in here;
//! - [`trace::Trace`] is the structured test log the retry oracles consume;
//! - [`runner`] turns `test` methods into [`trace::TestRun`] results.
//!
//! # Examples
//!
//! ```
//! use wasabi_lang::project::Project;
//! use wasabi_vm::runner::{run_all_tests, RunOptions};
//!
//! let project = Project::compile(
//!     "demo",
//!     vec![("t.jav", "class T { test tMath() { assert(2 + 2 == 4); } }")],
//! )
//! .unwrap();
//! let runs = run_all_tests(&project, &RunOptions::default());
//! assert!(runs[0].outcome.is_pass());
//! ```

pub mod config;
pub mod interceptor;
pub mod interp;
pub mod runner;
pub mod trace;
pub mod value;

pub use interceptor::{CallCtx, InterceptAction, Interceptor, NoopInterceptor};
pub use interp::{Interp, InvokeResult, RunLimits, VmError};
pub use trace::{CallSite, Event, ExcSummary, TestOutcome, TestRun, Trace};
pub use value::Value;
