//! Application configuration store.
//!
//! Javelin programs declare keys with `config "key" default <lit>;` and read
//! or write them at run time with the `getConfig`/`setConfig` builtins. The
//! planner's configuration-restoration pass (§3.1.4 of the paper) works by
//! overriding test-local writes to retry-related keys back to these defaults.

use crate::value::Value;
use std::collections::HashMap;
use wasabi_lang::ast::Literal;
use wasabi_lang::project::SymbolTable;

/// Runtime configuration: declared defaults plus runtime overrides.
#[derive(Debug, Clone, Default)]
pub struct ConfigStore {
    defaults: HashMap<String, Value>,
    overrides: HashMap<String, Value>,
    /// Keys that `setConfig` is forbidden from overriding (the planner pins
    /// retry-related keys to their defaults here).
    pinned: Vec<String>,
}

/// Converts a declaration literal to a runtime value.
pub fn literal_value(lit: &Literal) -> Value {
    match lit {
        Literal::Int(v) => Value::Int(*v),
        Literal::Str(s) => Value::str(s.clone()),
        Literal::Bool(b) => Value::Bool(*b),
        Literal::Null => Value::Null,
    }
}

impl ConfigStore {
    /// Builds a store from the project's declared config defaults.
    pub fn from_symbols(symbols: &SymbolTable) -> Self {
        let defaults = symbols
            .configs()
            .map(|(k, v)| (k.clone(), literal_value(v)))
            .collect();
        ConfigStore {
            defaults,
            overrides: HashMap::new(),
            pinned: Vec::new(),
        }
    }

    /// Reads a key: override first, then default, then `null`.
    pub fn get(&self, key: &str) -> Value {
        self.overrides
            .get(key)
            .or_else(|| self.defaults.get(key))
            .cloned()
            .unwrap_or(Value::Null)
    }

    /// Writes a key. Writes to pinned keys are silently ignored, modeling
    /// WASABI restoring default retry configurations in repurposed tests.
    pub fn set(&mut self, key: &str, value: Value) {
        if self.pinned.iter().any(|p| p == key) {
            return;
        }
        self.overrides.insert(key.to_string(), value);
    }

    /// Pins `key` to its default: subsequent `setConfig` calls are ignored.
    pub fn pin(&mut self, key: &str) {
        self.overrides.remove(key);
        if !self.pinned.iter().any(|p| p == key) {
            self.pinned.push(key.to_string());
        }
    }

    /// Drops all runtime overrides (fresh-test semantics).
    pub fn reset_overrides(&mut self) {
        self.overrides.clear();
    }

    /// Whether a key was declared.
    pub fn is_declared(&self, key: &str) -> bool {
        self.defaults.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ConfigStore {
        let mut s = ConfigStore::default();
        s.defaults.insert("retry.max".into(), Value::Int(5));
        s
    }

    #[test]
    fn get_falls_back_to_default_then_null() {
        let s = store();
        assert!(s.get("retry.max").value_eq(&Value::Int(5)));
        assert!(s.get("missing").value_eq(&Value::Null));
    }

    #[test]
    fn set_overrides_until_reset() {
        let mut s = store();
        s.set("retry.max", Value::Int(0));
        assert!(s.get("retry.max").value_eq(&Value::Int(0)));
        s.reset_overrides();
        assert!(s.get("retry.max").value_eq(&Value::Int(5)));
    }

    #[test]
    fn pinned_keys_ignore_writes() {
        let mut s = store();
        s.set("retry.max", Value::Int(0));
        s.pin("retry.max");
        assert!(s.get("retry.max").value_eq(&Value::Int(5)), "pin clears override");
        s.set("retry.max", Value::Int(1));
        assert!(s.get("retry.max").value_eq(&Value::Int(5)), "pin blocks writes");
    }
}
