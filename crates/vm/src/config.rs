//! Application configuration store.
//!
//! Javelin programs declare keys with `config "key" default <lit>;` and read
//! or write them at run time with the `getConfig`/`setConfig` builtins. The
//! planner's configuration-restoration pass (§3.1.4 of the paper) works by
//! overriding test-local writes to retry-related keys back to these defaults.
//!
//! Declared keys get dense ids at compile time (see
//! [`ProgramIndex::configs`](wasabi_lang::index::ProgramIndex)); their state
//! lives in a plain `Vec` indexed by id. Undeclared keys — `setConfig` on a
//! key no `config` declaration names — still work through a string-keyed
//! side table, preserving the original store's semantics.

use crate::value::Value;
use std::collections::HashMap;
use wasabi_lang::ast::Literal;
use wasabi_lang::index::ProgramIndex;

/// Per-declared-key runtime state.
#[derive(Debug, Clone)]
struct ConfigSlot {
    default: Value,
    over: Option<Value>,
    pinned: bool,
}

/// Runtime configuration: declared defaults plus runtime overrides.
#[derive(Debug, Clone, Default)]
pub struct ConfigStore {
    /// Declared keys, indexed by config id.
    slots: Vec<ConfigSlot>,
    /// Overrides for undeclared keys.
    extra: HashMap<String, Value>,
    /// Pinned undeclared keys.
    extra_pinned: Vec<String>,
}

/// Converts a declaration literal to a runtime value.
pub fn literal_value(lit: &Literal) -> Value {
    match lit {
        Literal::Int(v) => Value::Int(*v),
        Literal::Str(s) => Value::str(s.clone()),
        Literal::Bool(b) => Value::Bool(*b),
        Literal::Null => Value::Null,
    }
}

impl ConfigStore {
    /// Builds a store from the program index's declared config defaults.
    pub fn from_index(index: &ProgramIndex) -> Self {
        ConfigStore {
            slots: index
                .configs
                .iter()
                .map(|c| ConfigSlot {
                    default: literal_value(&c.default),
                    over: None,
                    pinned: false,
                })
                .collect(),
            extra: HashMap::new(),
            extra_pinned: Vec::new(),
        }
    }

    /// Reads a declared key by id: override first, then default.
    pub fn get_id(&self, id: u32) -> Value {
        let slot = &self.slots[id as usize];
        slot.over.clone().unwrap_or_else(|| slot.default.clone())
    }

    /// Writes a declared key by id. Writes to pinned keys are silently
    /// ignored, modeling WASABI restoring default retry configurations in
    /// repurposed tests.
    pub fn set_id(&mut self, id: u32, value: Value) {
        let slot = &mut self.slots[id as usize];
        if !slot.pinned {
            slot.over = Some(value);
        }
    }

    /// Pins a declared key to its default: the override is dropped and
    /// subsequent `setConfig` calls are ignored.
    pub fn pin_id(&mut self, id: u32) {
        let slot = &mut self.slots[id as usize];
        slot.over = None;
        slot.pinned = true;
    }

    /// Reads an undeclared key: override or `null`.
    pub fn get_undeclared(&self, key: &str) -> Value {
        self.extra.get(key).cloned().unwrap_or(Value::Null)
    }

    /// Writes an undeclared key (unless pinned).
    pub fn set_undeclared(&mut self, key: &str, value: Value) {
        if self.extra_pinned.iter().any(|p| p == key) {
            return;
        }
        self.extra.insert(key.to_string(), value);
    }

    /// Pins an undeclared key (it reads as `null` and ignores writes).
    pub fn pin_undeclared(&mut self, key: &str) {
        self.extra.remove(key);
        if !self.extra_pinned.iter().any(|p| p == key) {
            self.extra_pinned.push(key.to_string());
        }
    }

    /// Drops all runtime overrides (fresh-test semantics).
    pub fn reset_overrides(&mut self) {
        for slot in &mut self.slots {
            slot.over = None;
        }
        self.extra.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi_lang::project::Project;

    fn store() -> (ConfigStore, u32) {
        let p = Project::compile(
            "t",
            vec![("c.jav", "config \"retry.max\" default 5;\nclass A { }")],
        )
        .unwrap();
        let id = p.index.config_by_name("retry.max").unwrap();
        (ConfigStore::from_index(&p.index), id)
    }

    #[test]
    fn get_falls_back_to_default_then_null() {
        let (s, id) = store();
        assert!(s.get_id(id).value_eq(&Value::Int(5)));
        assert!(s.get_undeclared("missing").value_eq(&Value::Null));
    }

    #[test]
    fn set_overrides_until_reset() {
        let (mut s, id) = store();
        s.set_id(id, Value::Int(0));
        assert!(s.get_id(id).value_eq(&Value::Int(0)));
        s.set_undeclared("ad.hoc", Value::Bool(true));
        assert!(s.get_undeclared("ad.hoc").value_eq(&Value::Bool(true)));
        s.reset_overrides();
        assert!(s.get_id(id).value_eq(&Value::Int(5)));
        assert!(s.get_undeclared("ad.hoc").value_eq(&Value::Null));
    }

    #[test]
    fn pinned_keys_ignore_writes() {
        let (mut s, id) = store();
        s.set_id(id, Value::Int(0));
        s.pin_id(id);
        assert!(s.get_id(id).value_eq(&Value::Int(5)), "pin clears override");
        s.set_id(id, Value::Int(1));
        assert!(s.get_id(id).value_eq(&Value::Int(5)), "pin blocks writes");
        s.set_undeclared("other", Value::Int(9));
        s.pin_undeclared("other");
        assert!(s.get_undeclared("other").value_eq(&Value::Null));
        s.set_undeclared("other", Value::Int(9));
        assert!(s.get_undeclared("other").value_eq(&Value::Null));
    }
}
