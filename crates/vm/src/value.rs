//! Runtime values of the Javelin interpreter.

use std::cell::RefCell;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;
use wasabi_lang::index::{ExcId, FieldLayout};
use wasabi_lang::project::MethodId;

/// A runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(Rc<String>),
    /// The null reference.
    Null,
    /// An instance of a user-declared class.
    Object(Rc<RefCell<Object>>),
    /// A FIFO queue, optionally with delayed entries.
    Queue(Rc<RefCell<QueueData>>),
    /// A growable list.
    List(Rc<RefCell<Vec<Value>>>),
    /// A hash map with int/string/bool keys.
    Map(Rc<RefCell<HashMap<MapKey, Value>>>),
    /// An exception value.
    Exception(Rc<ExceptionValue>),
}

/// An instance of a user-declared class: a slot vector laid out by the
/// class's compile-time [`FieldLayout`].
#[derive(Debug)]
pub struct Object {
    /// The class's field layout (shared, from the program index).
    pub layout: Arc<FieldLayout>,
    /// Field values, indexed by layout slot.
    pub fields: Vec<Value>,
}

/// Queue contents: `(value, ready_time_ms)` entries in FIFO order.
///
/// `take` on an entry whose ready time is in the future advances the virtual
/// clock, which models scheduled (delayed) task re-enqueueing.
#[derive(Debug, Default)]
pub struct QueueData {
    /// Entries in arrival order.
    pub entries: VecDeque<(Value, u64)>,
}

/// A hashable map key.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MapKey {
    /// Integer key.
    Int(i64),
    /// String key.
    Str(String),
    /// Boolean key.
    Bool(bool),
}

impl MapKey {
    /// Converts a value into a map key, if it is a hashable primitive.
    pub fn from_value(value: &Value) -> Option<MapKey> {
        match value {
            Value::Int(v) => Some(MapKey::Int(*v)),
            Value::Str(s) => Some(MapKey::Str(s.as_ref().clone())),
            Value::Bool(b) => Some(MapKey::Bool(*b)),
            _ => None,
        }
    }
}

/// An exception value: type, message, optional cause, and the stack at the
/// point it was raised (like a Java stack trace).
#[derive(Debug, Clone)]
pub struct ExceptionValue {
    /// Exception type name.
    pub ty: String,
    /// The type's id in the program index, when the type is declared there.
    /// Injected exception types may be undeclared (`None`); subtype checks
    /// on those fall back to string comparison.
    pub exc_id: Option<ExcId>,
    /// Message, if any.
    pub message: String,
    /// Chained cause, if any.
    pub cause: Option<Rc<ExceptionValue>>,
    /// Call stack (outermost first) captured when the exception was raised.
    pub raised_at: Vec<MethodId>,
    /// Whether this exception was thrown by a fault-injection handler rather
    /// than by program code.
    pub injected: bool,
}

impl ExceptionValue {
    /// The chain of type names starting at this exception and following
    /// causes: `[self.ty, cause.ty, cause.cause.ty, ...]`.
    pub fn cause_chain(&self) -> Vec<String> {
        let mut out = vec![self.ty.clone()];
        let mut current = self.cause.clone();
        while let Some(exc) = current {
            out.push(exc.ty.clone());
            current = exc.cause.clone();
        }
        out
    }

    /// Whether the cause chain (including this exception) contains `ty`.
    pub fn chain_contains(&self, ty: &str) -> bool {
        self.cause_chain().iter().any(|t| t == ty)
    }
}

impl Value {
    /// Creates a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(Rc::new(s.into()))
    }

    /// A short name of the value's runtime type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Bool(_) => "bool",
            Value::Str(_) => "string",
            Value::Null => "null",
            Value::Object(_) => "object",
            Value::Queue(_) => "queue",
            Value::List(_) => "list",
            Value::Map(_) => "map",
            Value::Exception(_) => "exception",
        }
    }

    /// Structural/reference equality, mirroring Java `==` for primitives and
    /// reference identity for containers and objects. Strings compare by
    /// value (Javelin has no interning subtleties).
    pub fn value_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Null, Value::Null) => true,
            (Value::Object(a), Value::Object(b)) => Rc::ptr_eq(a, b),
            (Value::Queue(a), Value::Queue(b)) => Rc::ptr_eq(a, b),
            (Value::List(a), Value::List(b)) => Rc::ptr_eq(a, b),
            (Value::Map(a), Value::Map(b)) => Rc::ptr_eq(a, b),
            (Value::Exception(a), Value::Exception(b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Renders the value for `log` output and string concatenation.
    pub fn render(&self) -> String {
        match self {
            Value::Int(v) => v.to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Str(s) => s.as_ref().clone(),
            Value::Null => "null".to_string(),
            Value::Object(o) => format!("<{}>", o.borrow().layout.class_name),
            Value::Queue(q) => format!("<queue:{}>", q.borrow().entries.len()),
            Value::List(l) => format!("<list:{}>", l.borrow().len()),
            Value::Map(m) => format!("<map:{}>", m.borrow().len()),
            Value::Exception(e) => {
                if e.message.is_empty() {
                    e.ty.to_string()
                } else {
                    format!("{}: {}", e.ty, e.message)
                }
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_equality() {
        assert!(Value::Int(3).value_eq(&Value::Int(3)));
        assert!(!Value::Int(3).value_eq(&Value::Int(4)));
        assert!(Value::str("a").value_eq(&Value::str("a")));
        assert!(Value::Null.value_eq(&Value::Null));
        assert!(!Value::Int(0).value_eq(&Value::Bool(false)));
    }

    #[test]
    fn reference_equality_for_containers() {
        let a = Value::List(Rc::new(RefCell::new(vec![])));
        let b = Value::List(Rc::new(RefCell::new(vec![])));
        assert!(a.value_eq(&a.clone()));
        assert!(!a.value_eq(&b));
    }

    #[test]
    fn exception_cause_chain() {
        let inner = Rc::new(ExceptionValue {
            ty: "AccessControlException".into(),
            exc_id: None,
            message: "denied".into(),
            cause: None,
            raised_at: vec![],
            injected: true,
        });
        let outer = ExceptionValue {
            ty: "HadoopException".into(),
            exc_id: None,
            message: "wrapped".into(),
            cause: Some(inner),
            raised_at: vec![],
            injected: false,
        };
        assert_eq!(
            outer.cause_chain(),
            vec!["HadoopException", "AccessControlException"]
        );
        assert!(outer.chain_contains("AccessControlException"));
        assert!(!outer.chain_contains("IOException"));
    }

    #[test]
    fn map_keys_from_values() {
        assert_eq!(MapKey::from_value(&Value::Int(1)), Some(MapKey::Int(1)));
        assert_eq!(
            MapKey::from_value(&Value::str("k")),
            Some(MapKey::Str("k".into()))
        );
        assert_eq!(MapKey::from_value(&Value::Null), None);
    }

    #[test]
    fn render_is_stable() {
        assert_eq!(Value::Int(-4).render(), "-4");
        assert_eq!(Value::str("x").render(), "x");
        assert_eq!(Value::Null.render(), "null");
    }
}
