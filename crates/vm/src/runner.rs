//! Unit-test runner: discovers `test` methods and executes each in a fresh
//! interpreter, producing a [`TestRun`] per test.

use crate::interceptor::{Interceptor, NoopInterceptor};
use crate::interp::{Interp, InvokeResult, RunLimits, VmError};
use crate::trace::{ExcSummary, TestOutcome, TestRun};
use wasabi_lang::project::{MethodId, Project};

/// Options for a test-suite run.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Per-test resource limits.
    pub limits: RunLimits,
    /// Configuration keys pinned to their declared defaults for every test
    /// (the planner's retry-config restoration pass fills this in).
    pub pinned_configs: Vec<String>,
}

/// Runs a single test method with the given interceptor.
pub fn run_test(
    project: &Project,
    test: &MethodId,
    interceptor: &mut dyn Interceptor,
    options: &RunOptions,
) -> TestRun {
    let started = std::time::Instant::now();
    let mut interp = Interp::new(project, interceptor, options.limits);
    for key in &options.pinned_configs {
        interp.pin_config(key);
    }
    let result = interp.invoke(&test.class, &test.name, Vec::new());
    let outcome = match result {
        InvokeResult::Ok(_) => TestOutcome::Passed,
        InvokeResult::Exception(exc) => {
            if exc.ty == "AssertionError" {
                TestOutcome::AssertionFailed {
                    message: exc.message.clone(),
                }
            } else {
                TestOutcome::ExceptionEscaped {
                    exc: ExcSummary::from_value(&exc),
                }
            }
        }
        InvokeResult::Vm(VmError::Timeout { virtual_ms }) => TestOutcome::Timeout { virtual_ms },
        InvokeResult::Vm(VmError::WallClockExceeded) => TestOutcome::WallClockExceeded,
        InvokeResult::Vm(VmError::FuelExhausted) => TestOutcome::FuelExhausted,
        InvokeResult::Vm(VmError::Fault(message)) => TestOutcome::VmFault { message },
    };
    TestRun {
        test: test.clone(),
        outcome,
        trace: interp.take_trace(),
        virtual_ms: interp.clock_ms(),
        steps: interp.steps(),
        wall_us: u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
    }
}

/// Runs every test in the project with a no-op interceptor (plain testing,
/// as developers would run the suite).
pub fn run_all_tests(project: &Project, options: &RunOptions) -> Vec<TestRun> {
    let mut noop = NoopInterceptor;
    project
        .tests()
        .iter()
        .map(|(_, test)| run_test(project, test, &mut noop, options))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi_lang::project::Project;

    fn project(src: &str) -> Project {
        Project::compile("t", vec![("t.jav", src)]).expect("compile")
    }

    #[test]
    fn passing_and_failing_assertions() {
        let p = project(
            "class T {\n\
               test tPass() { assert(1 + 1 == 2); }\n\
               test tFail() { assert(1 == 2, \"math is broken\"); }\n\
             }",
        );
        let runs = run_all_tests(&p, &RunOptions::default());
        assert_eq!(runs.len(), 2);
        assert!(runs[0].outcome.is_pass());
        assert_eq!(
            runs[1].outcome,
            TestOutcome::AssertionFailed {
                message: "math is broken".into()
            }
        );
    }

    #[test]
    fn escaping_exception_is_summarized() {
        let p = project(
            "exception IOException;\n\
             class T {\n\
               method boom() throws IOException { throw new IOException(\"disk\"); }\n\
               test tBoom() { this.boom(); }\n\
             }",
        );
        let runs = run_all_tests(&p, &RunOptions::default());
        match &runs[0].outcome {
            TestOutcome::ExceptionEscaped { exc } => {
                assert_eq!(exc.ty, "IOException");
                assert_eq!(exc.message, "disk");
                assert!(!exc.injected);
                assert_eq!(
                    exc.raised_at.last().map(|m| m.to_string()).as_deref(),
                    Some("T.boom")
                );
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn virtual_timeout_aborts_test() {
        let p = project(
            "class T {\n\
               test tSleepy() { while (true) { sleep(60000); } }\n\
             }",
        );
        let runs = run_all_tests(&p, &RunOptions::default());
        match runs[0].outcome {
            TestOutcome::Timeout { virtual_ms } => assert!(virtual_ms > 15 * 60 * 1000),
            ref other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn fuel_exhaustion_aborts_runaway_loop() {
        let p = project("class T { test tSpin() { while (true) { var x = 1; } } }");
        let mut options = RunOptions::default();
        options.limits.fuel = 10_000;
        let runs = run_all_tests(&p, &options);
        assert_eq!(runs[0].outcome, TestOutcome::FuelExhausted);
    }

    #[test]
    fn vm_fault_on_unknown_method() {
        let p = project("class T { test tBad() { this.missing(); } }");
        let runs = run_all_tests(&p, &RunOptions::default());
        match &runs[0].outcome {
            TestOutcome::VmFault { message } => assert!(message.contains("unknown method")),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn pinned_configs_resist_test_overrides() {
        let p = project(
            "config \"retry.max\" default 5;\n\
             class T {\n\
               test tOverride() {\n\
                 setConfig(\"retry.max\", 0);\n\
                 assert(getConfig(\"retry.max\") == 5, \"pin should hold\");\n\
               }\n\
             }",
        );
        let mut options = RunOptions::default();
        options.pinned_configs.push("retry.max".into());
        let runs = run_all_tests(&p, &options);
        assert!(runs[0].outcome.is_pass(), "outcome: {:?}", runs[0].outcome);
    }
}
