//! The Javelin interpreter, executing compile-once lowered programs.
//!
//! Design points that matter for WASABI:
//!
//! - **Compile-once hot path.** The interpreter executes the
//!   [`ProgramIndex`] built at [`Project::compile`] time: method bodies are
//!   lowered to slot-addressed [`LStmt`]/[`LExpr`] trees, locals live in a
//!   `Vec<Option<Value>>`, object fields in a slot vector, and every name
//!   comparison is an interned `u32`. Method resolution, exception-subtype
//!   checks, and config-key lookups are table lookups — no string hashing
//!   or superclass walks per call. Strings reappear only at the edges
//!   (trace events, fault messages, exception values), so observable
//!   output is byte-identical to the original tree walker.
//! - **Virtual clock.** `sleep(ms)` and delayed queue takes advance a virtual
//!   clock instead of blocking, so the paper's 15-minute test timeout and the
//!   missing-delay oracle are deterministic and fast.
//! - **Interception.** Right before every user-method call, the configured
//!   [`Interceptor`](crate::interceptor::Interceptor) is consulted with full
//!   static (call site) and dynamic (stack, clock) context — this is the
//!   AspectJ pointcut substitute. An [`InterceptAction::Throw`] makes the
//!   call site raise the given exception as if the callee had failed, and
//!   records an [`Event::Injected`] trace entry.
//! - **Strictness.** Malformed programs (unknown methods, bad operand types,
//!   arity mismatches) surface as [`VmError::Fault`], distinct from
//!   in-language exceptions, so corpus bugs cannot masquerade as retry bugs.
//! - **`break` targets loops**, never `switch` statements (Javelin switches
//!   have no fallthrough, so a `break` inside a state-machine switch exits
//!   the enclosing driver loop — matching how the corpus encodes
//!   state-machine executors).
//!
//! [`Project::compile`]: wasabi_lang::project::Project::compile

use crate::config::ConfigStore;
use crate::interceptor::{CallCtx, InterceptAction, Interceptor};
use crate::trace::{CallSite, Event, Trace};
use crate::value::{ExceptionValue, MapKey, Object, QueueData, Value};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;
use wasabi_lang::ast::{BinOp, Literal, UnOp};
use wasabi_lang::index::{ClassId, ExcId, LExpr, LStmt, ProgramIndex};
use wasabi_lang::intern::{MethodSym, NameTable, Symbol};
use wasabi_lang::project::{MethodId, Project};

pub use wasabi_lang::index::is_global_builtin;

/// Interpreter-level failures, distinct from in-language exceptions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// The step budget was exhausted.
    FuelExhausted,
    /// The virtual clock passed the per-run time limit.
    Timeout {
        /// Virtual time at abort.
        virtual_ms: u64,
    },
    /// The real (wall-clock) per-run budget expired. Unlike [`Timeout`],
    /// which is deterministic virtual time, this depends on host speed and
    /// scheduling — callers that need reproducible reports must not leak
    /// the abort point into their output (the campaign engine records a
    /// bare `TimedOut` and discards the partial trace).
    ///
    /// [`Timeout`]: VmError::Timeout
    WallClockExceeded,
    /// The program is malformed (unknown method, type error, ...).
    Fault(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::FuelExhausted => write!(f, "step budget exhausted"),
            VmError::Timeout { virtual_ms } => {
                write!(f, "virtual time limit exceeded at {virtual_ms} ms")
            }
            VmError::WallClockExceeded => write!(f, "wall-clock budget exceeded"),
            VmError::Fault(msg) => write!(f, "vm fault: {msg}"),
        }
    }
}

impl std::error::Error for VmError {}

/// Resource limits for one run.
#[derive(Debug, Clone, Copy)]
pub struct RunLimits {
    /// Maximum interpreter steps (statements + calls).
    pub fuel: u64,
    /// Maximum virtual time, in milliseconds. The paper aborts unit tests at
    /// 15 minutes; that is the default here too.
    pub virtual_time_limit_ms: u64,
    /// Maximum call-stack depth.
    pub max_call_depth: usize,
    /// Optional real-time deadline. The interpreter checks it every
    /// [`WALL_CHECK_INTERVAL`] steps (an `Instant::now()` call per statement
    /// would dominate the run) and aborts with
    /// [`VmError::WallClockExceeded`] once passed. `None` (the default)
    /// disables the check entirely — plain serial runs pay nothing.
    pub wall_deadline: Option<Instant>,
}

/// How many interpreter steps elapse between wall-clock deadline checks.
pub const WALL_CHECK_INTERVAL: u64 = 4096;

impl Default for RunLimits {
    fn default() -> Self {
        RunLimits {
            fuel: 5_000_000,
            virtual_time_limit_ms: 15 * 60 * 1000,
            max_call_depth: 64,
            wall_deadline: None,
        }
    }
}

/// Non-local control flow during execution.
pub(crate) enum Control {
    Return(Value),
    Break,
    Continue,
    Throw(Rc<ExceptionValue>),
    Err(VmError),
}

type Exec = Result<(), Control>;
type Eval = Result<Value, Control>;

/// Result of invoking a method from the outside.
#[derive(Debug)]
pub enum InvokeResult {
    /// Normal completion with the returned value.
    Ok(Value),
    /// An exception escaped the invoked method.
    Exception(Rc<ExceptionValue>),
    /// The interpreter aborted.
    Vm(VmError),
}

/// Per-method local environment: one slot per compile-time local. `None`
/// means "not yet written" — reads then fall back to a `this` field,
/// preserving the dynamic local-or-field resolution of the original
/// string-keyed environment.
type Env = [Option<Value>];

/// The interpreter for one run (typically one unit test).
pub struct Interp<'p, 'i> {
    index: &'p ProgramIndex,
    /// Runtime configuration store (resettable between tests).
    pub config: ConfigStore,
    interceptor: &'i mut dyn Interceptor,
    limits: RunLimits,
    clock_ms: u64,
    fuel_used: u64,
    trace: Trace,
    stack: Vec<MethodSym>,
    injection_counts: HashMap<(CallSite, String), u32>,
    /// Names that only exist at run time (e.g. an unknown method passed to
    /// [`invoke`](Interp::invoke)); their symbols extend the frozen interner.
    extra_names: Vec<String>,
}

impl<'p, 'i> Interp<'p, 'i> {
    /// Creates an interpreter over `project` with the given interceptor.
    pub fn new(
        project: &'p Project,
        interceptor: &'i mut dyn Interceptor,
        limits: RunLimits,
    ) -> Self {
        let index: &'p ProgramIndex = &project.index;
        Interp {
            index,
            config: ConfigStore::from_index(index),
            interceptor,
            limits,
            clock_ms: 0,
            fuel_used: 0,
            trace: Trace::new(),
            stack: Vec::new(),
            injection_counts: HashMap::new(),
            extra_names: Vec::new(),
        }
    }

    /// Current virtual time in milliseconds.
    pub fn clock_ms(&self) -> u64 {
        self.clock_ms
    }

    /// Steps consumed so far.
    pub fn steps(&self) -> u64 {
        self.fuel_used
    }

    /// Takes the accumulated trace, leaving an empty one.
    pub fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.trace)
    }

    /// Pins a configuration key to its declared default: subsequent
    /// `setConfig` calls on it are ignored.
    pub fn pin_config(&mut self, key: &str) {
        match self.index.config_by_name(key) {
            Some(id) => self.config.pin_id(id),
            None => self.config.pin_undeclared(key),
        }
    }

    /// Instantiates `class` with a no-argument constructor and invokes
    /// `method` on it with `args`.
    pub fn invoke(&mut self, class: &str, method: &str, args: Vec<Value>) -> InvokeResult {
        let class_id = match self.index.class_by_name(class) {
            Some(id) => id,
            None => {
                return InvokeResult::Vm(VmError::Fault(format!("unknown class `{class}`")));
            }
        };
        let class_sym = self.index.classes[class_id.0 as usize].name;
        let method_sym = self.intern_runtime(method);
        // Synthesize an entry frame so stack snapshots are never empty.
        self.stack.push(MethodSym {
            class: self.index.wk.entry,
            name: method_sym,
        });
        let result = match self.instantiate(class_id, Vec::new()) {
            Ok(this) => self.call_resolved(this, class_id, class_sym, method_sym, args),
            Err(ctrl) => Err(ctrl),
        };
        self.stack.pop();
        match result {
            Ok(value) => InvokeResult::Ok(value),
            Err(Control::Throw(exc)) => InvokeResult::Exception(exc),
            Err(Control::Err(err)) => InvokeResult::Vm(err),
            Err(Control::Return(value)) => InvokeResult::Ok(value),
            Err(Control::Break) | Err(Control::Continue) => InvokeResult::Vm(VmError::Fault(
                "break/continue escaped method body".to_string(),
            )),
        }
    }

    // ---- Infrastructure ----------------------------------------------------

    fn tick(&mut self) -> Result<(), Control> {
        self.fuel_used += 1;
        if self.fuel_used > self.limits.fuel {
            return Err(Control::Err(VmError::FuelExhausted));
        }
        if self.fuel_used.is_multiple_of(WALL_CHECK_INTERVAL) {
            if let Some(deadline) = self.limits.wall_deadline {
                if Instant::now() >= deadline {
                    return Err(Control::Err(VmError::WallClockExceeded));
                }
            }
        }
        Ok(())
    }

    fn advance_clock(&mut self, ms: u64, record: bool) -> Result<(), Control> {
        let at_ms = self.clock_ms;
        self.clock_ms = self.clock_ms.saturating_add(ms);
        if record {
            let stack = self.resolve_stack();
            self.trace.events.push(Event::Slept { ms, at_ms, stack });
        }
        if self.clock_ms > self.limits.virtual_time_limit_ms {
            return Err(Control::Err(VmError::Timeout {
                virtual_ms: self.clock_ms,
            }));
        }
        Ok(())
    }

    /// Resolves the interned call stack to owned [`MethodId`]s. Only called
    /// off the hot path: at sleeps, exception creation, and injections.
    fn resolve_stack(&self) -> Vec<MethodId> {
        let names = NameTable::new(&self.index.interner, &self.extra_names);
        self.stack.iter().map(|&m| names.method_id(m)).collect()
    }

    /// Resolves a symbol that may come from the run-time overlay.
    fn resolve_name(&self, sym: Symbol) -> &str {
        let idx = sym.index();
        if idx < self.index.interner.len() {
            self.index.interner.resolve(sym)
        } else {
            &self.extra_names[idx - self.index.interner.len()]
        }
    }

    /// Interns a run-time name: frozen symbol if the program mentions it,
    /// overlay symbol past the frozen range otherwise.
    fn intern_runtime(&mut self, s: &str) -> Symbol {
        if let Some(sym) = self.index.interner.lookup(s) {
            return sym;
        }
        let base = self.index.interner.len();
        if let Some(pos) = self.extra_names.iter().position(|n| n == s) {
            return Symbol((base + pos) as u32);
        }
        self.extra_names.push(s.to_string());
        Symbol((base + self.extra_names.len() - 1) as u32)
    }

    fn fault(&self, msg: impl Into<String>) -> Control {
        Control::Err(VmError::Fault(msg.into()))
    }

    fn raise(&mut self, exc: ExcId, message: impl Into<String>) -> Control {
        let ty = self.index.exceptions[exc.0 as usize].name_str.clone();
        let exc_value = Rc::new(ExceptionValue {
            ty: ty.clone(),
            exc_id: Some(exc),
            message: message.into(),
            cause: None,
            raised_at: self.resolve_stack(),
            injected: false,
        });
        self.trace.events.push(Event::Raised {
            exc_type: ty,
            at_ms: self.clock_ms,
        });
        Control::Throw(exc_value)
    }

    /// Whether `exc` matches a `catch (sup ..)` clause. Exceptions whose
    /// type is not declared (possible only for injected types) match
    /// nothing, exactly like the original string-walk did.
    fn exc_matches(&self, exc: &ExceptionValue, sup: ExcId) -> bool {
        match exc.exc_id {
            Some(sub) => self.index.is_exc_subtype(sub, sup),
            None => false,
        }
    }

    // ---- Objects and calls -------------------------------------------------

    fn instantiate(&mut self, class: ClassId, args: Vec<Value>) -> Eval {
        let index = self.index;
        let cdef = &index.classes[class.0 as usize];
        let object = Rc::new(RefCell::new(Object {
            layout: Arc::clone(&cdef.layout),
            fields: vec![Value::Null; cdef.layout.len()],
        }));
        let this = Value::Object(Rc::clone(&object));
        // Evaluate initializers in declaration order (base-class fields
        // first) with `this` bound to the object under construction.
        // Initializer expressions cannot reference locals, so the
        // environment is empty.
        for init in &cdef.inits {
            let value = self.eval(&mut [], &this, &init.expr)?;
            object.borrow_mut().fields[init.slot as usize] = value;
        }
        // Run the constructor, if declared.
        if cdef.has_init {
            self.call_resolved(this.clone(), class, cdef.name, index.wk.init, args)?;
        } else if !args.is_empty() {
            return Err(self.fault(format!(
                "class `{}` has no `init` constructor but was given {} argument(s)",
                cdef.name_str,
                args.len()
            )));
        }
        Ok(this)
    }

    /// Calls `method` on `this` (whose class is `class`), running the body.
    fn call_resolved(
        &mut self,
        this: Value,
        class: ClassId,
        class_sym: Symbol,
        method: Symbol,
        args: Vec<Value>,
    ) -> Eval {
        let index = self.index;
        let compiled = match index.resolve_dispatch(class, method) {
            Some(midx) => &index.methods[midx as usize],
            None => {
                return Err(self.fault(format!(
                    "unknown method `{}.{}`",
                    index.classes[class.0 as usize].name_str,
                    self.resolve_name(method)
                )));
            }
        };
        if compiled.params as usize != args.len() {
            return Err(self.fault(format!(
                "arity mismatch calling `{}.{}`: expected {}, got {}",
                index.classes[class.0 as usize].name_str,
                self.resolve_name(method),
                compiled.params,
                args.len()
            )));
        }
        if self.stack.len() >= self.limits.max_call_depth {
            return Err(self.fault(format!(
                "call depth limit ({}) exceeded calling `{}.{}`",
                self.limits.max_call_depth,
                index.classes[class.0 as usize].name_str,
                self.resolve_name(method)
            )));
        }
        let mut env: Vec<Option<Value>> = vec![None; compiled.n_slots as usize];
        for (slot, arg) in args.into_iter().enumerate() {
            env[slot] = Some(arg);
        }
        self.stack.push(MethodSym {
            class: class_sym,
            name: method,
        });
        let result = self.exec_block(&mut env, &this, &compiled.body);
        self.stack.pop();
        match result {
            Ok(()) => Ok(Value::Null),
            Err(Control::Return(value)) => Ok(value),
            Err(other) => Err(other),
        }
    }

    /// Dispatches a call expression: interceptor, builtins, user methods.
    fn call_expr(
        &mut self,
        env: &mut Env,
        this: &Value,
        site: CallSite,
        recv: Option<&LExpr>,
        method: Symbol,
        arg_exprs: &[LExpr],
    ) -> Eval {
        self.tick()?;
        let index = self.index;
        let recv_value = match recv {
            Some(expr) => self.eval(env, this, expr)?,
            None => this.clone(),
        };
        // Builtin methods on non-object receivers.
        match &recv_value {
            Value::Null => {
                let msg = format!("call to `{}` on null", index.interner.resolve(method));
                return Err(self.raise(index.wk.npe, msg));
            }
            Value::Object(_) => {}
            _ => {
                let mut args = Vec::with_capacity(arg_exprs.len());
                for arg in arg_exprs {
                    args.push(self.eval(env, this, arg)?);
                }
                return self.value_builtin(&recv_value, index.interner.resolve(method), args);
            }
        }
        let (class_id, class_sym) = match &recv_value {
            Value::Object(obj) => {
                let layout = &obj.borrow().layout;
                (layout.class_id, layout.class_sym)
            }
            _ => unreachable!("receiver checked above"),
        };
        let mut args = Vec::with_capacity(arg_exprs.len());
        for arg in arg_exprs {
            args.push(self.eval(env, this, arg)?);
        }
        // Consult the interceptor before entering the callee.
        let caller = self.stack.last().copied().unwrap_or(MethodSym {
            class: index.wk.entry,
            name: index.wk.entry,
        });
        let callee = MethodSym {
            class: class_sym,
            name: method,
        };
        let action = {
            let ctx = CallCtx {
                site,
                caller,
                callee,
                stack: &self.stack,
                now_ms: self.clock_ms,
                names: NameTable::new(&index.interner, &self.extra_names),
            };
            self.interceptor.before_call(&ctx)
        };
        match action {
            InterceptAction::Proceed => self.call_resolved(recv_value, class_id, class_sym, method, args),
            InterceptAction::Throw { exc_type, message } => {
                let count = self
                    .injection_counts
                    .entry((site, exc_type.clone()))
                    .or_insert(0);
                *count += 1;
                let count = *count;
                let names = NameTable::new(&index.interner, &self.extra_names);
                let callee_id = names.method_id(callee);
                self.trace.events.push(Event::Injected {
                    site,
                    caller: names.method_id(caller),
                    callee: callee_id.clone(),
                    exc_type: exc_type.clone(),
                    count,
                    at_ms: self.clock_ms,
                });
                let mut raised_at = self.resolve_stack();
                raised_at.push(callee_id);
                Err(Control::Throw(Rc::new(ExceptionValue {
                    exc_id: index.exc_by_name(&exc_type),
                    ty: exc_type,
                    message,
                    cause: None,
                    raised_at,
                    injected: true,
                })))
            }
        }
    }

    // ---- Statements ---------------------------------------------------------

    fn exec_block(&mut self, env: &mut Env, this: &Value, block: &[LStmt]) -> Exec {
        for stmt in block {
            self.exec_stmt(env, this, stmt)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, env: &mut Env, this: &Value, stmt: &LStmt) -> Exec {
        self.tick()?;
        match stmt {
            LStmt::Var { slot, init } => {
                let value = self.eval(env, this, init)?;
                env[*slot as usize] = Some(value);
                Ok(())
            }
            LStmt::AssignLocal { slot, name, value } => {
                let value = self.eval(env, this, value)?;
                if env[*slot as usize].is_some() {
                    env[*slot as usize] = Some(value);
                    return Ok(());
                }
                // Fall back to an implicit `this` field, like Java.
                if let Value::Object(obj) = this {
                    let field_slot = obj.borrow().layout.slot(*name);
                    if let Some(field_slot) = field_slot {
                        obj.borrow_mut().fields[field_slot] = value;
                        return Ok(());
                    }
                }
                // First write introduces a local (function-scoped).
                env[*slot as usize] = Some(value);
                Ok(())
            }
            LStmt::AssignField { recv, name, value } => {
                let value = self.eval(env, this, value)?;
                let recv = self.eval(env, this, recv)?;
                match recv {
                    Value::Object(obj) => {
                        let field_slot = obj.borrow().layout.slot(*name);
                        match field_slot {
                            Some(field_slot) => {
                                obj.borrow_mut().fields[field_slot] = value;
                                Ok(())
                            }
                            None => Err(self.fault(format!(
                                "no field `{}` on class `{}`",
                                self.index.interner.resolve(*name),
                                obj.borrow().layout.class_name
                            ))),
                        }
                    }
                    Value::Null => {
                        let msg = format!(
                            "field write `{}` on null",
                            self.index.interner.resolve(*name)
                        );
                        Err(self.raise(self.index.wk.npe, msg))
                    }
                    other => Err(self.fault(format!(
                        "field write on non-object value of type {}",
                        other.type_name()
                    ))),
                }
            }
            LStmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                if self.eval_bool(env, this, cond)? {
                    self.exec_block(env, this, then_blk)
                } else if let Some(else_blk) = else_blk {
                    self.exec_block(env, this, else_blk)
                } else {
                    Ok(())
                }
            }
            LStmt::While { cond, body } => {
                while self.eval_bool(env, this, cond)? {
                    match self.exec_block(env, this, body) {
                        Ok(()) => {}
                        Err(Control::Break) => break,
                        Err(Control::Continue) => continue,
                        Err(other) => return Err(other),
                    }
                }
                Ok(())
            }
            LStmt::For {
                init,
                cond,
                update,
                body,
            } => {
                if let Some(init) = init {
                    self.exec_stmt(env, this, init)?;
                }
                loop {
                    if let Some(cond) = cond {
                        if !self.eval_bool(env, this, cond)? {
                            break;
                        }
                    }
                    match self.exec_block(env, this, body) {
                        Ok(()) => {}
                        Err(Control::Break) => break,
                        Err(Control::Continue) => {}
                        Err(other) => return Err(other),
                    }
                    if let Some(update) = update {
                        self.exec_stmt(env, this, update)?;
                    }
                }
                Ok(())
            }
            LStmt::Switch {
                scrutinee,
                cases,
                default,
            } => {
                let value = self.eval(env, this, scrutinee)?;
                for (lit, body) in cases {
                    if literal_matches(&value, lit) {
                        return self.exec_block(env, this, body);
                    }
                }
                if let Some(default) = default {
                    return self.exec_block(env, this, default);
                }
                Ok(())
            }
            LStmt::Try {
                body,
                catches,
                finally,
            } => {
                let mut result = self.exec_block(env, this, body);
                if let Err(Control::Throw(exc)) = &result {
                    let exc = Rc::clone(exc);
                    for catch in catches {
                        if self.exc_matches(&exc, catch.exc) {
                            env[catch.binding as usize] =
                                Some(Value::Exception(Rc::clone(&exc)));
                            result = self.exec_block(env, this, &catch.body);
                            break;
                        }
                    }
                }
                if let Some(finally) = finally {
                    match self.exec_block(env, this, finally) {
                        // A completed finally preserves the pending control.
                        Ok(()) => {}
                        // Abrupt finally overrides the pending control (Java
                        // semantics).
                        Err(ctrl) => return Err(ctrl),
                    }
                }
                result
            }
            LStmt::Throw { expr } => {
                let value = self.eval(env, this, expr)?;
                match value {
                    Value::Exception(exc) => {
                        self.trace.events.push(Event::Raised {
                            exc_type: exc.ty.clone(),
                            at_ms: self.clock_ms,
                        });
                        Err(Control::Throw(exc))
                    }
                    other => Err(self.fault(format!(
                        "throw of non-exception value of type {}",
                        other.type_name()
                    ))),
                }
            }
            LStmt::Return { expr } => {
                let value = match expr {
                    Some(expr) => self.eval(env, this, expr)?,
                    None => Value::Null,
                };
                Err(Control::Return(value))
            }
            LStmt::Break => Err(Control::Break),
            LStmt::Continue => Err(Control::Continue),
            LStmt::Sleep { ms } => {
                let ms = self.eval_int(env, this, ms)?;
                if ms < 0 {
                    return Err(self.fault("negative sleep duration"));
                }
                self.advance_clock(ms as u64, true)
            }
            LStmt::Log { expr } => {
                let value = self.eval(env, this, expr)?;
                self.trace.events.push(Event::Logged {
                    message: value.render(),
                    at_ms: self.clock_ms,
                });
                Ok(())
            }
            LStmt::Assert { cond, msg } => {
                if self.eval_bool(env, this, cond)? {
                    Ok(())
                } else {
                    let message = match msg {
                        Some(msg) => self.eval(env, this, msg)?.render(),
                        None => "assertion failed".to_string(),
                    };
                    Err(self.raise(self.index.wk.assertion, message))
                }
            }
            LStmt::Expr { expr } => {
                self.eval(env, this, expr)?;
                Ok(())
            }
        }
    }

    // ---- Expressions ---------------------------------------------------------

    fn eval_bool(&mut self, env: &mut Env, this: &Value, expr: &LExpr) -> Result<bool, Control> {
        match self.eval(env, this, expr)? {
            Value::Bool(b) => Ok(b),
            other => Err(self.fault(format!(
                "condition must be a bool, got {}",
                other.type_name()
            ))),
        }
    }

    fn eval_int(&mut self, env: &mut Env, this: &Value, expr: &LExpr) -> Result<i64, Control> {
        match self.eval(env, this, expr)? {
            Value::Int(v) => Ok(v),
            other => Err(self.fault(format!("expected an int, got {}", other.type_name()))),
        }
    }

    fn eval(&mut self, env: &mut Env, this: &Value, expr: &LExpr) -> Eval {
        match expr {
            LExpr::Literal(lit) => Ok(literal_to_value(lit)),
            LExpr::Local { slot, name } => {
                if let Some(value) = &env[*slot as usize] {
                    return Ok(value.clone());
                }
                self.read_this_field(this, *name)
            }
            LExpr::ImplicitField { name } => self.read_this_field(this, *name),
            LExpr::This => Ok(this.clone()),
            LExpr::Field { recv, name } => {
                let recv = self.eval(env, this, recv)?;
                match recv {
                    Value::Object(obj) => {
                        let borrowed = obj.borrow();
                        match borrowed.layout.slot(*name) {
                            Some(field_slot) => Ok(borrowed.fields[field_slot].clone()),
                            None => Err(self.fault(format!(
                                "no field `{}` on class `{}`",
                                self.index.interner.resolve(*name),
                                borrowed.layout.class_name
                            ))),
                        }
                    }
                    Value::Null => {
                        let msg = format!(
                            "field read `{}` on null",
                            self.index.interner.resolve(*name)
                        );
                        Err(self.raise(self.index.wk.npe, msg))
                    }
                    other => Err(self.fault(format!(
                        "field read on non-object value of type {}",
                        other.type_name()
                    ))),
                }
            }
            LExpr::GlobalCall { name, args } => {
                self.tick()?;
                let mut arg_values = Vec::with_capacity(args.len());
                for arg in args {
                    arg_values.push(self.eval(env, this, arg)?);
                }
                self.global_builtin(self.index.interner.resolve(*name), arg_values)
            }
            LExpr::Call {
                site,
                recv,
                method,
                args,
            } => self.call_expr(env, this, *site, recv.as_deref(), *method, args),
            LExpr::NewExc { exc, args } => {
                self.tick()?;
                let mut arg_values = Vec::with_capacity(args.len());
                for arg in args {
                    arg_values.push(self.eval(env, this, arg)?);
                }
                self.new_exception(*exc, arg_values)
            }
            LExpr::NewObj { class, args } => {
                self.tick()?;
                let mut arg_values = Vec::with_capacity(args.len());
                for arg in args {
                    arg_values.push(self.eval(env, this, arg)?);
                }
                self.instantiate(*class, arg_values)
            }
            LExpr::NewUnknown { class, args } => {
                self.tick()?;
                // Arguments still evaluate (for their side effects) before
                // the fault, exactly like the original instantiate path.
                for arg in args {
                    self.eval(env, this, arg)?;
                }
                Err(self.fault(format!("cannot instantiate unknown class `{class}`")))
            }
            LExpr::Binary { op, lhs, rhs } => {
                // Short-circuit logical operators.
                match op {
                    BinOp::And => {
                        return Ok(Value::Bool(
                            self.eval_bool(env, this, lhs)? && self.eval_bool(env, this, rhs)?,
                        ));
                    }
                    BinOp::Or => {
                        return Ok(Value::Bool(
                            self.eval_bool(env, this, lhs)? || self.eval_bool(env, this, rhs)?,
                        ));
                    }
                    _ => {}
                }
                let lhs = self.eval(env, this, lhs)?;
                let rhs = self.eval(env, this, rhs)?;
                self.binary(*op, lhs, rhs)
            }
            LExpr::Unary { op, expr } => {
                let value = self.eval(env, this, expr)?;
                match (op, value) {
                    (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                    (UnOp::Neg, Value::Int(v)) => Ok(Value::Int(v.wrapping_neg())),
                    (op, other) => Err(self.fault(format!(
                        "unary `{}` on {}",
                        op.symbol(),
                        other.type_name()
                    ))),
                }
            }
            LExpr::InstanceOf {
                expr,
                ty,
                exc,
                class,
            } => {
                let value = self.eval(env, this, expr)?;
                let result = match value {
                    Value::Exception(e) => match e.exc_id {
                        Some(sub) => match exc {
                            Some(sup) => self.index.is_exc_subtype(sub, *sup),
                            None => false,
                        },
                        // Undeclared (injected) exception type: the original
                        // string walk still matched on direct name equality.
                        None => self.index.interner.resolve(*ty) == e.ty,
                    },
                    Value::Object(obj) => match class {
                        Some(sup) => self.index.is_class_subtype(obj.borrow().layout.class_id, *sup),
                        None => false,
                    },
                    _ => false,
                };
                Ok(Value::Bool(result))
            }
        }
    }

    /// Reads the named field off `this` — the fallback for identifiers with
    /// no (written) local slot.
    fn read_this_field(&self, this: &Value, name: Symbol) -> Eval {
        if let Value::Object(obj) = this {
            let borrowed = obj.borrow();
            if let Some(field_slot) = borrowed.layout.slot(name) {
                return Ok(borrowed.fields[field_slot].clone());
            }
        }
        Err(self.fault(format!(
            "unknown variable `{}`",
            self.index.interner.resolve(name)
        )))
    }

    fn new_exception(&mut self, exc: ExcId, args: Vec<Value>) -> Eval {
        let index = self.index;
        let ty = &index.exceptions[exc.0 as usize].name_str;
        let mut iter = args.into_iter();
        let message = match iter.next() {
            None => String::new(),
            Some(Value::Str(s)) => s.as_ref().clone(),
            Some(other) => other.render(),
        };
        let cause = match iter.next() {
            None => None,
            Some(Value::Exception(exc)) => Some(exc),
            Some(Value::Null) => None,
            Some(other) => {
                return Err(self.fault(format!(
                    "exception cause must be an exception, got {}",
                    other.type_name()
                )));
            }
        };
        if iter.next().is_some() {
            return Err(self.fault(format!(
                "exception constructor `{ty}` takes at most (message, cause)"
            )));
        }
        Ok(Value::Exception(Rc::new(ExceptionValue {
            ty: ty.clone(),
            exc_id: Some(exc),
            message,
            cause,
            raised_at: self.resolve_stack(),
            injected: false,
        })))
    }

    fn binary(&mut self, op: BinOp, lhs: Value, rhs: Value) -> Eval {
        match op {
            BinOp::Add => match (&lhs, &rhs) {
                (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_add(*b))),
                (Value::Str(_), _) | (_, Value::Str(_)) => {
                    Ok(Value::str(format!("{}{}", lhs.render(), rhs.render())))
                }
                _ => Err(self.fault(format!(
                    "`+` on {} and {}",
                    lhs.type_name(),
                    rhs.type_name()
                ))),
            },
            BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => match (&lhs, &rhs) {
                (Value::Int(a), Value::Int(b)) => match op {
                    BinOp::Sub => Ok(Value::Int(a.wrapping_sub(*b))),
                    BinOp::Mul => Ok(Value::Int(a.wrapping_mul(*b))),
                    BinOp::Div => {
                        if *b == 0 {
                            Err(self.raise(self.index.wk.arithmetic, "division by zero"))
                        } else {
                            Ok(Value::Int(a.wrapping_div(*b)))
                        }
                    }
                    BinOp::Rem => {
                        if *b == 0 {
                            Err(self.raise(self.index.wk.arithmetic, "remainder by zero"))
                        } else {
                            Ok(Value::Int(a.wrapping_rem(*b)))
                        }
                    }
                    _ => unreachable!("arithmetic op"),
                },
                _ => Err(self.fault(format!(
                    "`{}` on {} and {}",
                    op.symbol(),
                    lhs.type_name(),
                    rhs.type_name()
                ))),
            },
            BinOp::Eq => Ok(Value::Bool(lhs.value_eq(&rhs))),
            BinOp::NotEq => Ok(Value::Bool(!lhs.value_eq(&rhs))),
            BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => match (&lhs, &rhs) {
                (Value::Int(a), Value::Int(b)) => Ok(Value::Bool(match op {
                    BinOp::Lt => a < b,
                    BinOp::LtEq => a <= b,
                    BinOp::Gt => a > b,
                    BinOp::GtEq => a >= b,
                    _ => unreachable!("comparison op"),
                })),
                _ => Err(self.fault(format!(
                    "`{}` on {} and {}",
                    op.symbol(),
                    lhs.type_name(),
                    rhs.type_name()
                ))),
            },
            BinOp::And | BinOp::Or => unreachable!("short-circuited above"),
        }
    }

    // ---- Builtins -------------------------------------------------------------

    fn global_builtin(&mut self, name: &str, mut args: Vec<Value>) -> Eval {
        let arity = args.len();
        let wrong_arity = |interp: &Self, expected: usize| {
            Err::<Value, Control>(interp.fault(format!(
                "builtin `{name}` expects {expected} argument(s), got {arity}"
            )))
        };
        match name {
            "queue" => {
                if arity != 0 {
                    return wrong_arity(self, 0);
                }
                Ok(Value::Queue(Rc::new(RefCell::new(QueueData::default()))))
            }
            "list" => {
                if arity != 0 {
                    return wrong_arity(self, 0);
                }
                Ok(Value::List(Rc::new(RefCell::new(Vec::new()))))
            }
            "map" => {
                if arity != 0 {
                    return wrong_arity(self, 0);
                }
                Ok(Value::Map(Rc::new(RefCell::new(HashMap::new()))))
            }
            "now" => {
                if arity != 0 {
                    return wrong_arity(self, 0);
                }
                Ok(Value::Int(self.clock_ms as i64))
            }
            "getConfig" => {
                if arity != 1 {
                    return wrong_arity(self, 1);
                }
                match &args[0] {
                    Value::Str(key) => Ok(match self.index.config_by_name(key) {
                        Some(id) => self.config.get_id(id),
                        None => self.config.get_undeclared(key),
                    }),
                    other => Err(self.fault(format!(
                        "getConfig key must be a string, got {}",
                        other.type_name()
                    ))),
                }
            }
            "setConfig" => {
                if arity != 2 {
                    return wrong_arity(self, 2);
                }
                let value = args.pop().expect("arity checked");
                match &args[0] {
                    Value::Str(key) => {
                        match self.index.config_by_name(key) {
                            Some(id) => self.config.set_id(id, value),
                            None => self.config.set_undeclared(key, value),
                        }
                        Ok(Value::Null)
                    }
                    other => Err(self.fault(format!(
                        "setConfig key must be a string, got {}",
                        other.type_name()
                    ))),
                }
            }
            "str" => {
                if arity != 1 {
                    return wrong_arity(self, 1);
                }
                Ok(Value::str(args[0].render()))
            }
            "min" | "max" => {
                if arity != 2 {
                    return wrong_arity(self, 2);
                }
                match (&args[0], &args[1]) {
                    (Value::Int(a), Value::Int(b)) => Ok(Value::Int(if name == "min" {
                        *a.min(b)
                    } else {
                        *a.max(b)
                    })),
                    _ => Err(self.fault(format!("`{name}` expects int arguments"))),
                }
            }
            "abs" => {
                if arity != 1 {
                    return wrong_arity(self, 1);
                }
                match &args[0] {
                    Value::Int(v) => Ok(Value::Int(v.wrapping_abs())),
                    other => Err(self.fault(format!(
                        "`abs` expects an int, got {}",
                        other.type_name()
                    ))),
                }
            }
            "pow" => {
                if arity != 2 {
                    return wrong_arity(self, 2);
                }
                match (&args[0], &args[1]) {
                    (Value::Int(base), Value::Int(exp)) if *exp >= 0 => {
                        let exp = (*exp).min(63) as u32;
                        Ok(Value::Int(base.saturating_pow(exp)))
                    }
                    _ => Err(self.fault("`pow` expects int base and non-negative int exponent")),
                }
            }
            other => Err(self.fault(format!("unknown global builtin `{other}`"))),
        }
    }

    fn value_builtin(&mut self, recv: &Value, method: &str, args: Vec<Value>) -> Eval {
        match recv {
            Value::Queue(queue) => self.queue_builtin(queue, method, args),
            Value::List(list) => self.list_builtin(list, method, args),
            Value::Map(map) => self.map_builtin(map, method, args),
            Value::Str(s) => self.str_builtin(s, method, args),
            Value::Exception(exc) => self.exception_builtin(exc, method, args),
            other => Err(self.fault(format!(
                "cannot call `{method}` on value of type {}",
                other.type_name()
            ))),
        }
    }

    fn queue_builtin(
        &mut self,
        queue: &Rc<RefCell<QueueData>>,
        method: &str,
        mut args: Vec<Value>,
    ) -> Eval {
        match (method, args.len()) {
            ("put", 1) => {
                let value = args.pop().expect("arity checked");
                let now = self.clock_ms;
                queue.borrow_mut().entries.push_back((value, now));
                Ok(Value::Null)
            }
            ("putDelayed", 2) => {
                let delay = match args.pop().expect("arity checked") {
                    Value::Int(v) if v >= 0 => v as u64,
                    _ => return Err(self.fault("putDelayed delay must be a non-negative int")),
                };
                let value = args.pop().expect("arity checked");
                let ready = self.clock_ms.saturating_add(delay);
                queue.borrow_mut().entries.push_back((value, ready));
                Ok(Value::Null)
            }
            ("take", 0) => {
                let entry = queue.borrow_mut().entries.pop_front();
                match entry {
                    Some((value, ready)) => {
                        if ready > self.clock_ms {
                            // Waiting for a delayed entry counts as a delay
                            // for the missing-delay oracle.
                            self.advance_clock(ready - self.clock_ms, true)?;
                        }
                        Ok(value)
                    }
                    None => Ok(Value::Null),
                }
            }
            ("peek", 0) => Ok(queue
                .borrow()
                .entries
                .front()
                .map(|(v, _)| v.clone())
                .unwrap_or(Value::Null)),
            ("isEmpty", 0) => Ok(Value::Bool(queue.borrow().entries.is_empty())),
            ("size", 0) => Ok(Value::Int(queue.borrow().entries.len() as i64)),
            ("clear", 0) => {
                queue.borrow_mut().entries.clear();
                Ok(Value::Null)
            }
            (other, n) => Err(self.fault(format!("unknown queue method `{other}/{n}`"))),
        }
    }

    fn list_builtin(
        &mut self,
        list: &Rc<RefCell<Vec<Value>>>,
        method: &str,
        mut args: Vec<Value>,
    ) -> Eval {
        match (method, args.len()) {
            ("add", 1) => {
                list.borrow_mut().push(args.pop().expect("arity checked"));
                Ok(Value::Null)
            }
            ("get", 1) => {
                let idx = self.index_arg(&args[0], list.borrow().len())?;
                Ok(list.borrow()[idx].clone())
            }
            ("set", 2) => {
                let value = args.pop().expect("arity checked");
                let idx = self.index_arg(&args[0], list.borrow().len())?;
                list.borrow_mut()[idx] = value;
                Ok(Value::Null)
            }
            ("removeAt", 1) => {
                let idx = self.index_arg(&args[0], list.borrow().len())?;
                Ok(list.borrow_mut().remove(idx))
            }
            ("remove", 1) => {
                let needle = &args[0];
                let pos = list.borrow().iter().position(|v| v.value_eq(needle));
                match pos {
                    Some(idx) => {
                        list.borrow_mut().remove(idx);
                        Ok(Value::Bool(true))
                    }
                    None => Ok(Value::Bool(false)),
                }
            }
            ("contains", 1) => {
                let needle = &args[0];
                Ok(Value::Bool(
                    list.borrow().iter().any(|v| v.value_eq(needle)),
                ))
            }
            ("size", 0) => Ok(Value::Int(list.borrow().len() as i64)),
            ("isEmpty", 0) => Ok(Value::Bool(list.borrow().is_empty())),
            ("clear", 0) => {
                list.borrow_mut().clear();
                Ok(Value::Null)
            }
            (other, n) => Err(self.fault(format!("unknown list method `{other}/{n}`"))),
        }
    }

    fn index_arg(&self, value: &Value, len: usize) -> Result<usize, Control> {
        match value {
            Value::Int(v) if *v >= 0 && (*v as usize) < len => Ok(*v as usize),
            Value::Int(v) => Err(self.fault(format!("index {v} out of bounds (len {len})"))),
            other => Err(self.fault(format!("index must be an int, got {}", other.type_name()))),
        }
    }

    fn map_builtin(
        &mut self,
        map: &Rc<RefCell<HashMap<MapKey, Value>>>,
        method: &str,
        mut args: Vec<Value>,
    ) -> Eval {
        let key_arg = |interp: &Self, value: &Value| {
            MapKey::from_value(value).ok_or_else(|| {
                interp.fault(format!(
                    "map key must be int/string/bool, got {}",
                    value.type_name()
                ))
            })
        };
        match (method, args.len()) {
            ("put", 2) => {
                let value = args.pop().expect("arity checked");
                let key = key_arg(self, &args[0])?;
                Ok(map.borrow_mut().insert(key, value).unwrap_or(Value::Null))
            }
            ("get", 1) => {
                let key = key_arg(self, &args[0])?;
                Ok(map.borrow().get(&key).cloned().unwrap_or(Value::Null))
            }
            ("containsKey", 1) => {
                let key = key_arg(self, &args[0])?;
                Ok(Value::Bool(map.borrow().contains_key(&key)))
            }
            ("remove", 1) => {
                let key = key_arg(self, &args[0])?;
                Ok(map.borrow_mut().remove(&key).unwrap_or(Value::Null))
            }
            ("size", 0) => Ok(Value::Int(map.borrow().len() as i64)),
            ("isEmpty", 0) => Ok(Value::Bool(map.borrow().is_empty())),
            ("clear", 0) => {
                map.borrow_mut().clear();
                Ok(Value::Null)
            }
            ("keys", 0) => {
                // Deterministic order: sort keys.
                let mut keys: Vec<MapKey> = map.borrow().keys().cloned().collect();
                keys.sort();
                let values = keys
                    .into_iter()
                    .map(|k| match k {
                        MapKey::Int(v) => Value::Int(v),
                        MapKey::Str(s) => Value::str(s),
                        MapKey::Bool(b) => Value::Bool(b),
                    })
                    .collect();
                Ok(Value::List(Rc::new(RefCell::new(values))))
            }
            (other, n) => Err(self.fault(format!("unknown map method `{other}/{n}`"))),
        }
    }

    fn str_builtin(&mut self, s: &Rc<String>, method: &str, args: Vec<Value>) -> Eval {
        let str_arg = |interp: &Self, value: &Value| match value {
            Value::Str(s) => Ok(s.as_ref().clone()),
            other => Err(interp.fault(format!(
                "string method argument must be a string, got {}",
                other.type_name()
            ))),
        };
        match (method, args.len()) {
            ("length", 0) => Ok(Value::Int(s.len() as i64)),
            ("isEmpty", 0) => Ok(Value::Bool(s.is_empty())),
            ("contains", 1) => Ok(Value::Bool(s.contains(&str_arg(self, &args[0])?))),
            ("startsWith", 1) => Ok(Value::Bool(s.starts_with(&str_arg(self, &args[0])?))),
            ("endsWith", 1) => Ok(Value::Bool(s.ends_with(&str_arg(self, &args[0])?))),
            ("equals", 1) => Ok(Value::Bool(s.as_ref() == &str_arg(self, &args[0])?)),
            (other, n) => Err(self.fault(format!("unknown string method `{other}/{n}`"))),
        }
    }

    fn exception_builtin(
        &mut self,
        exc: &Rc<ExceptionValue>,
        method: &str,
        args: Vec<Value>,
    ) -> Eval {
        match (method, args.len()) {
            ("getMessage", 0) => Ok(Value::str(exc.message.clone())),
            ("getCause", 0) => Ok(exc
                .cause
                .as_ref()
                .map(|c| Value::Exception(Rc::clone(c)))
                .unwrap_or(Value::Null)),
            ("getType", 0) => Ok(Value::str(exc.ty.clone())),
            (other, n) => Err(self.fault(format!("unknown exception method `{other}/{n}`"))),
        }
    }
}

/// Whether a switch scrutinee matches a case literal, without allocating a
/// value for the literal. Semantically identical to
/// `value.value_eq(&literal_to_value(lit))`.
fn literal_matches(value: &Value, lit: &Literal) -> bool {
    match (value, lit) {
        (Value::Int(a), Literal::Int(b)) => a == b,
        (Value::Str(a), Literal::Str(b)) => a.as_ref() == b,
        (Value::Bool(a), Literal::Bool(b)) => a == b,
        (Value::Null, Literal::Null) => true,
        _ => false,
    }
}

fn literal_to_value(lit: &Literal) -> Value {
    match lit {
        Literal::Int(v) => Value::Int(*v),
        Literal::Str(s) => Value::str(s.clone()),
        Literal::Bool(b) => Value::Bool(*b),
        Literal::Null => Value::Null,
    }
}
