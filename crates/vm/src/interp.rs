//! The Javelin tree-walking interpreter.
//!
//! Design points that matter for WASABI:
//!
//! - **Virtual clock.** `sleep(ms)` and delayed queue takes advance a virtual
//!   clock instead of blocking, so the paper's 15-minute test timeout and the
//!   missing-delay oracle are deterministic and fast.
//! - **Interception.** Right before every user-method call, the configured
//!   [`Interceptor`](crate::interceptor::Interceptor) is consulted with full
//!   static (call site) and dynamic (stack, clock) context — this is the
//!   AspectJ pointcut substitute. An [`InterceptAction::Throw`] makes the
//!   call site raise the given exception as if the callee had failed, and
//!   records an [`Event::Injected`] trace entry.
//! - **Strictness.** Malformed programs (unknown methods, bad operand types,
//!   arity mismatches) surface as [`VmError::Fault`], distinct from
//!   in-language exceptions, so corpus bugs cannot masquerade as retry bugs.
//! - **`break` targets loops**, never `switch` statements (Javelin switches
//!   have no fallthrough, so a `break` inside a state-machine switch exits
//!   the enclosing driver loop — matching how the corpus encodes
//!   state-machine executors).

use crate::config::ConfigStore;
use crate::interceptor::{CallCtx, InterceptAction, Interceptor};
use crate::trace::{CallSite, Event, Trace};
use crate::value::{ExceptionValue, MapKey, Object, QueueData, Value};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::time::Instant;
use wasabi_lang::ast::{BinOp, Block, Expr, LValue, Literal, MethodDecl, Stmt, UnOp};
use wasabi_lang::project::{FileId, MethodId, Project};

/// Interpreter-level failures, distinct from in-language exceptions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// The step budget was exhausted.
    FuelExhausted,
    /// The virtual clock passed the per-run time limit.
    Timeout {
        /// Virtual time at abort.
        virtual_ms: u64,
    },
    /// The real (wall-clock) per-run budget expired. Unlike [`Timeout`],
    /// which is deterministic virtual time, this depends on host speed and
    /// scheduling — callers that need reproducible reports must not leak
    /// the abort point into their output (the campaign engine records a
    /// bare `TimedOut` and discards the partial trace).
    ///
    /// [`Timeout`]: VmError::Timeout
    WallClockExceeded,
    /// The program is malformed (unknown method, type error, ...).
    Fault(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::FuelExhausted => write!(f, "step budget exhausted"),
            VmError::Timeout { virtual_ms } => {
                write!(f, "virtual time limit exceeded at {virtual_ms} ms")
            }
            VmError::WallClockExceeded => write!(f, "wall-clock budget exceeded"),
            VmError::Fault(msg) => write!(f, "vm fault: {msg}"),
        }
    }
}

impl std::error::Error for VmError {}

/// Resource limits for one run.
#[derive(Debug, Clone, Copy)]
pub struct RunLimits {
    /// Maximum interpreter steps (statements + calls).
    pub fuel: u64,
    /// Maximum virtual time, in milliseconds. The paper aborts unit tests at
    /// 15 minutes; that is the default here too.
    pub virtual_time_limit_ms: u64,
    /// Maximum call-stack depth.
    pub max_call_depth: usize,
    /// Optional real-time deadline. The interpreter checks it every
    /// [`WALL_CHECK_INTERVAL`] steps (an `Instant::now()` call per statement
    /// would dominate the run) and aborts with
    /// [`VmError::WallClockExceeded`] once passed. `None` (the default)
    /// disables the check entirely — plain serial runs pay nothing.
    pub wall_deadline: Option<Instant>,
}

/// How many interpreter steps elapse between wall-clock deadline checks.
pub const WALL_CHECK_INTERVAL: u64 = 4096;

impl Default for RunLimits {
    fn default() -> Self {
        RunLimits {
            fuel: 5_000_000,
            virtual_time_limit_ms: 15 * 60 * 1000,
            max_call_depth: 64,
            wall_deadline: None,
        }
    }
}

/// Non-local control flow during execution.
pub(crate) enum Control {
    Return(Value),
    Break,
    Continue,
    Throw(Rc<ExceptionValue>),
    Err(VmError),
}

type Exec = Result<(), Control>;
type Eval = Result<Value, Control>;

/// Result of invoking a method from the outside.
#[derive(Debug)]
pub enum InvokeResult {
    /// Normal completion with the returned value.
    Ok(Value),
    /// An exception escaped the invoked method.
    Exception(Rc<ExceptionValue>),
    /// The interpreter aborted.
    Vm(VmError),
}

struct Frame {
    method: MethodId,
}

/// The interpreter for one run (typically one unit test).
pub struct Interp<'p, 'i> {
    project: &'p Project,
    /// Runtime configuration store (resettable between tests).
    pub config: ConfigStore,
    interceptor: &'i mut dyn Interceptor,
    limits: RunLimits,
    clock_ms: u64,
    fuel_used: u64,
    trace: Trace,
    stack: Vec<Frame>,
    injection_counts: HashMap<(CallSite, String), u32>,
}

impl<'p, 'i> Interp<'p, 'i> {
    /// Creates an interpreter over `project` with the given interceptor.
    pub fn new(
        project: &'p Project,
        interceptor: &'i mut dyn Interceptor,
        limits: RunLimits,
    ) -> Self {
        Interp {
            project,
            config: ConfigStore::from_symbols(&project.symbols),
            interceptor,
            limits,
            clock_ms: 0,
            fuel_used: 0,
            trace: Trace::new(),
            stack: Vec::new(),
            injection_counts: HashMap::new(),
        }
    }

    /// Current virtual time in milliseconds.
    pub fn clock_ms(&self) -> u64 {
        self.clock_ms
    }

    /// Steps consumed so far.
    pub fn steps(&self) -> u64 {
        self.fuel_used
    }

    /// Takes the accumulated trace, leaving an empty one.
    pub fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.trace)
    }

    /// Instantiates `class` with a no-argument constructor and invokes
    /// `method` on it with `args`.
    pub fn invoke(&mut self, class: &str, method: &str, args: Vec<Value>) -> InvokeResult {
        if self.project.symbols.class(class).is_none() {
            return InvokeResult::Vm(VmError::Fault(format!("unknown class `{class}`")));
        }
        // Synthesize an entry frame so stack snapshots are never empty.
        self.stack.push(Frame {
            method: MethodId::new("<entry>", method),
        });
        let result = match self.instantiate(class, Vec::new()) {
            Ok(this) => self.call_resolved(this, class, method, args),
            Err(ctrl) => Err(ctrl),
        };
        self.stack.pop();
        match result {
            Ok(value) => InvokeResult::Ok(value),
            Err(Control::Throw(exc)) => InvokeResult::Exception(exc),
            Err(Control::Err(err)) => InvokeResult::Vm(err),
            Err(Control::Return(value)) => InvokeResult::Ok(value),
            Err(Control::Break) | Err(Control::Continue) => InvokeResult::Vm(VmError::Fault(
                "break/continue escaped method body".to_string(),
            )),
        }
    }

    // ---- Infrastructure ----------------------------------------------------

    fn tick(&mut self) -> Result<(), Control> {
        self.fuel_used += 1;
        if self.fuel_used > self.limits.fuel {
            return Err(Control::Err(VmError::FuelExhausted));
        }
        if self.fuel_used % WALL_CHECK_INTERVAL == 0 {
            if let Some(deadline) = self.limits.wall_deadline {
                if Instant::now() >= deadline {
                    return Err(Control::Err(VmError::WallClockExceeded));
                }
            }
        }
        Ok(())
    }

    fn advance_clock(&mut self, ms: u64, record: bool) -> Result<(), Control> {
        let at_ms = self.clock_ms;
        self.clock_ms = self.clock_ms.saturating_add(ms);
        if record {
            let stack = self.stack_snapshot();
            self.trace.events.push(Event::Slept { ms, at_ms, stack });
        }
        if self.clock_ms > self.limits.virtual_time_limit_ms {
            return Err(Control::Err(VmError::Timeout {
                virtual_ms: self.clock_ms,
            }));
        }
        Ok(())
    }

    fn stack_snapshot(&self) -> Vec<MethodId> {
        self.stack.iter().map(|f| f.method.clone()).collect()
    }

    fn fault(&self, msg: impl Into<String>) -> Control {
        Control::Err(VmError::Fault(msg.into()))
    }

    fn raise(&mut self, ty: &str, message: impl Into<String>) -> Control {
        let exc = Rc::new(ExceptionValue {
            ty: ty.to_string(),
            message: message.into(),
            cause: None,
            raised_at: self.stack_snapshot(),
            injected: false,
        });
        self.trace.events.push(Event::Raised {
            exc_type: ty.to_string(),
            at_ms: self.clock_ms,
        });
        Control::Throw(exc)
    }

    // ---- Objects and calls -------------------------------------------------

    fn instantiate(&mut self, class: &str, args: Vec<Value>) -> Eval {
        if self.project.class_decl(class).is_none() {
            return Err(self.fault(format!("cannot instantiate unknown class `{class}`")));
        }
        // Collect the field declarations across the superclass chain,
        // base-class fields first.
        let mut chain = Vec::new();
        let mut current = Some(class.to_string());
        while let Some(name) = current {
            let decl = self
                .project
                .class_decl(&name)
                .ok_or_else(|| self.fault(format!("unknown superclass `{name}`")))?;
            chain.push(decl);
            current = decl.parent.clone();
        }
        chain.reverse();

        let object = Rc::new(RefCell::new(Object {
            class: class.to_string(),
            fields: HashMap::new(),
        }));
        for decl in &chain {
            for field in &decl.fields {
                object
                    .borrow_mut()
                    .fields
                    .insert(field.name.clone(), Value::Null);
            }
        }
        let this = Value::Object(Rc::clone(&object));
        // Evaluate initializers in declaration order with `this` bound to the
        // object under construction.
        let mut env = Env::new();
        for decl in &chain {
            for field in &decl.fields {
                if let Some(init) = &field.init {
                    let value = self.eval(&mut env, &this, decl_file(self.project, &decl.name), init)?;
                    object.borrow_mut().fields.insert(field.name.clone(), value);
                }
            }
        }
        // Run the constructor, if declared.
        if self.project.resolve_method(class, "init").is_some() {
            self.call_resolved(this.clone(), class, "init", args)?;
        } else if !args.is_empty() {
            return Err(self.fault(format!(
                "class `{class}` has no `init` constructor but was given {} argument(s)",
                args.len()
            )));
        }
        Ok(this)
    }

    /// Calls `method` on `this` (whose class is `class`), running the body.
    fn call_resolved(&mut self, this: Value, class: &str, method: &str, args: Vec<Value>) -> Eval {
        let (owner, decl) = match self.project.resolve_method(class, method) {
            Some(found) => found,
            None => {
                return Err(self.fault(format!("unknown method `{class}.{method}`")));
            }
        };
        if decl.params.len() != args.len() {
            return Err(self.fault(format!(
                "arity mismatch calling `{class}.{method}`: expected {}, got {}",
                decl.params.len(),
                args.len()
            )));
        }
        if self.stack.len() >= self.limits.max_call_depth {
            return Err(self.fault(format!(
                "call depth limit ({}) exceeded calling `{class}.{method}`",
                self.limits.max_call_depth
            )));
        }
        let owner = owner.to_string();
        let file = self
            .project
            .symbols
            .class(&owner)
            .map(|info| info.file)
            .unwrap_or(FileId(0));
        let decl: &MethodDecl = decl;
        let mut env = Env::new();
        for (param, arg) in decl.params.iter().zip(args) {
            env.set(param.clone(), arg);
        }
        self.stack.push(Frame {
            method: MethodId::new(class, method),
        });
        let result = self.exec_block(&mut env, &this, file, &decl.body);
        self.stack.pop();
        match result {
            Ok(()) => Ok(Value::Null),
            Err(Control::Return(value)) => Ok(value),
            Err(other) => Err(other),
        }
    }

    /// Dispatches a call expression: interceptor, builtins, user methods.
    fn call_expr(
        &mut self,
        env: &mut Env,
        this: &Value,
        file: FileId,
        id: wasabi_lang::ast::CallId,
        recv: Option<&Expr>,
        method: &str,
        arg_exprs: &[Expr],
    ) -> Eval {
        self.tick()?;
        // Global builtins are reserved names and take priority for
        // receiver-less calls.
        if recv.is_none() && is_global_builtin(method) {
            let mut args = Vec::with_capacity(arg_exprs.len());
            for arg in arg_exprs {
                args.push(self.eval(env, this, file, arg)?);
            }
            return self.global_builtin(method, args);
        }
        let recv_value = match recv {
            Some(expr) => self.eval(env, this, file, expr)?,
            None => this.clone(),
        };
        // Builtin methods on non-object receivers.
        match &recv_value {
            Value::Null => {
                return Err(self.raise(
                    "NullPointerException",
                    format!("call to `{method}` on null"),
                ));
            }
            Value::Object(_) => {}
            _ => {
                let mut args = Vec::with_capacity(arg_exprs.len());
                for arg in arg_exprs {
                    args.push(self.eval(env, this, file, arg)?);
                }
                return self.value_builtin(&recv_value, method, args);
            }
        }
        let class = match &recv_value {
            Value::Object(obj) => obj.borrow().class.clone(),
            _ => unreachable!("receiver checked above"),
        };
        let mut args = Vec::with_capacity(arg_exprs.len());
        for arg in arg_exprs {
            args.push(self.eval(env, this, file, arg)?);
        }
        // Consult the interceptor before entering the callee.
        let site = CallSite { file, call: id };
        let caller = self
            .stack
            .last()
            .map(|f| f.method.clone())
            .unwrap_or_else(|| MethodId::new("<entry>", "<entry>"));
        let callee = MethodId::new(&class, method);
        let stack = self.stack_snapshot();
        let ctx = CallCtx {
            site,
            caller: caller.clone(),
            callee: callee.clone(),
            stack: &stack,
            now_ms: self.clock_ms,
        };
        match self.interceptor.before_call(&ctx) {
            InterceptAction::Proceed => self.call_resolved(recv_value, &class, method, args),
            InterceptAction::Throw { exc_type, message } => {
                let count = self
                    .injection_counts
                    .entry((site, exc_type.clone()))
                    .or_insert(0);
                *count += 1;
                let count = *count;
                self.trace.events.push(Event::Injected {
                    site,
                    caller,
                    callee: callee.clone(),
                    exc_type: exc_type.clone(),
                    count,
                    at_ms: self.clock_ms,
                });
                let mut raised_at = stack;
                raised_at.push(callee);
                Err(Control::Throw(Rc::new(ExceptionValue {
                    ty: exc_type,
                    message,
                    cause: None,
                    raised_at,
                    injected: true,
                })))
            }
        }
    }

    // ---- Statements ---------------------------------------------------------

    fn exec_block(&mut self, env: &mut Env, this: &Value, file: FileId, block: &Block) -> Exec {
        for stmt in &block.stmts {
            self.exec_stmt(env, this, file, stmt)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, env: &mut Env, this: &Value, file: FileId, stmt: &Stmt) -> Exec {
        self.tick()?;
        match stmt {
            Stmt::Var { name, init, .. } => {
                let value = self.eval(env, this, file, init)?;
                env.set(name.clone(), value);
                Ok(())
            }
            Stmt::Assign { target, value, .. } => {
                let value = self.eval(env, this, file, value)?;
                self.assign(env, this, file, target, value)
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                if self.eval_bool(env, this, file, cond)? {
                    self.exec_block(env, this, file, then_blk)
                } else if let Some(else_blk) = else_blk {
                    self.exec_block(env, this, file, else_blk)
                } else {
                    Ok(())
                }
            }
            Stmt::While { cond, body, .. } => {
                while self.eval_bool(env, this, file, cond)? {
                    match self.exec_block(env, this, file, body) {
                        Ok(()) => {}
                        Err(Control::Break) => break,
                        Err(Control::Continue) => continue,
                        Err(other) => return Err(other),
                    }
                }
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
                ..
            } => {
                if let Some(init) = init {
                    self.exec_stmt(env, this, file, init)?;
                }
                loop {
                    if let Some(cond) = cond {
                        if !self.eval_bool(env, this, file, cond)? {
                            break;
                        }
                    }
                    match self.exec_block(env, this, file, body) {
                        Ok(()) => {}
                        Err(Control::Break) => break,
                        Err(Control::Continue) => {}
                        Err(other) => return Err(other),
                    }
                    if let Some(update) = update {
                        self.exec_stmt(env, this, file, update)?;
                    }
                }
                Ok(())
            }
            Stmt::Switch {
                scrutinee,
                cases,
                default,
                ..
            } => {
                let value = self.eval(env, this, file, scrutinee)?;
                for (lit, body) in cases {
                    if value.value_eq(&literal_to_value(lit)) {
                        return self.exec_block(env, this, file, body);
                    }
                }
                if let Some(default) = default {
                    return self.exec_block(env, this, file, default);
                }
                Ok(())
            }
            Stmt::Try {
                body,
                catches,
                finally,
                ..
            } => {
                let mut result = self.exec_block(env, this, file, body);
                if let Err(Control::Throw(exc)) = &result {
                    let exc = Rc::clone(exc);
                    for catch in catches {
                        if self
                            .project
                            .symbols
                            .is_exception_subtype(&exc.ty, &catch.exc_type)
                        {
                            env.set(catch.binding.clone(), Value::Exception(Rc::clone(&exc)));
                            result = self.exec_block(env, this, file, &catch.body);
                            break;
                        }
                    }
                }
                if let Some(finally) = finally {
                    match self.exec_block(env, this, file, finally) {
                        // A completed finally preserves the pending control.
                        Ok(()) => {}
                        // Abrupt finally overrides the pending control (Java
                        // semantics).
                        Err(ctrl) => return Err(ctrl),
                    }
                }
                result
            }
            Stmt::Throw { expr, .. } => {
                let value = self.eval(env, this, file, expr)?;
                match value {
                    Value::Exception(exc) => {
                        self.trace.events.push(Event::Raised {
                            exc_type: exc.ty.clone(),
                            at_ms: self.clock_ms,
                        });
                        Err(Control::Throw(exc))
                    }
                    other => Err(self.fault(format!(
                        "throw of non-exception value of type {}",
                        other.type_name()
                    ))),
                }
            }
            Stmt::Return { expr, .. } => {
                let value = match expr {
                    Some(expr) => self.eval(env, this, file, expr)?,
                    None => Value::Null,
                };
                Err(Control::Return(value))
            }
            Stmt::Break { .. } => Err(Control::Break),
            Stmt::Continue { .. } => Err(Control::Continue),
            Stmt::Sleep { ms, .. } => {
                let ms = self.eval_int(env, this, file, ms)?;
                if ms < 0 {
                    return Err(self.fault("negative sleep duration"));
                }
                self.advance_clock(ms as u64, true)
            }
            Stmt::Log { expr, .. } => {
                let value = self.eval(env, this, file, expr)?;
                self.trace.events.push(Event::Logged {
                    message: value.render(),
                    at_ms: self.clock_ms,
                });
                Ok(())
            }
            Stmt::Assert { cond, msg, .. } => {
                if self.eval_bool(env, this, file, cond)? {
                    Ok(())
                } else {
                    let message = match msg {
                        Some(msg) => self.eval(env, this, file, msg)?.render(),
                        None => "assertion failed".to_string(),
                    };
                    Err(self.raise("AssertionError", message))
                }
            }
            Stmt::Expr { expr, .. } => {
                self.eval(env, this, file, expr)?;
                Ok(())
            }
        }
    }

    fn assign(
        &mut self,
        env: &mut Env,
        this: &Value,
        file: FileId,
        target: &LValue,
        value: Value,
    ) -> Exec {
        match target {
            LValue::Var(name, _) => {
                if env.has(name) {
                    env.set(name.clone(), value);
                    return Ok(());
                }
                // Fall back to an implicit `this` field, like Java.
                if let Value::Object(obj) = this {
                    if obj.borrow().fields.contains_key(name) {
                        obj.borrow_mut().fields.insert(name.clone(), value);
                        return Ok(());
                    }
                }
                // First write introduces a local (function-scoped).
                env.set(name.clone(), value);
                Ok(())
            }
            LValue::Field { recv, name, .. } => {
                let recv = self.eval(env, this, file, recv)?;
                match recv {
                    Value::Object(obj) => {
                        if !obj.borrow().fields.contains_key(name) {
                            return Err(self.fault(format!(
                                "no field `{name}` on class `{}`",
                                obj.borrow().class
                            )));
                        }
                        obj.borrow_mut().fields.insert(name.clone(), value);
                        Ok(())
                    }
                    Value::Null => Err(self.raise(
                        "NullPointerException",
                        format!("field write `{name}` on null"),
                    )),
                    other => Err(self.fault(format!(
                        "field write on non-object value of type {}",
                        other.type_name()
                    ))),
                }
            }
        }
    }

    // ---- Expressions ---------------------------------------------------------

    fn eval_bool(&mut self, env: &mut Env, this: &Value, file: FileId, expr: &Expr) -> Result<bool, Control> {
        match self.eval(env, this, file, expr)? {
            Value::Bool(b) => Ok(b),
            other => Err(self.fault(format!(
                "condition must be a bool, got {}",
                other.type_name()
            ))),
        }
    }

    fn eval_int(&mut self, env: &mut Env, this: &Value, file: FileId, expr: &Expr) -> Result<i64, Control> {
        match self.eval(env, this, file, expr)? {
            Value::Int(v) => Ok(v),
            other => Err(self.fault(format!(
                "expected an int, got {}",
                other.type_name()
            ))),
        }
    }

    fn eval(&mut self, env: &mut Env, this: &Value, file: FileId, expr: &Expr) -> Eval {
        match expr {
            Expr::Literal(lit, _) => Ok(literal_to_value(lit)),
            Expr::Ident(name, _) => {
                if let Some(value) = env.get(name) {
                    return Ok(value.clone());
                }
                if let Value::Object(obj) = this {
                    if let Some(value) = obj.borrow().fields.get(name) {
                        return Ok(value.clone());
                    }
                }
                Err(self.fault(format!("unknown variable `{name}`")))
            }
            Expr::This(_) => Ok(this.clone()),
            Expr::Field { recv, name, .. } => {
                let recv = self.eval(env, this, file, recv)?;
                match recv {
                    Value::Object(obj) => {
                        let borrowed = obj.borrow();
                        borrowed.fields.get(name).cloned().ok_or_else(|| {
                            self.fault(format!(
                                "no field `{name}` on class `{}`",
                                borrowed.class
                            ))
                        })
                    }
                    Value::Null => Err(self.raise(
                        "NullPointerException",
                        format!("field read `{name}` on null"),
                    )),
                    other => Err(self.fault(format!(
                        "field read on non-object value of type {}",
                        other.type_name()
                    ))),
                }
            }
            Expr::Call {
                id,
                recv,
                method,
                args,
                ..
            } => self.call_expr(env, this, file, *id, recv.as_deref(), method, args),
            Expr::New { class, args, .. } => {
                self.tick()?;
                let mut arg_values = Vec::with_capacity(args.len());
                for arg in args {
                    arg_values.push(self.eval(env, this, file, arg)?);
                }
                if self.project.symbols.exception(class).is_some() {
                    return self.new_exception(class, arg_values);
                }
                self.instantiate(class, arg_values)
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                // Short-circuit logical operators.
                match op {
                    BinOp::And => {
                        return Ok(Value::Bool(
                            self.eval_bool(env, this, file, lhs)?
                                && self.eval_bool(env, this, file, rhs)?,
                        ));
                    }
                    BinOp::Or => {
                        return Ok(Value::Bool(
                            self.eval_bool(env, this, file, lhs)?
                                || self.eval_bool(env, this, file, rhs)?,
                        ));
                    }
                    _ => {}
                }
                let lhs = self.eval(env, this, file, lhs)?;
                let rhs = self.eval(env, this, file, rhs)?;
                self.binary(*op, lhs, rhs)
            }
            Expr::Unary { op, expr, .. } => {
                let value = self.eval(env, this, file, expr)?;
                match (op, value) {
                    (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                    (UnOp::Neg, Value::Int(v)) => Ok(Value::Int(v.wrapping_neg())),
                    (op, other) => Err(self.fault(format!(
                        "unary `{}` on {}",
                        op.symbol(),
                        other.type_name()
                    ))),
                }
            }
            Expr::InstanceOf { expr, ty, .. } => {
                let value = self.eval(env, this, file, expr)?;
                let result = match value {
                    Value::Exception(exc) => {
                        self.project.symbols.is_exception_subtype(&exc.ty, ty)
                    }
                    Value::Object(obj) => {
                        let class = obj.borrow().class.clone();
                        self.project.symbols.is_class_subtype(&class, ty)
                    }
                    _ => false,
                };
                Ok(Value::Bool(result))
            }
        }
    }

    fn new_exception(&mut self, ty: &str, args: Vec<Value>) -> Eval {
        let mut iter = args.into_iter();
        let message = match iter.next() {
            None => String::new(),
            Some(Value::Str(s)) => s.as_ref().clone(),
            Some(other) => other.render(),
        };
        let cause = match iter.next() {
            None => None,
            Some(Value::Exception(exc)) => Some(exc),
            Some(Value::Null) => None,
            Some(other) => {
                return Err(self.fault(format!(
                    "exception cause must be an exception, got {}",
                    other.type_name()
                )));
            }
        };
        if iter.next().is_some() {
            return Err(self.fault(format!(
                "exception constructor `{ty}` takes at most (message, cause)"
            )));
        }
        Ok(Value::Exception(Rc::new(ExceptionValue {
            ty: ty.to_string(),
            message,
            cause,
            raised_at: self.stack_snapshot(),
            injected: false,
        })))
    }

    fn binary(&mut self, op: BinOp, lhs: Value, rhs: Value) -> Eval {
        match op {
            BinOp::Add => match (&lhs, &rhs) {
                (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_add(*b))),
                (Value::Str(_), _) | (_, Value::Str(_)) => {
                    Ok(Value::str(format!("{}{}", lhs.render(), rhs.render())))
                }
                _ => Err(self.fault(format!(
                    "`+` on {} and {}",
                    lhs.type_name(),
                    rhs.type_name()
                ))),
            },
            BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => match (&lhs, &rhs) {
                (Value::Int(a), Value::Int(b)) => match op {
                    BinOp::Sub => Ok(Value::Int(a.wrapping_sub(*b))),
                    BinOp::Mul => Ok(Value::Int(a.wrapping_mul(*b))),
                    BinOp::Div => {
                        if *b == 0 {
                            Err(self.raise("ArithmeticException", "division by zero"))
                        } else {
                            Ok(Value::Int(a.wrapping_div(*b)))
                        }
                    }
                    BinOp::Rem => {
                        if *b == 0 {
                            Err(self.raise("ArithmeticException", "remainder by zero"))
                        } else {
                            Ok(Value::Int(a.wrapping_rem(*b)))
                        }
                    }
                    _ => unreachable!("arithmetic op"),
                },
                _ => Err(self.fault(format!(
                    "`{}` on {} and {}",
                    op.symbol(),
                    lhs.type_name(),
                    rhs.type_name()
                ))),
            },
            BinOp::Eq => Ok(Value::Bool(lhs.value_eq(&rhs))),
            BinOp::NotEq => Ok(Value::Bool(!lhs.value_eq(&rhs))),
            BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => match (&lhs, &rhs) {
                (Value::Int(a), Value::Int(b)) => Ok(Value::Bool(match op {
                    BinOp::Lt => a < b,
                    BinOp::LtEq => a <= b,
                    BinOp::Gt => a > b,
                    BinOp::GtEq => a >= b,
                    _ => unreachable!("comparison op"),
                })),
                _ => Err(self.fault(format!(
                    "`{}` on {} and {}",
                    op.symbol(),
                    lhs.type_name(),
                    rhs.type_name()
                ))),
            },
            BinOp::And | BinOp::Or => unreachable!("short-circuited above"),
        }
    }

    // ---- Builtins -------------------------------------------------------------

    fn global_builtin(&mut self, name: &str, mut args: Vec<Value>) -> Eval {
        let arity = args.len();
        let wrong_arity = |interp: &Self, expected: usize| {
            Err::<Value, Control>(interp.fault(format!(
                "builtin `{name}` expects {expected} argument(s), got {arity}"
            )))
        };
        match name {
            "queue" => {
                if arity != 0 {
                    return wrong_arity(self, 0);
                }
                Ok(Value::Queue(Rc::new(RefCell::new(QueueData::default()))))
            }
            "list" => {
                if arity != 0 {
                    return wrong_arity(self, 0);
                }
                Ok(Value::List(Rc::new(RefCell::new(Vec::new()))))
            }
            "map" => {
                if arity != 0 {
                    return wrong_arity(self, 0);
                }
                Ok(Value::Map(Rc::new(RefCell::new(HashMap::new()))))
            }
            "now" => {
                if arity != 0 {
                    return wrong_arity(self, 0);
                }
                Ok(Value::Int(self.clock_ms as i64))
            }
            "getConfig" => {
                if arity != 1 {
                    return wrong_arity(self, 1);
                }
                match &args[0] {
                    Value::Str(key) => Ok(self.config.get(key)),
                    other => Err(self.fault(format!(
                        "getConfig key must be a string, got {}",
                        other.type_name()
                    ))),
                }
            }
            "setConfig" => {
                if arity != 2 {
                    return wrong_arity(self, 2);
                }
                let value = args.pop().expect("arity checked");
                match &args[0] {
                    Value::Str(key) => {
                        self.config.set(key, value);
                        Ok(Value::Null)
                    }
                    other => Err(self.fault(format!(
                        "setConfig key must be a string, got {}",
                        other.type_name()
                    ))),
                }
            }
            "str" => {
                if arity != 1 {
                    return wrong_arity(self, 1);
                }
                Ok(Value::str(args[0].render()))
            }
            "min" | "max" => {
                if arity != 2 {
                    return wrong_arity(self, 2);
                }
                match (&args[0], &args[1]) {
                    (Value::Int(a), Value::Int(b)) => Ok(Value::Int(if name == "min" {
                        *a.min(b)
                    } else {
                        *a.max(b)
                    })),
                    _ => Err(self.fault(format!("`{name}` expects int arguments"))),
                }
            }
            "abs" => {
                if arity != 1 {
                    return wrong_arity(self, 1);
                }
                match &args[0] {
                    Value::Int(v) => Ok(Value::Int(v.wrapping_abs())),
                    other => Err(self.fault(format!(
                        "`abs` expects an int, got {}",
                        other.type_name()
                    ))),
                }
            }
            "pow" => {
                if arity != 2 {
                    return wrong_arity(self, 2);
                }
                match (&args[0], &args[1]) {
                    (Value::Int(base), Value::Int(exp)) if *exp >= 0 => {
                        let exp = (*exp).min(63) as u32;
                        Ok(Value::Int(base.saturating_pow(exp)))
                    }
                    _ => Err(self.fault("`pow` expects int base and non-negative int exponent")),
                }
            }
            other => Err(self.fault(format!("unknown global builtin `{other}`"))),
        }
    }

    fn value_builtin(&mut self, recv: &Value, method: &str, args: Vec<Value>) -> Eval {
        match recv {
            Value::Queue(queue) => self.queue_builtin(queue, method, args),
            Value::List(list) => self.list_builtin(list, method, args),
            Value::Map(map) => self.map_builtin(map, method, args),
            Value::Str(s) => self.str_builtin(s, method, args),
            Value::Exception(exc) => self.exception_builtin(exc, method, args),
            other => Err(self.fault(format!(
                "cannot call `{method}` on value of type {}",
                other.type_name()
            ))),
        }
    }

    fn queue_builtin(&mut self, queue: &Rc<RefCell<QueueData>>, method: &str, mut args: Vec<Value>) -> Eval {
        match (method, args.len()) {
            ("put", 1) => {
                let value = args.pop().expect("arity checked");
                let now = self.clock_ms;
                queue.borrow_mut().entries.push_back((value, now));
                Ok(Value::Null)
            }
            ("putDelayed", 2) => {
                let delay = match args.pop().expect("arity checked") {
                    Value::Int(v) if v >= 0 => v as u64,
                    _ => return Err(self.fault("putDelayed delay must be a non-negative int")),
                };
                let value = args.pop().expect("arity checked");
                let ready = self.clock_ms.saturating_add(delay);
                queue.borrow_mut().entries.push_back((value, ready));
                Ok(Value::Null)
            }
            ("take", 0) => {
                let entry = queue.borrow_mut().entries.pop_front();
                match entry {
                    Some((value, ready)) => {
                        if ready > self.clock_ms {
                            // Waiting for a delayed entry counts as a delay
                            // for the missing-delay oracle.
                            self.advance_clock(ready - self.clock_ms, true)?;
                        }
                        Ok(value)
                    }
                    None => Ok(Value::Null),
                }
            }
            ("peek", 0) => Ok(queue
                .borrow()
                .entries
                .front()
                .map(|(v, _)| v.clone())
                .unwrap_or(Value::Null)),
            ("isEmpty", 0) => Ok(Value::Bool(queue.borrow().entries.is_empty())),
            ("size", 0) => Ok(Value::Int(queue.borrow().entries.len() as i64)),
            ("clear", 0) => {
                queue.borrow_mut().entries.clear();
                Ok(Value::Null)
            }
            (other, n) => Err(self.fault(format!("unknown queue method `{other}/{n}`"))),
        }
    }

    fn list_builtin(&mut self, list: &Rc<RefCell<Vec<Value>>>, method: &str, mut args: Vec<Value>) -> Eval {
        match (method, args.len()) {
            ("add", 1) => {
                list.borrow_mut().push(args.pop().expect("arity checked"));
                Ok(Value::Null)
            }
            ("get", 1) => {
                let idx = self.index_arg(&args[0], list.borrow().len())?;
                Ok(list.borrow()[idx].clone())
            }
            ("set", 2) => {
                let value = args.pop().expect("arity checked");
                let idx = self.index_arg(&args[0], list.borrow().len())?;
                list.borrow_mut()[idx] = value;
                Ok(Value::Null)
            }
            ("removeAt", 1) => {
                let idx = self.index_arg(&args[0], list.borrow().len())?;
                Ok(list.borrow_mut().remove(idx))
            }
            ("remove", 1) => {
                let needle = &args[0];
                let pos = list.borrow().iter().position(|v| v.value_eq(needle));
                match pos {
                    Some(idx) => {
                        list.borrow_mut().remove(idx);
                        Ok(Value::Bool(true))
                    }
                    None => Ok(Value::Bool(false)),
                }
            }
            ("contains", 1) => {
                let needle = &args[0];
                Ok(Value::Bool(
                    list.borrow().iter().any(|v| v.value_eq(needle)),
                ))
            }
            ("size", 0) => Ok(Value::Int(list.borrow().len() as i64)),
            ("isEmpty", 0) => Ok(Value::Bool(list.borrow().is_empty())),
            ("clear", 0) => {
                list.borrow_mut().clear();
                Ok(Value::Null)
            }
            (other, n) => Err(self.fault(format!("unknown list method `{other}/{n}`"))),
        }
    }

    fn index_arg(&self, value: &Value, len: usize) -> Result<usize, Control> {
        match value {
            Value::Int(v) if *v >= 0 && (*v as usize) < len => Ok(*v as usize),
            Value::Int(v) => Err(self.fault(format!("index {v} out of bounds (len {len})"))),
            other => Err(self.fault(format!("index must be an int, got {}", other.type_name()))),
        }
    }

    fn map_builtin(
        &mut self,
        map: &Rc<RefCell<HashMap<MapKey, Value>>>,
        method: &str,
        mut args: Vec<Value>,
    ) -> Eval {
        let key_arg = |interp: &Self, value: &Value| {
            MapKey::from_value(value).ok_or_else(|| {
                interp.fault(format!(
                    "map key must be int/string/bool, got {}",
                    value.type_name()
                ))
            })
        };
        match (method, args.len()) {
            ("put", 2) => {
                let value = args.pop().expect("arity checked");
                let key = key_arg(self, &args[0])?;
                Ok(map.borrow_mut().insert(key, value).unwrap_or(Value::Null))
            }
            ("get", 1) => {
                let key = key_arg(self, &args[0])?;
                Ok(map.borrow().get(&key).cloned().unwrap_or(Value::Null))
            }
            ("containsKey", 1) => {
                let key = key_arg(self, &args[0])?;
                Ok(Value::Bool(map.borrow().contains_key(&key)))
            }
            ("remove", 1) => {
                let key = key_arg(self, &args[0])?;
                Ok(map.borrow_mut().remove(&key).unwrap_or(Value::Null))
            }
            ("size", 0) => Ok(Value::Int(map.borrow().len() as i64)),
            ("isEmpty", 0) => Ok(Value::Bool(map.borrow().is_empty())),
            ("clear", 0) => {
                map.borrow_mut().clear();
                Ok(Value::Null)
            }
            ("keys", 0) => {
                // Deterministic order: sort keys.
                let mut keys: Vec<MapKey> = map.borrow().keys().cloned().collect();
                keys.sort();
                let values = keys
                    .into_iter()
                    .map(|k| match k {
                        MapKey::Int(v) => Value::Int(v),
                        MapKey::Str(s) => Value::str(s),
                        MapKey::Bool(b) => Value::Bool(b),
                    })
                    .collect();
                Ok(Value::List(Rc::new(RefCell::new(values))))
            }
            (other, n) => Err(self.fault(format!("unknown map method `{other}/{n}`"))),
        }
    }

    fn str_builtin(&mut self, s: &Rc<String>, method: &str, args: Vec<Value>) -> Eval {
        let str_arg = |interp: &Self, value: &Value| match value {
            Value::Str(s) => Ok(s.as_ref().clone()),
            other => Err(interp.fault(format!(
                "string method argument must be a string, got {}",
                other.type_name()
            ))),
        };
        match (method, args.len()) {
            ("length", 0) => Ok(Value::Int(s.len() as i64)),
            ("isEmpty", 0) => Ok(Value::Bool(s.is_empty())),
            ("contains", 1) => Ok(Value::Bool(s.contains(&str_arg(self, &args[0])?))),
            ("startsWith", 1) => Ok(Value::Bool(s.starts_with(&str_arg(self, &args[0])?))),
            ("endsWith", 1) => Ok(Value::Bool(s.ends_with(&str_arg(self, &args[0])?))),
            ("equals", 1) => Ok(Value::Bool(s.as_ref() == &str_arg(self, &args[0])?)),
            (other, n) => Err(self.fault(format!("unknown string method `{other}/{n}`"))),
        }
    }

    fn exception_builtin(&mut self, exc: &Rc<ExceptionValue>, method: &str, args: Vec<Value>) -> Eval {
        match (method, args.len()) {
            ("getMessage", 0) => Ok(Value::str(exc.message.clone())),
            ("getCause", 0) => Ok(exc
                .cause
                .as_ref()
                .map(|c| Value::Exception(Rc::clone(c)))
                .unwrap_or(Value::Null)),
            ("getType", 0) => Ok(Value::str(exc.ty.clone())),
            (other, n) => Err(self.fault(format!("unknown exception method `{other}/{n}`"))),
        }
    }
}

/// Function-scoped local environment.
struct Env {
    vars: HashMap<String, Value>,
}

impl Env {
    fn new() -> Self {
        Env {
            vars: HashMap::new(),
        }
    }

    fn get(&self, name: &str) -> Option<&Value> {
        self.vars.get(name)
    }

    fn has(&self, name: &str) -> bool {
        self.vars.contains_key(name)
    }

    fn set(&mut self, name: String, value: Value) {
        self.vars.insert(name, value);
    }
}

/// Names reserved for global builtins.
pub fn is_global_builtin(name: &str) -> bool {
    matches!(
        name,
        "queue" | "list" | "map" | "now" | "getConfig" | "setConfig" | "str" | "min" | "max"
            | "abs" | "pow"
    )
}

fn literal_to_value(lit: &Literal) -> Value {
    match lit {
        Literal::Int(v) => Value::Int(*v),
        Literal::Str(s) => Value::str(s.clone()),
        Literal::Bool(b) => Value::Bool(*b),
        Literal::Null => Value::Null,
    }
}

fn decl_file(project: &Project, class: &str) -> FileId {
    project
        .symbols
        .class(class)
        .map(|info| info.file)
        .unwrap_or(FileId(0))
}
