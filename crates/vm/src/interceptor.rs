//! Call interception: the AspectJ-pointcut substitute.
//!
//! The interpreter consults a single [`Interceptor`] right before every
//! user-method call, passing full static and dynamic context. Fault-injection
//! handlers (crate `wasabi-inject`) and coverage profilers (crate
//! `wasabi-planner`) are implemented against this trait.
//!
//! Since the interning layer, the context carries [`MethodSym`]s (interned
//! `u32` pairs) plus a [`NameTable`] to resolve them. Site matching stays a
//! plain `CallSite` comparison; handlers that need text (messages, name
//! filters) resolve on demand.

use crate::trace::CallSite;
use wasabi_lang::intern::{MethodSym, NameTable};

/// Context available to an interceptor at a call.
#[derive(Debug)]
pub struct CallCtx<'a> {
    /// The static call site.
    pub site: CallSite,
    /// The calling method (candidate coordinator).
    pub caller: MethodSym,
    /// The called method, after receiver resolution (candidate retried
    /// method).
    pub callee: MethodSym,
    /// Current call stack, outermost first (the caller is last).
    pub stack: &'a [MethodSym],
    /// Current virtual time in milliseconds.
    pub now_ms: u64,
    /// Resolves the interned names above back to text.
    pub names: NameTable<'a>,
}

/// What an interceptor wants the interpreter to do at a call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterceptAction {
    /// Execute the call normally.
    Proceed,
    /// Skip the call and throw the given exception at the call site, as if
    /// the callee had failed. The interpreter records an
    /// [`crate::trace::Event::Injected`] event.
    Throw {
        /// Exception type to throw (must be declared in the project).
        exc_type: String,
        /// Exception message.
        message: String,
    },
}

/// Hook invoked before every user-method call.
pub trait Interceptor {
    /// Decides what happens at this call.
    fn before_call(&mut self, ctx: &CallCtx<'_>) -> InterceptAction;
}

/// An interceptor that always proceeds (the no-op default).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopInterceptor;

impl Interceptor for NoopInterceptor {
    fn before_call(&mut self, _ctx: &CallCtx<'_>) -> InterceptAction {
        InterceptAction::Proceed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi_lang::ast::CallId;
    use wasabi_lang::intern::Interner;
    use wasabi_lang::project::{FileId, MethodId};

    #[test]
    fn noop_always_proceeds_and_names_resolve() {
        let mut interner = Interner::new();
        let t = MethodSym {
            class: interner.intern("T"),
            name: interner.intern("t"),
        };
        let m = MethodSym {
            class: interner.intern("C"),
            name: interner.intern("m"),
        };
        let mut noop = NoopInterceptor;
        let stack = [t];
        let ctx = CallCtx {
            site: CallSite {
                file: FileId(0),
                call: CallId(0),
            },
            caller: t,
            callee: m,
            stack: &stack,
            now_ms: 0,
            names: NameTable::new(&interner, &[]),
        };
        assert_eq!(noop.before_call(&ctx), InterceptAction::Proceed);
        assert_eq!(ctx.names.method_id(ctx.callee), MethodId::new("C", "m"));
        assert_eq!(ctx.names.method_display(ctx.caller), "T.t");
    }
}
