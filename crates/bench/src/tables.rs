//! Minimal fixed-width table rendering for the `repro` harness.

/// Renders a table with a header row and `rows`, padding each column to its
/// widest cell.
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let columns = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(columns) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:>width$}", width = widths[i]));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    let total: usize = widths.iter().sum::<usize>() + 2 * (columns - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
    }
    out
}

/// Formats a reported-with-FP-subscript cell like the paper: `13_2`.
pub fn subscript(reported: usize, fp: usize) -> String {
    if reported == 0 {
        "-".to_string()
    } else {
        format!("{reported}_{fp}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let table = render(
            &["App", "Bugs"],
            &[
                vec!["HA".into(), "5".into()],
                vec!["HBase".into(), "23".into()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("App"));
        assert!(lines[3].contains("HBase"));
        // All rows are the same width.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn subscript_cells() {
        assert_eq!(subscript(13, 2), "13_2");
        assert_eq!(subscript(0, 0), "-");
    }
}
