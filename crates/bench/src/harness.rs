//! A small statistical benchmark harness with no external dependencies.
//!
//! The component and pipeline benches (`cargo bench --features
//! bench-criterion`) are built on this instead of an external framework so
//! the workspace resolves fully offline. It is deliberately minimal:
//! warm-up, a fixed sample budget, and min/median/mean over wall-clock
//! samples — enough to spot order-of-magnitude regressions, not a
//! substitute for a rigorous harness.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Sampling policy for one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct BenchOptions {
    /// Un-timed warm-up iterations before sampling starts.
    pub warmup_iters: u32,
    /// Number of timed samples to collect (each sample is one call).
    pub samples: u32,
    /// Stop sampling early once this much time has been spent.
    pub time_budget: Duration,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            warmup_iters: 3,
            samples: 30,
            time_budget: Duration::from_secs(2),
        }
    }
}

/// Timing summary over the collected samples.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Benchmark name.
    pub name: String,
    /// Samples actually collected (the budget may cut collection short).
    pub samples: u32,
    /// Fastest sample.
    pub min: Duration,
    /// Median sample.
    pub median: Duration,
    /// Mean over all samples.
    pub mean: Duration,
}

impl Summary {
    /// Renders the summary as a fixed-width report line.
    pub fn line(&self) -> String {
        format!(
            "{:<44} {:>12} min {:>12} median {:>12} mean ({} samples)",
            self.name,
            fmt_duration(self.min),
            fmt_duration(self.median),
            fmt_duration(self.mean),
            self.samples
        )
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Runs `f` under the given sampling policy and returns the summary.
///
/// The closure's return value is passed through [`black_box`] so the
/// optimizer cannot delete the measured work.
pub fn bench_with<R>(name: &str, options: &BenchOptions, mut f: impl FnMut() -> R) -> Summary {
    for _ in 0..options.warmup_iters {
        black_box(f());
    }
    let budget_start = Instant::now();
    let mut samples = Vec::with_capacity(options.samples as usize);
    for _ in 0..options.samples.max(1) {
        let start = Instant::now();
        black_box(f());
        samples.push(start.elapsed());
        if budget_start.elapsed() >= options.time_budget {
            break;
        }
    }
    samples.sort_unstable();
    let total: Duration = samples.iter().sum();
    Summary {
        name: name.to_string(),
        samples: samples.len() as u32,
        min: samples[0],
        median: samples[samples.len() / 2],
        mean: total / samples.len() as u32,
    }
}

/// Runs `f` with the default policy and prints the report line to stdout.
pub fn bench<R>(name: &str, f: impl FnMut() -> R) -> Summary {
    let summary = bench_with(name, &BenchOptions::default(), f);
    println!("{}", summary.line());
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_the_requested_samples() {
        let options = BenchOptions {
            warmup_iters: 1,
            samples: 5,
            time_budget: Duration::from_secs(10),
        };
        let mut calls = 0u32;
        let summary = bench_with("noop", &options, || calls += 1);
        assert_eq!(summary.samples, 5);
        assert_eq!(calls, 6, "1 warmup + 5 samples");
        assert!(summary.min <= summary.median && summary.median >= summary.min);
    }

    #[test]
    fn time_budget_cuts_sampling_short() {
        let options = BenchOptions {
            warmup_iters: 0,
            samples: 1_000_000,
            time_budget: Duration::from_millis(20),
        };
        let summary = bench_with("sleepy", &options, || {
            std::thread::sleep(Duration::from_millis(5))
        });
        assert!(summary.samples < 1_000_000);
        assert!(summary.samples >= 1);
    }

    #[test]
    fn duration_formatting_covers_all_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(2)), "2.00 us");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(4)), "4.00 s");
    }
}
