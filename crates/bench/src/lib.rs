#![forbid(unsafe_code)]
//! Experiment-reproduction support: plain-text table rendering and the
//! paper's reference numbers, shared by the `repro` binary and the
//! integration tests.

pub mod paper;
pub mod tables;
