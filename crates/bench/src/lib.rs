#![forbid(unsafe_code)]
//! Experiment-reproduction support: plain-text table rendering, the
//! paper's reference numbers (shared by the `repro` binary and the
//! integration tests), and a dependency-free statistical harness for the
//! bench targets.

pub mod harness;
pub mod paper;
pub mod tables;
