//! The paper's published numbers, used by the `repro` harness to print
//! paper-vs-measured comparisons and by the integration tests to check that
//! measured *shapes* hold.

/// Application short codes in evaluation order.
pub const APPS: [&str; 8] = ["HA", "HD", "MA", "YA", "HB", "HI", "CA", "EL"];

/// Table 3 — bugs reported by WASABI unit testing, `(reported, fp)` per app
/// for missing-cap, missing-delay, and HOW rows.
pub const TABLE3_CAP: [(usize, usize); 8] =
    [(2, 1), (7, 2), (0, 0), (1, 1), (13, 2), (3, 1), (1, 0), (1, 1)];
pub const TABLE3_DELAY: [(usize, usize); 8] =
    [(3, 2), (6, 3), (5, 1), (0, 0), (6, 2), (2, 0), (2, 0), (1, 0)];
pub const TABLE3_HOW: [(usize, usize); 8] =
    [(0, 0), (4, 2), (0, 0), (0, 0), (4, 2), (2, 1), (0, 0), (0, 0)];

/// Table 4 — bugs reported by the GPT-4 detector, `(reported, fp)`.
pub const TABLE4_CAP: [(usize, usize); 8] =
    [(3, 3), (9, 4), (3, 3), (2, 0), (16, 5), (7, 6), (10, 4), (10, 8)];
pub const TABLE4_DELAY: [(usize, usize); 8] =
    [(7, 4), (9, 2), (4, 1), (4, 0), (16, 4), (17, 6), (5, 1), (17, 9)];

/// Table 5 — retry structures identified / covered in unit testing.
pub const TABLE5_IDENTIFIED: [usize; 8] = [38, 41, 16, 18, 98, 59, 15, 38];
pub const TABLE5_TESTED: [usize; 8] = [12, 27, 12, 11, 48, 14, 6, 5];

/// Table 6 — unit tests, retry-covering tests, runs without/with planning.
pub const TABLE6_TESTS: [usize; 8] = [7296, 7642, 1468, 5757, 7052, 35289, 5439, 12045];
pub const TABLE6_COVER: [usize; 8] = [841, 405, 393, 764, 1438, 1505, 952, 1388];
pub const TABLE6_NAIVE: [usize; 8] = [9156, 7834, 2940, 4764, 4248, 2506, 1132, 1802];
pub const TABLE6_PLANNED: [usize; 8] = [54, 110, 48, 42, 158, 36, 26, 28];

/// Figure 3 — distinct true bugs.
pub const FIG3_DYNAMIC: usize = 42;
pub const FIG3_STATIC: usize = 87;
pub const FIG3_OVERLAP: usize = 20;
pub const FIG3_TOTAL: usize = 109;

/// Figure 4 — identification decomposition.
pub const FIG4_STRUCTURES: usize = 323;
pub const FIG4_LOOPS: usize = 239;
pub const FIG4_LOOPS_CODEQL: usize = 203; // "more than 85%"
pub const FIG4_LOOPS_LLM_MISSED: usize = 100;

/// §4.1 — IF-ratio results.
pub const IF_REPORTED: usize = 9;
pub const IF_TRUE: usize = 8;
pub const IF_RATIOS: [(&str, usize, usize); 6] = [
    ("KeeperException", 17, 20),
    ("TTransportException", 2, 3),
    ("IllegalArgumentException", 2, 9),
    ("ExitException", 1, 3),
    ("IllegalStateException", 1, 3),
    ("FileNotFoundException", 1, 4), // the false positive
];

/// §4.3 — LLM cost per app (medians).
pub const COST_CALLS_MEDIAN: usize = 2600;
pub const COST_TOKENS_MEDIAN: f64 = 3.3e6;
pub const COST_USD_MEDIAN: f64 = 8.0;

/// §4.4 — keyword-filter ablation: loops without vs with the filter.
pub const ABLATION_LOOPS_NO_FILTER: usize = 725;
pub const ABLATION_LOOPS_FILTER: usize = 205;
