//! Regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! repro [--scale tiny|small|paper] [--jobs N] [--max-attempts N]
//!       [--journal DIR] [--resume DIR] [--trace-out DIR] [--quiet] <artifact>...
//! repro --scale paper --jobs 8 --journal runs/ all
//! ```
//!
//! `--journal DIR` checkpoints each app's campaign to `DIR/<short>.jsonl`;
//! `--resume DIR` reloads those files (apps without one run from scratch),
//! so an interrupted `all` at paper scale restarts where it died.
//! `--trace-out DIR` records each app's campaign as a span trace
//! (`DIR/<short>.trace.jsonl`), readable with `wasabi stats`.
//!
//! Artifacts: `table1 table2 study-stats table3 table4 table5 table6 fig3
//! fig4 if-bugs cost fp-taxonomy ablation-keyword ablation-oracles all`.
//!
//! Every artifact prints measured numbers side by side with the paper's
//! published values. Absolute test counts scale with `--scale`; detection
//! counts, identification splits, and ratios do not (retry structures are
//! generated at full fidelity at every scale).

use std::collections::BTreeMap;
use std::path::PathBuf;
use wasabi_analysis::loops::{find_retry_loops, LoopQueryOptions};
use wasabi_engine::campaign::RetryPolicy;
use wasabi_engine::journal;
use wasabi_analysis::resolve::ProjectIndex;
use wasabi_bench::paper;
use wasabi_bench::tables::{render, subscript};
use wasabi_corpus::spec::{paper_apps, Scale};
use wasabi_corpus::study::{study_issues, table1_counts, table2_counts, MechanismShape, Severity, StudyApp, Trigger};
use wasabi_corpus::synth::{compile_app, generate_app};
use wasabi_core::dynamic::DynamicOptions;
use wasabi_core::score::{evaluate_app, evaluate_app_with_observer, Aggregate};
use wasabi_engine::{write_trace, MetricsObserver};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Small;
    let mut jobs = 1usize;
    let mut max_attempts: Option<u8> = None;
    let mut journal_dir: Option<PathBuf> = None;
    let mut resume_dir: Option<PathBuf> = None;
    let mut trace_dir: Option<PathBuf> = None;
    let mut quiet = false;
    let mut artifacts: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let value = iter.next().unwrap_or_default();
                scale = match value.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "paper" => Scale::Paper,
                    other => {
                        eprintln!("unknown scale `{other}` (tiny|small|paper)");
                        std::process::exit(2);
                    }
                };
            }
            "--jobs" => {
                let value = iter.next().unwrap_or_default();
                jobs = match value.parse() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--jobs expects a positive integer, got `{value}`");
                        std::process::exit(2);
                    }
                };
            }
            "--max-attempts" => {
                let value = iter.next().unwrap_or_default();
                max_attempts = match value.parse::<u8>() {
                    Ok(n) if n >= 1 => Some(n),
                    _ => {
                        eprintln!("--max-attempts expects a positive integer, got `{value}`");
                        std::process::exit(2);
                    }
                };
            }
            "--journal" => {
                journal_dir = Some(PathBuf::from(iter.next().unwrap_or_default()));
            }
            "--resume" => {
                resume_dir = Some(PathBuf::from(iter.next().unwrap_or_default()));
            }
            "--trace-out" => {
                trace_dir = Some(PathBuf::from(iter.next().unwrap_or_default()));
            }
            "--quiet" => quiet = true,
            other => artifacts.push(other.to_string()),
        }
    }
    if artifacts.is_empty() {
        artifacts.push("all".to_string());
    }
    let all = artifacts.iter().any(|a| a == "all");
    let wants = |name: &str| all || artifacts.iter().any(|a| a == name);

    // Study-only artifacts need no pipeline run.
    if wants("table1") {
        table1();
    }
    if wants("table2") {
        table2();
    }
    if wants("study-stats") {
        study_stats();
    }

    let needs_pipeline = [
        "table3", "table4", "table5", "table6", "fig3", "fig4", "if-bugs", "cost",
        "fp-taxonomy", "ablation-oracles",
    ]
    .iter()
    .any(|a| wants(a));

    let aggregate = if needs_pipeline {
        if !quiet {
            eprintln!(
                "# running the full WASABI pipeline on all 8 apps (scale {scale:?}, {jobs} job(s))..."
            );
        }
        for (what, dir) in [("journal", &journal_dir), ("trace", &trace_dir)] {
            if let Some(dir) = dir {
                if let Err(err) = std::fs::create_dir_all(dir) {
                    eprintln!("cannot create {what} dir {}: {err}", dir.display());
                    std::process::exit(2);
                }
            }
        }
        let base_options = DynamicOptions {
            jobs,
            retry: match max_attempts {
                Some(attempts) => RetryPolicy::with_max_attempts(attempts),
                None => RetryPolicy::default(),
            },
            ..DynamicOptions::default()
        };
        let mut aggregate = Aggregate::default();
        for spec in paper_apps() {
            if !quiet {
                eprintln!("#   {} ({})", spec.short, spec.name);
            }
            let mut options = base_options.clone();
            options.journal = journal_dir.as_ref().map(|dir| dir.join(format!("{}.jsonl", spec.short)));
            if let Some(dir) = &resume_dir {
                // Apps whose journal is absent simply run from scratch.
                let path = dir.join(format!("{}.jsonl", spec.short));
                if path.exists() {
                    match journal::load_for_resume(&path) {
                        Ok(records) => options.resume_records = records,
                        Err(err) => {
                            eprintln!("{err}");
                            std::process::exit(2);
                        }
                    }
                }
            }
            let app = generate_app(&spec, scale);
            let evaluation = match &trace_dir {
                Some(dir) => {
                    let mut recorder = MetricsObserver::new();
                    let evaluation = evaluate_app_with_observer(&app, &options, &mut recorder);
                    let path = dir.join(format!("{}.trace.jsonl", spec.short));
                    if let Err(err) =
                        write_trace(&path, spec.short, recorder.phases(), recorder.runs())
                    {
                        eprintln!("{err}");
                        std::process::exit(2);
                    }
                    evaluation
                }
                None => evaluate_app(&app, &options),
            };
            aggregate.apps.push(evaluation);
        }
        Some(aggregate)
    } else {
        None
    };

    if let Some(aggregate) = &aggregate {
        if wants("table3") {
            table3(aggregate);
        }
        if wants("table4") {
            table4(aggregate);
        }
        if wants("table5") {
            table5(aggregate);
        }
        if wants("table6") {
            table6(aggregate);
        }
        if wants("fig3") {
            fig3(aggregate);
        }
        if wants("fig4") {
            fig4(aggregate);
        }
        if wants("if-bugs") {
            if_bugs(aggregate);
        }
        if wants("cost") {
            cost(aggregate);
        }
        if wants("fp-taxonomy") {
            fp_taxonomy(aggregate);
        }
        if wants("ablation-oracles") {
            ablation_oracles(aggregate);
        }
    }
    if wants("ablation-keyword") {
        ablation_keyword(scale);
    }
}

fn table1() {
    println!("## Table 1 — applications included in the study\n");
    let issues = study_issues();
    let rows: Vec<Vec<String>> = StudyApp::all()
        .iter()
        .zip(table1_counts(&issues))
        .map(|((app, category, stars), (_, count))| {
            vec![
                app.name().to_string(),
                category.to_string(),
                format!("{stars}K"),
                count.to_string(),
            ]
        })
        .collect();
    println!("{}", render(&["Application", "Category", "Stars", "Bugs"], &rows));
}

fn table2() {
    println!("## Table 2 — root causes of retry bugs\n");
    let issues = study_issues();
    let rows: Vec<Vec<String>> = table2_counts(&issues)
        .iter()
        .map(|(cause, count)| {
            vec![
                cause.category().to_string(),
                cause.label().to_string(),
                count.to_string(),
            ]
        })
        .chain(std::iter::once(vec![
            String::new(),
            "Total".to_string(),
            issues.len().to_string(),
        ]))
        .collect();
    println!("{}", render(&["Cat", "Root cause", "Issues"], &rows));
}

fn study_stats() {
    println!("## §2.5 — study statistics\n");
    let issues = study_issues();
    let n = issues.len() as f64;
    let pct = |count: usize| format!("{:.0}%", count as f64 / n * 100.0);
    let sev = |s| issues.iter().filter(|i| i.severity == s).count();
    println!(
        "severity: blocker {} | critical {} | major {} | minor {} | unlabeled {}",
        pct(sev(Severity::Blocker)),
        pct(sev(Severity::Critical)),
        pct(sev(Severity::Major)),
        pct(sev(Severity::Minor)),
        pct(sev(Severity::Unlabeled)),
    );
    let mech = |m| issues.iter().filter(|i| i.mechanism == m).count();
    println!(
        "mechanism: loop {} | queue re-enqueue {} | state machine {}   (paper: 55%/25%/20%)",
        pct(mech(MechanismShape::Loop)),
        pct(mech(MechanismShape::Queue)),
        pct(mech(MechanismShape::StateMachine)),
    );
    let exc = issues.iter().filter(|i| i.trigger == Trigger::Exception).count();
    println!(
        "trigger: exceptions {} | error codes {}   (paper: 70%/30%)",
        pct(exc),
        pct(issues.len() - exc),
    );
    let regression = issues.iter().filter(|i| i.regression_test).count();
    println!("regression tests added after fix: {regression}/70 (paper: 42/70)\n");
}

fn table3(aggregate: &Aggregate) {
    println!("## Table 3 — retry bugs reported by WASABI unit testing");
    println!("   (cells are reported_FPs; paper value in parentheses)\n");
    let mut rows = Vec::new();
    for (kind, paper_row) in [
        ("missing cap", &paper::TABLE3_CAP),
        ("missing delay", &paper::TABLE3_DELAY),
        ("HOW bugs", &paper::TABLE3_HOW),
    ] {
        let mut row = vec![kind.to_string()];
        for (i, app) in aggregate.apps.iter().enumerate() {
            let cell = match kind {
                "missing cap" => app.dyn_cap,
                "missing delay" => app.dyn_delay,
                _ => app.dyn_how,
            };
            let (paper_reported, paper_fp) = paper_row[i];
            row.push(format!(
                "{} ({})",
                subscript(cell.reported(), cell.fp),
                subscript(paper_reported, paper_fp)
            ));
        }
        rows.push(row);
    }
    let mut header = vec!["Bug type"];
    header.extend(paper::APPS);
    println!("{}", render(&header, &rows));
    let cap = aggregate.cell_sum(|a| a.dyn_cap);
    let delay = aggregate.cell_sum(|a| a.dyn_delay);
    let how = aggregate.cell_sum(|a| a.dyn_how);
    println!(
        "totals: cap {}_{} (paper 28_8) | delay {}_{} (paper 25_8) | how {}_{} (paper 10_5)\n",
        cap.reported(), cap.fp, delay.reported(), delay.fp, how.reported(), how.fp
    );
}

fn table4(aggregate: &Aggregate) {
    println!("## Table 4 — retry bugs reported by the LLM detector");
    println!("   (cells are reported_FPs; paper value in parentheses)\n");
    let mut rows = Vec::new();
    for (kind, paper_row) in [
        ("missing cap", &paper::TABLE4_CAP),
        ("missing delay", &paper::TABLE4_DELAY),
    ] {
        let mut row = vec![kind.to_string()];
        for (i, app) in aggregate.apps.iter().enumerate() {
            let cell = if kind == "missing cap" { app.llm_cap } else { app.llm_delay };
            let (paper_reported, paper_fp) = paper_row[i];
            row.push(format!(
                "{} ({})",
                subscript(cell.reported(), cell.fp),
                subscript(paper_reported, paper_fp)
            ));
        }
        rows.push(row);
    }
    let mut header = vec!["Bug type"];
    header.extend(paper::APPS);
    println!("{}", render(&header, &rows));
    let cap = aggregate.cell_sum(|a| a.llm_cap);
    let delay = aggregate.cell_sum(|a| a.llm_delay);
    println!(
        "totals: cap {}_{} (paper 60_33) | delay {}_{} (paper 79_27)\n",
        cap.reported(), cap.fp, delay.reported(), delay.fp
    );
}

fn table5(aggregate: &Aggregate) {
    println!("## Table 5 — retry structures identified and covered in testing\n");
    let mut identified_row = vec!["Identified".to_string()];
    let mut tested_row = vec!["Tested".to_string()];
    for (i, app) in aggregate.apps.iter().enumerate() {
        identified_row.push(format!(
            "{} ({})",
            app.identified_any,
            paper::TABLE5_IDENTIFIED[i]
        ));
        tested_row.push(format!("{} ({})", app.tested, paper::TABLE5_TESTED[i]));
    }
    let mut header = vec!["(paper in parens)"];
    header.extend(paper::APPS);
    println!("{}", render(&header, &[identified_row, tested_row]));
    let identified: usize = aggregate.apps.iter().map(|a| a.identified_any).sum();
    let tested: usize = aggregate.apps.iter().map(|a| a.tested).sum();
    println!("totals: identified {identified} (paper 323) | tested {tested} (paper 135)\n");
}

fn table6(aggregate: &Aggregate) {
    println!("## Table 6 — WASABI unit-testing details");
    println!("   (test counts scale with --scale; ratios are the shape to check)\n");
    let rows: Vec<Vec<String>> = aggregate
        .apps
        .iter()
        .enumerate()
        .map(|(i, app)| {
            let reduction = if app.runs_planned > 0 {
                app.runs_naive / app.runs_planned
            } else {
                0
            };
            let paper_reduction = paper::TABLE6_NAIVE[i] / paper::TABLE6_PLANNED[i];
            vec![
                app.app.clone(),
                format!("{} ({})", app.tests_total, paper::TABLE6_TESTS[i]),
                format!("{} ({})", app.tests_cover_retry, paper::TABLE6_COVER[i]),
                format!("{} ({})", app.runs_naive, paper::TABLE6_NAIVE[i]),
                format!("{} ({})", app.runs_planned, paper::TABLE6_PLANNED[i]),
                format!("{reduction}x ({paper_reduction}x)"),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &["App", "Tests", "CoverRetry", "w/o planning", "w/ planning", "cut"],
            &rows
        )
    );
}

fn fig3(aggregate: &Aggregate) {
    println!("## Figure 3 — distinct true bugs by workflow\n");
    println!(
        "unit testing: {} (paper {})",
        aggregate.dynamic_bugs(),
        paper::FIG3_DYNAMIC
    );
    println!(
        "static checking: {} (paper {})",
        aggregate.static_bugs(),
        paper::FIG3_STATIC
    );
    println!(
        "found by both: {} (paper {})",
        aggregate.overlap(),
        paper::FIG3_OVERLAP
    );
    println!(
        "total distinct: {} (paper {})\n",
        aggregate.total_bugs(),
        paper::FIG3_TOTAL
    );
}

fn fig4(aggregate: &Aggregate) {
    println!("## Figure 4 — retry structures identified per technique\n");
    let structures: usize = aggregate.apps.iter().map(|a| a.identified_any).sum();
    let loops_total: usize = aggregate.apps.iter().map(|a| a.loops_total).sum();
    let loops_codeql: usize = aggregate.apps.iter().map(|a| a.loops_codeql).sum();
    let loops_llm: usize = aggregate.apps.iter().map(|a| a.loops_llm).sum();
    let ident_fp_codeql: usize = aggregate.apps.iter().map(|a| a.ident_fp_codeql).sum();
    let ident_fp_llm: usize = aggregate.apps.iter().map(|a| a.ident_fp_llm).sum();
    println!(
        "structures identified: {structures} (paper {})",
        paper::FIG4_STRUCTURES
    );
    println!(
        "retry loops in corpus: {loops_total} (paper {}); control-flow query found {loops_codeql} (paper {}), LLM found {loops_llm} (missed {} — paper missed {})",
        paper::FIG4_LOOPS,
        paper::FIG4_LOOPS_CODEQL,
        loops_total - loops_llm,
        paper::FIG4_LOOPS_LLM_MISSED
    );
    println!(
        "identification false positives: control-flow {ident_fp_codeql} (paper sampled 3/40), LLM {ident_fp_llm} (paper sampled 16/100)\n"
    );
}

fn if_bugs(aggregate: &Aggregate) {
    println!("## §4.1 — IF bugs via application-wide retry ratios\n");
    let mut rows = Vec::new();
    for app in &aggregate.apps {
        for (exception, r, n) in &app.if_ratios {
            let paper_ratio = paper::IF_RATIOS
                .iter()
                .find(|(e, _, _)| e == exception)
                .map(|(_, pr, pn)| format!("{pr}/{pn}"))
                .unwrap_or_else(|| "-".to_string());
            rows.push(vec![
                app.app.clone(),
                exception.clone(),
                format!("{r}/{n}"),
                paper_ratio,
            ]);
        }
    }
    println!("{}", render(&["App", "Exception", "measured r/n", "paper r/n"], &rows));
    let tp: usize = aggregate.apps.iter().map(|a| a.if_tp).sum();
    let fp: usize = aggregate.apps.iter().map(|a| a.if_fp).sum();
    let instances: usize = aggregate.apps.iter().map(|a| a.if_outlier_instances).sum();
    println!(
        "exception groups: {} true + {} false; true outlier instances: {} + {} false = {} cases (paper: {} true of {} cases)\n",
        tp,
        fp,
        instances,
        fp,
        instances + fp,
        paper::IF_TRUE,
        paper::IF_REPORTED
    );
}

fn cost(aggregate: &Aggregate) {
    println!("## §4.3 — LLM cost per application\n");
    let rows: Vec<Vec<String>> = aggregate
        .apps
        .iter()
        .map(|app| {
            vec![
                app.app.clone(),
                app.llm_usage.calls.to_string(),
                format!("{:.1} MB", app.llm_usage.bytes_sent as f64 / 1e6),
                format!("{:.2} M", app.llm_usage.tokens as f64 / 1e6),
                format!("${:.2}", app.llm_usage.cost_usd()),
                format!("{:.1} s", app.injected_virtual_ms as f64 / 1e3),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &["App", "API calls", "Data", "Tokens", "Cost", "Injected virt-time"],
            &rows
        )
    );
    let mut calls: Vec<u64> = aggregate.apps.iter().map(|a| a.llm_usage.calls).collect();
    calls.sort_unstable();
    println!(
        "median calls/app: {} (paper ~{}; scales with --scale)\n",
        calls[calls.len() / 2],
        paper::COST_CALLS_MEDIAN
    );
}

fn fp_taxonomy(aggregate: &Aggregate) {
    println!("## §4.3 — false-positive taxonomy\n");
    let mut merged: BTreeMap<String, usize> = BTreeMap::new();
    for app in &aggregate.apps {
        for (key, count) in &app.fp_taxonomy {
            *merged.entry(key.clone()).or_insert(0) += count;
        }
    }
    let rows: Vec<Vec<String>> = merged
        .iter()
        .map(|(key, count)| vec![key.clone(), count.to_string()])
        .collect();
    println!("{}", render(&["FP mode", "count"], &rows));
    println!(
        "paper: dynamic FPs = 8 harness-swallow + 8 delay-not-needed + 5 wrapped-exception;\n\
         LLM FPs = 29 non-retry files + 16 single-file + 15 miscomprehension; IF FP = 1 boolean-flag\n"
    );
}

fn ablation_oracles(aggregate: &Aggregate) {
    println!("## §4.4 — oracle ablation\n");
    let crashed: usize = aggregate.apps.iter().map(|a| a.crashed_runs).sum();
    let rethrows: usize = aggregate.apps.iter().map(|a| a.rethrow_filtered).sum();
    let pct = if crashed > 0 {
        rethrows as f64 / crashed as f64 * 100.0
    } else {
        0.0
    };
    println!(
        "injected runs that crashed: {crashed}; of those, same-exception rethrows filtered by\n\
         the different-exception oracle: {rethrows} ({pct:.0}%) — paper reports ~90%.\n\
         Without the cap/delay oracles every missing-cap and missing-delay bug would be\n\
         missed: those runs end in passes or filtered rethrows, never assertion failures.\n"
    );
}

fn ablation_keyword(scale: Scale) {
    println!("## §4.4 — keyword-filter ablation\n");
    let mut with_filter = 0usize;
    let mut without_filter = 0usize;
    for spec in paper_apps() {
        let app = generate_app(&spec, scale);
        let project = compile_app(&app);
        let index = ProjectIndex::build(&project);
        with_filter += find_retry_loops(&index, &LoopQueryOptions::default()).len();
        let mut no_filter = LoopQueryOptions::default();
        no_filter.keyword_filter = false;
        without_filter += find_retry_loops(&index, &no_filter).len();
    }
    println!(
        "retry loops reported with keyword filter: {with_filter} (paper {})",
        paper::ABLATION_LOOPS_FILTER
    );
    println!(
        "without keyword filter: {without_filter} (paper {}), a {:.1}x increase (paper 3.5x)\n",
        paper::ABLATION_LOOPS_NO_FILTER,
        without_filter as f64 / with_filter.max(1) as f64
    );
}
