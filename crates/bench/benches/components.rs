//! Component microbenchmarks: parser, CFG construction, retry-loop query,
//! interpreter, and injection overhead. Built on the in-repo
//! `wasabi_bench::harness` (no external framework); run with
//! `cargo bench --features bench-criterion --bench components`.

use wasabi_analysis::cfg::Cfg;
use wasabi_analysis::loops::{all_retry_locations, find_retry_loops, LoopQueryOptions};
use wasabi_analysis::resolve::ProjectIndex;
use wasabi_bench::harness::bench;
use wasabi_inject::InjectionHandler;
use wasabi_lang::ast::Item;
use wasabi_lang::parser::parse_file;
use wasabi_lang::project::{MethodId, Project};
use wasabi_vm::interceptor::NoopInterceptor;
use wasabi_vm::runner::{run_test, RunOptions};

const RETRY_SOURCE: &str = "exception ConnectException;\n\
    class Client {\n\
      field maxAttempts = 5;\n\
      method connect() throws ConnectException { return \"c\"; }\n\
      method fetch(conn) throws ConnectException { return \"ok\"; }\n\
      method run() {\n\
        for (var retry = 0; retry < this.maxAttempts; retry = retry + 1) {\n\
          try { var c = this.connect(); return this.fetch(c); }\n\
          catch (ConnectException e) { sleep(100 * (retry + 1)); }\n\
        }\n\
        return null;\n\
      }\n\
      test tRun() { assert(this.run() == \"ok\"); }\n\
    }\n";

fn bench_parser() {
    // A multi-class file, repeated to ~64 KiB.
    let mut source = String::from("exception ConnectException;\n");
    let unit = RETRY_SOURCE.replace("exception ConnectException;\n", "");
    let mut i = 0;
    while source.len() < 64 * 1024 {
        source.push_str(&unit.replace("Client", &format!("Client{i}")));
        i += 1;
    }
    let summary = bench("parser/parse_64KiB", || parse_file(&source).expect("parse"));
    let throughput = source.len() as f64 / summary.median.as_secs_f64() / 1e6;
    println!("  ({throughput:.1} MB/s at the median)");
}

fn bench_cfg() {
    let items = parse_file(RETRY_SOURCE).expect("parse");
    let Item::Class(class) = &items[1] else { panic!("class expected") };
    let body = &class.methods[2].body;
    bench("cfg/build_retry_loop", || Cfg::build(body));
}

fn bench_retry_loop_query() {
    // 50 retry structures in one project.
    let mut files = vec![("exc.jav".to_string(), "exception ConnectException;".to_string())];
    let unit = RETRY_SOURCE.replace("exception ConnectException;\n", "");
    for i in 0..50 {
        files.push((format!("client{i}.jav"), unit.replace("Client", &format!("Client{i}"))));
    }
    let project = Project::compile("bench", files).expect("compile");
    bench("analysis/retry_loop_query_50_structures", || {
        let index = ProjectIndex::build(&project);
        find_retry_loops(&index, &LoopQueryOptions::default())
    });
}

fn bench_interpreter() {
    let project = Project::compile("bench", vec![("c.jav", RETRY_SOURCE)]).expect("compile");
    let test = MethodId::new("Client", "tRun");
    let options = RunOptions::default();
    bench("vm/run_test_no_injection", || {
        run_test(&project, &test, &mut NoopInterceptor, &options)
    });
}

fn bench_injection_overhead() {
    let project = Project::compile("bench", vec![("c.jav", RETRY_SOURCE)]).expect("compile");
    let index = ProjectIndex::build(&project);
    let location = all_retry_locations(&index, &LoopQueryOptions::default())
        .into_iter()
        .flat_map(|(_, l)| l)
        .next()
        .expect("one location");
    let test = MethodId::new("Client", "tRun");
    let options = RunOptions::default();
    bench("vm/run_test_with_injection_k100", || {
        let mut handler = InjectionHandler::single(location.clone(), 100);
        run_test(&project, &test, &mut handler, &options)
    });
}

fn main() {
    bench_parser();
    bench_cfg();
    bench_retry_loop_query();
    bench_interpreter();
    bench_injection_overhead();
}
