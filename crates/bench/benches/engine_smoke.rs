//! Engine smoke benchmark: the parallel campaign engine vs. serial
//! execution on a synthetic HDFS application.
//!
//! Always built (no feature gate) so `cargo bench --bench engine_smoke`
//! works out of the box. It checks two things:
//!
//! 1. **Determinism** — the dynamic workflow's reports and bugs are
//!    identical at `jobs = 1` and `jobs = N`;
//! 2. **Speedup** — on machines with at least 4 cores, `jobs = N` must be
//!    at least 2x faster than serial. On smaller machines the timings are
//!    only reported (a 1-core container cannot demonstrate parallelism).

use std::time::{Duration, Instant};
use wasabi_corpus::spec::{paper_apps, Scale};
use wasabi_corpus::synth::{compile_app, generate_app};
use wasabi_core::dynamic::{run_dynamic, DynamicOptions, DynamicResult};
use wasabi_core::identify::identify;
use wasabi_llm::simulated::SimulatedLlm;

fn timed(
    project: &wasabi_lang::project::Project,
    locations: &[wasabi_analysis::loops::RetryLocation],
    jobs: usize,
) -> (DynamicResult, Duration) {
    let options = DynamicOptions {
        jobs,
        ..DynamicOptions::default()
    };
    let start = Instant::now();
    let result = run_dynamic(project, locations, &options);
    (result, start.elapsed())
}

fn render(result: &DynamicResult) -> String {
    format!("{:?}\n{:?}\n{:?}", result.reports, result.bugs, result.stats)
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let spec = paper_apps().into_iter().find(|s| s.short == "HD").expect("HD");
    let app = generate_app(&spec, Scale::Small);
    let project = compile_app(&app);
    let mut llm = SimulatedLlm::with_seed(app.spec.seed);
    let identified = identify(&project, &mut llm);
    println!(
        "engine_smoke: HDFS (Small), {} retry locations, {} core(s)",
        identified.locations.len(),
        cores
    );

    // Warm up caches once, untimed.
    let _ = timed(&project, &identified.locations, 1);

    let (serial, serial_time) = timed(&project, &identified.locations, 1);
    let (parallel, parallel_time) = timed(&project, &identified.locations, cores);
    println!(
        "  jobs=1: {:>8.2} ms  ({} runs, {} reports, {} bugs)",
        serial_time.as_secs_f64() * 1e3,
        serial.stats.runs_executed,
        serial.reports.len(),
        serial.bugs.len()
    );
    println!(
        "  jobs={cores}: {:>8.2} ms  (worker runs: {:?})",
        parallel_time.as_secs_f64() * 1e3,
        parallel.campaign.worker_runs
    );

    assert_eq!(
        render(&serial),
        render(&parallel),
        "parallel campaign must reproduce the serial reports byte for byte"
    );
    println!("  determinism: reports identical at jobs=1 and jobs={cores}");

    let speedup = serial_time.as_secs_f64() / parallel_time.as_secs_f64().max(1e-9);
    println!("  speedup: {speedup:.2}x");
    if cores >= 4 {
        assert!(
            speedup >= 2.0,
            "expected >= 2x speedup with {cores} cores, measured {speedup:.2}x"
        );
        println!("  speedup target met (>= 2x on {cores} cores)");
    } else {
        println!("  speedup target skipped (needs >= 4 cores, have {cores})");
    }
}
