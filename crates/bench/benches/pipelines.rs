//! Pipeline benchmarks: one per evaluation artifact family — identification
//! (Figure 4), the dynamic workflow (Tables 3/5/6), the LLM static sweep
//! (Table 4), and the IF-ratio analysis (§4.1) — measured on a synthetic
//! application at Tiny scale. Built on the in-repo `wasabi_bench::harness`;
//! run with `cargo bench --features bench-criterion --bench pipelines`.

use wasabi_analysis::ifratio::{if_ratio_reports, IfOptions};
use wasabi_analysis::resolve::ProjectIndex;
use wasabi_bench::harness::bench;
use wasabi_corpus::spec::{paper_apps, Scale};
use wasabi_corpus::synth::{compile_app, generate_app};
use wasabi_core::dynamic::{run_dynamic, DynamicOptions};
use wasabi_core::identify::identify;
use wasabi_llm::detector::sweep_project;
use wasabi_llm::simulated::SimulatedLlm;

fn hdfs_project() -> (wasabi_corpus::synth::GeneratedApp, wasabi_lang::project::Project) {
    let spec = paper_apps().into_iter().find(|s| s.short == "HD").expect("HD");
    let app = generate_app(&spec, Scale::Tiny);
    let project = compile_app(&app);
    (app, project)
}

fn bench_generation() {
    let spec = paper_apps().into_iter().find(|s| s.short == "HD").expect("HD");
    bench("corpus/generate_hdfs_tiny", || generate_app(&spec, Scale::Tiny));
}

fn bench_identification() {
    let (app, project) = hdfs_project();
    bench("pipeline/identify_hdfs", || {
        let mut llm = SimulatedLlm::with_seed(app.spec.seed);
        identify(&project, &mut llm)
    });
}

fn bench_llm_sweep() {
    let (app, project) = hdfs_project();
    bench("pipeline/llm_static_sweep_hdfs", || {
        let mut llm = SimulatedLlm::with_seed(app.spec.seed);
        sweep_project(&project, &mut llm)
    });
}

fn bench_dynamic_workflow() {
    let (app, project) = hdfs_project();
    let mut llm = SimulatedLlm::with_seed(app.spec.seed);
    let identified = identify(&project, &mut llm);
    let options = DynamicOptions::default();
    bench("pipeline/dynamic_workflow_hdfs", || {
        run_dynamic(&project, &identified.locations, &options)
    });
}

fn bench_if_ratio() {
    let (_, project) = hdfs_project();
    bench("pipeline/if_ratio_hdfs", || {
        let index = ProjectIndex::build(&project);
        if_ratio_reports(&index, &IfOptions::default())
    });
}

fn main() {
    bench_generation();
    bench_identification();
    bench_llm_sweep();
    bench_dynamic_workflow();
    bench_if_ratio();
}
