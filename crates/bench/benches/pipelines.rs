//! Pipeline benchmarks: one per evaluation artifact family — identification
//! (Figure 4), the dynamic workflow (Tables 3/5/6), the LLM static sweep
//! (Table 4), and the IF-ratio analysis (§4.1) — measured on a synthetic
//! application at Tiny scale.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use wasabi_analysis::ifratio::{if_ratio_reports, IfOptions};
use wasabi_analysis::resolve::ProjectIndex;
use wasabi_corpus::spec::{paper_apps, Scale};
use wasabi_corpus::synth::{compile_app, generate_app};
use wasabi_core::dynamic::{run_dynamic, DynamicOptions};
use wasabi_core::identify::identify;
use wasabi_llm::detector::sweep_project;
use wasabi_llm::simulated::SimulatedLlm;

fn hdfs_project() -> (wasabi_corpus::synth::GeneratedApp, wasabi_lang::project::Project) {
    let spec = paper_apps().into_iter().find(|s| s.short == "HD").expect("HD");
    let app = generate_app(&spec, Scale::Tiny);
    let project = compile_app(&app);
    (app, project)
}

fn bench_generation(c: &mut Criterion) {
    let spec = paper_apps().into_iter().find(|s| s.short == "HD").expect("HD");
    c.bench_function("corpus/generate_hdfs_tiny", |b| {
        b.iter(|| generate_app(&spec, Scale::Tiny));
    });
}

fn bench_identification(c: &mut Criterion) {
    let (app, project) = hdfs_project();
    c.bench_function("pipeline/identify_hdfs", |b| {
        b.iter_batched(
            || SimulatedLlm::with_seed(app.spec.seed),
            |mut llm| identify(&project, &mut llm),
            BatchSize::SmallInput,
        );
    });
}

fn bench_llm_sweep(c: &mut Criterion) {
    let (app, project) = hdfs_project();
    c.bench_function("pipeline/llm_static_sweep_hdfs", |b| {
        b.iter_batched(
            || SimulatedLlm::with_seed(app.spec.seed),
            |mut llm| sweep_project(&project, &mut llm),
            BatchSize::SmallInput,
        );
    });
}

fn bench_dynamic_workflow(c: &mut Criterion) {
    let (app, project) = hdfs_project();
    let mut llm = SimulatedLlm::with_seed(app.spec.seed);
    let identified = identify(&project, &mut llm);
    let options = DynamicOptions::default();
    c.bench_function("pipeline/dynamic_workflow_hdfs", |b| {
        b.iter(|| run_dynamic(&project, &identified.locations, &options));
    });
}

fn bench_if_ratio(c: &mut Criterion) {
    let (_, project) = hdfs_project();
    c.bench_function("pipeline/if_ratio_hdfs", |b| {
        b.iter_batched(
            || ProjectIndex::build(&project),
            |index| if_ratio_reports(&index, &IfOptions::default()),
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_generation,
    bench_identification,
    bench_llm_sweep,
    bench_dynamic_workflow,
    bench_if_ratio
);
criterion_main!(benches);
