//! Javelin source templates for every retry-structure kind, bug, and trap.
//!
//! Each builder returns the structure's source files, its ground truth, and
//! a description of how unit tests should drive it. Templates are written so
//! that the *dynamic* behaviour (under fault injection) and the *textual*
//! appearance (what CodeQL-style queries and the simulated LLM see) each
//! land exactly where the paper's evaluation puts them; the module-level
//! comments on each builder say which cell of which table the template
//! feeds.

use crate::truth::{SeededBug, StructureKind, StructureTruth, Trap, Visibility};
use wasabi_lang::project::MethodId;

/// How a covering unit test should exercise a structure.
#[derive(Debug, Clone)]
pub enum TestShape {
    /// `var s = new {class}(); [init] assert(s.{entry}() == {expected});`
    Standard {
        /// Class to instantiate.
        class: String,
        /// Entry method to call.
        entry: String,
        /// Expected string result.
        expected: String,
        /// Config key the structure reads for its cap, if any (restricting
        /// tests override it).
        config_key: Option<String>,
        /// Extra setup statements before the call.
        setup: Vec<String>,
        /// Extra assertions after the call (referencing `s`).
        extra_asserts: Vec<String>,
    },
    /// The harness-swallow shape: submit many tasks, swallow failures.
    Harness {
        /// Processor class.
        class: String,
        /// Per-task entry method.
        entry: String,
        /// Exception type the harness swallows.
        exception: String,
        /// Number of tasks the harness submits.
        tasks: usize,
    },
}

/// A generated structure: its files, truth, and test shape.
#[derive(Debug, Clone)]
pub struct StructureBuild {
    /// `(path, source)` files; the first is the structure's own file.
    pub files: Vec<(String, String)>,
    /// Ground-truth record.
    pub truth: StructureTruth,
    /// How tests drive it (`None` for uncovered structures).
    pub test: Option<TestShape>,
}

/// Parameters shared by the builders.
#[derive(Debug, Clone)]
pub struct Ctx {
    /// App short code, e.g. `"HB"`.
    pub short: String,
    /// Structure index within the app.
    pub index: usize,
    /// Trigger exception type.
    pub exception: String,
    /// Whether the structure carries identifier/string keyword evidence
    /// (`false` ⇒ comment-only evidence, invisible to CodeQL).
    pub keyword: bool,
    /// Whether to pad the file into LLM-blinding territory.
    pub large_file: bool,
    /// Covered by unit tests?
    pub covered: bool,
    /// Optional IF-seed overlay: `(exception, retried, flag_fake)`.
    pub if_overlay: Option<(String, bool, bool)>,
    /// Optional config key for a config-driven cap.
    pub config_key: Option<String>,
}

impl Ctx {
    fn class(&self, stem: &str) -> String {
        format!("{stem}{}{:03}", self.short, self.index)
    }

    fn path(&self, stem: &str) -> String {
        format!(
            "src/{}_{}_{:03}.jav",
            stem.to_lowercase(),
            self.short.to_lowercase(),
            self.index
        )
    }

    /// Evidence comment, or a keyword-free one.
    fn head_comment(&self, action: &str) -> String {
        if self.keyword {
            format!("// Retry {action} on transient failures.")
        } else {
            // Comment-only evidence must still read like retry to the LLM.
            format!("// If {action} fails with a transient error, try it again (retry).")
        }
    }
}

/// Comment padding that pushes a file past the LLM's recall cliff without
/// adding any retry-ish vocabulary.
pub fn large_file_padding(lines: usize) -> String {
    let mut out = String::with_capacity(lines * 72);
    for i in 0..lines {
        out.push_str(&format!(
            "// bookkeeping note {i:04}: buffer pools are sized from the heap budget\n\
             // and rebalanced when the allocator reports fragmentation pressure.\n"
        ));
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn finish(
    ctx: &Ctx,
    kind: StructureKind,
    stem: &str,
    mut source: String,
    bugs: Vec<SeededBug>,
    traps: Vec<Trap>,
    coordinator_method: &str,
    exceptions: Vec<String>,
    test: Option<TestShape>,
    extra_files: Vec<(String, String)>,
) -> StructureBuild {
    if ctx.large_file {
        source.push('\n');
        source.push_str(&large_file_padding(120));
    }
    let class = ctx.class(stem);
    let path = ctx.path(stem);
    let mut files = vec![(path.clone(), source)];
    files.extend(extra_files);
    StructureBuild {
        truth: StructureTruth {
            id: format!("{}-{}-{:03}", ctx.short, stem.to_lowercase(), ctx.index),
            kind,
            coordinator: MethodId::new(class, coordinator_method),
            file_path: path,
            bugs,
            traps,
            visibility: Visibility {
                keyword_evidence: ctx.keyword,
                large_file: ctx.large_file,
            },
            covered_by_tests: ctx.covered,
            exceptions,
        },
        files,
        test,
    }
}

/// Renders the optional IF-seed overlay: an extra `throws` type on the op
/// plus (for retried instances) an extra catch clause.
struct Overlay {
    extra_throws: String,
    extra_catch: String,
    flag_decl: String,
    flag_check: String,
}

fn overlay(ctx: &Ctx) -> Overlay {
    match &ctx.if_overlay {
        None => Overlay {
            extra_throws: String::new(),
            extra_catch: String::new(),
            flag_decl: String::new(),
            flag_check: String::new(),
        },
        Some((exc, retried, flag_fake)) => {
            let extra_throws = format!(", {exc}");
            if *flag_fake {
                // The catch "reaches" the header syntactically, but the flag
                // always breaks: the IF analysis wrongly counts it retried.
                Overlay {
                    extra_throws,
                    extra_catch: format!(
                        "            catch ({exc} e2) {{ this.broken = true; }}\n"
                    ),
                    flag_decl: "    field broken = false;\n".to_string(),
                    // Give up by rethrowing the same exception type, so the
                    // different-exception oracle stays quiet (the paper has
                    // no HOW FP from this pattern).
                    flag_check: format!(
                        "            if (this.broken) {{ throw new {exc}(\"unrecoverable\"); }}\n"
                    ),
                }
            } else if *retried {
                Overlay {
                    extra_throws,
                    extra_catch: format!(
                        "            catch ({exc} e2) {{ sleep(120); }}\n"
                    ),
                    flag_decl: String::new(),
                    flag_check: String::new(),
                }
            } else {
                // Not retried: the exception propagates out of the loop.
                Overlay {
                    extra_throws,
                    extra_catch: String::new(),
                    flag_decl: String::new(),
                    flag_check: String::new(),
                }
            }
        }
    }
}

/// A clean, correct exception-retry loop (bounded attempts, backoff).
///
/// Feeds Table 5 identified/tested counts and serves as the IF-seed host.
pub fn loop_clean(ctx: &Ctx) -> StructureBuild {
    let class = ctx.class("Fetcher");
    let exc = &ctx.exception;
    let over = overlay(ctx);
    let comment = ctx.head_comment("the fetch");
    let (cap_field, cap_read, cap_cond) = match &ctx.config_key {
        Some(key) => (
            String::new(),
            format!("        var maxAttempts = getConfig(\"{key}\");\n"),
            "retry < maxAttempts".to_string(),
        ),
        None => (
            "    field maxAttempts = 5;\n".to_string(),
            String::new(),
            "retry < this.maxAttempts".to_string(),
        ),
    };
    let (kw_counter, kw_log) = if ctx.keyword {
        ("retry", "")
    } else {
        ("round", "")
    };
    let _ = kw_log;
    let source = format!(
        "{comment}\n\
         class {class} {{\n\
         {cap_field}{flag}\
         \x20   method open{i}() throws {exc}{extra_throws} {{ return \"conn\"; }}\n\
         \x20   method fetch{i}(conn) throws {exc} {{ return \"ok\"; }}\n\
         \x20   method run() throws {exc} {{\n\
         {cap_read}\
         \x20       for (var {kw} = 0; {cond}; {kw} = {kw} + 1) {{\n\
         \x20           try {{\n\
         \x20               var conn = this.open{i}();\n\
         \x20               return this.fetch{i}(conn);\n\
         \x20           }}\n\
         \x20           catch ({exc} e) {{ sleep(100 * ({kw} + 1)); }}\n\
         {extra_catch}\
         {flag_check}\
         \x20       }}\n\
         \x20       throw new {exc}(\"{class}: giving up\");\n\
         \x20   }}\n\
         }}\n",
        i = ctx.index,
        kw = kw_counter,
        cond = cap_cond.replace("retry", kw_counter),
        flag = over.flag_decl,
        extra_throws = over.extra_throws,
        extra_catch = over.extra_catch,
        flag_check = over.flag_check,
    );
    let mut exceptions = vec![exc.clone()];
    if let Some((e, ..)) = &ctx.if_overlay {
        exceptions.push(e.clone());
    }
    let test = ctx.covered.then(|| TestShape::Standard {
        class: class.clone(),
        entry: "run".into(),
        expected: "ok".into(),
        config_key: ctx.config_key.clone(),
        setup: vec![],
        extra_asserts: vec![],
    });
    finish(
        ctx,
        StructureKind::LoopException,
        "Fetcher",
        source,
        vec![],
        vec![],
        "run",
        exceptions,
        test,
        vec![],
    )
}

/// A missing-cap retry loop (`while (true)` with backoff).
///
/// Feeds Table 3 (covered) / Table 4 (LLM-visible) missing-cap true bugs.
pub fn loop_missing_cap(ctx: &Ctx) -> StructureBuild {
    let class = ctx.class("Committer");
    let exc = &ctx.exception;
    let comment = ctx.head_comment("the commit");
    let evidence = if ctx.keyword {
        "log(\"retrying commit\");"
    } else {
        "log(\"commit did not stick, going again\"); // retry until it lands"
    };
    let source = format!(
        "{comment}\n\
         class {class} {{\n\
         \x20   method push{i}() throws {exc} {{ return \"ok\"; }}\n\
         \x20   method run() throws {exc} {{\n\
         \x20       while (true) {{\n\
         \x20           try {{ return this.push{i}(); }}\n\
         \x20           catch ({exc} e) {{ {evidence} sleep(40); }}\n\
         \x20       }}\n\
         \x20   }}\n\
         }}\n",
        i = ctx.index,
    );
    let test = ctx.covered.then(|| TestShape::Standard {
        class: class.clone(),
        entry: "run".into(),
        expected: "ok".into(),
        config_key: None,
        setup: vec![],
        extra_asserts: vec![],
    });
    finish(
        ctx,
        StructureKind::LoopException,
        "Committer",
        source,
        vec![SeededBug::MissingCap],
        vec![],
        "run",
        vec![exc.clone()],
        test,
        vec![],
    )
}

/// A missing-delay retry loop (bounded attempts, no backoff).
pub fn loop_missing_delay(ctx: &Ctx) -> StructureBuild {
    let class = ctx.class("Uploader");
    let exc = &ctx.exception;
    let comment = ctx.head_comment("the upload");
    let counter = if ctx.keyword { "retry" } else { "round" };
    let source = format!(
        "{comment}\n\
         class {class} {{\n\
         \x20   field maxAttempts = 30;\n\
         \x20   method send{i}() throws {exc} {{ return \"ok\"; }}\n\
         \x20   method run() throws {exc} {{\n\
         \x20       for (var {counter} = 0; {counter} < this.maxAttempts; {counter} = {counter} + 1) {{\n\
         \x20           try {{ return this.send{i}(); }}\n\
         \x20           catch ({exc} e) {{ log(\"attempt \" + {counter} + \" failed, going again immediately\"); }}\n\
         \x20       }}\n\
         \x20       throw new {exc}(\"{class}: giving up\");\n\
         \x20   }}\n\
         }}\n",
        i = ctx.index,
    );
    let test = ctx.covered.then(|| TestShape::Standard {
        class: class.clone(),
        entry: "run".into(),
        expected: "ok".into(),
        config_key: None,
        setup: vec![],
        extra_asserts: vec![],
    });
    finish(
        ctx,
        StructureKind::LoopException,
        "Uploader",
        source,
        vec![SeededBug::MissingDelay],
        vec![],
        "run",
        vec![exc.clone()],
        test,
        vec![],
    )
}

/// HOW bug: the catch block logs state through an object that is only
/// allocated by the failing call (the §4.1 HDFS NullPointerException story).
pub fn loop_how_npe(ctx: &Ctx) -> StructureBuild {
    let class = ctx.class("BlockReader");
    let exc = &ctx.exception;
    let source = format!(
        "// Retry block-reader creation on transient socket errors.\n\
         class {class} {{\n\
         \x20   field conn;\n\
         \x20   field maxAttempts = 4;\n\
         \x20   method createReader{i}() throws {exc} {{\n\
         \x20       this.conn = new ReaderConn{short}{i}();\n\
         \x20       return \"ok\";\n\
         \x20   }}\n\
         \x20   method run() throws {exc} {{\n\
         \x20       for (var retry = 0; retry < this.maxAttempts; retry = retry + 1) {{\n\
         \x20           try {{ return this.createReader{i}(); }}\n\
         \x20           catch ({exc} e) {{\n\
         \x20               log(\"reader failed, peer=\" + this.conn.describe());\n\
         \x20               sleep(60);\n\
         \x20           }}\n\
         \x20       }}\n\
         \x20       throw new {exc}(\"{class}: giving up\");\n\
         \x20   }}\n\
         }}\n\
         class ReaderConn{short}{i} {{\n\
         \x20   field peer = \"dn-1\";\n\
         \x20   method describe() {{ return this.peer; }}\n\
         }}\n",
        i = ctx.index,
        short = ctx.short,
    );
    let test = ctx.covered.then(|| TestShape::Standard {
        class: class.clone(),
        entry: "run".into(),
        expected: "ok".into(),
        config_key: None,
        setup: vec![],
        extra_asserts: vec![],
    });
    finish(
        ctx,
        StructureKind::LoopException,
        "BlockReader",
        source,
        vec![SeededBug::How],
        vec![],
        "run",
        vec![exc.clone()],
        test,
        vec![],
    )
}

/// HOW bug: partial state from a failed attempt is not cleaned up, so the
/// retry dies with a different exception (the HBASE-20616 shape).
pub fn loop_how_state_reset(ctx: &Ctx) -> StructureBuild {
    let class = ctx.class("LayoutBuilder");
    let exc = &ctx.exception;
    let source = format!(
        "// Retry filesystem-layout creation on transient store errors.\n\
         class {class} {{\n\
         \x20   field marker = false;\n\
         \x20   field maxAttempts = 5;\n\
         \x20   method prepare{i}() throws FileExistsException {{\n\
         \x20       if (this.marker) {{ throw new FileExistsException(\"layout already present\"); }}\n\
         \x20       this.marker = true;\n\
         \x20   }}\n\
         \x20   method finish{i}() throws {exc} {{ return \"ok\"; }}\n\
         \x20   method run() throws {exc} {{\n\
         \x20       for (var retry = 0; retry < this.maxAttempts; retry = retry + 1) {{\n\
         \x20           try {{\n\
         \x20               this.prepare{i}();\n\
         \x20               return this.finish{i}();\n\
         \x20           }}\n\
         \x20           catch ({exc} e) {{ sleep(80); }}\n\
         \x20       }}\n\
         \x20       throw new {exc}(\"{class}: giving up\");\n\
         \x20   }}\n\
         }}\n",
        i = ctx.index,
    );
    let test = ctx.covered.then(|| TestShape::Standard {
        class: class.clone(),
        entry: "run".into(),
        expected: "ok".into(),
        config_key: None,
        setup: vec![],
        extra_asserts: vec![],
    });
    finish(
        ctx,
        StructureKind::LoopException,
        "LayoutBuilder",
        source,
        vec![SeededBug::How],
        vec![],
        "run",
        vec![exc.clone()],
        test,
        vec![],
    )
}

/// HOW bug: job tracking leaks an entry per retry attempt (the SPARK-27630
/// shape); the covering test asserts no leaked registrations.
pub fn loop_how_tracking(ctx: &Ctx) -> StructureBuild {
    let class = ctx.class("StageRunner");
    let exc = &ctx.exception;
    let source = format!(
        "// Retry stage submission on transient scheduler errors.\n\
         class {class} {{\n\
         \x20   field active;\n\
         \x20   field maxAttempts = 3;\n\
         \x20   method init() {{ this.active = list(); }}\n\
         \x20   method submit{i}(stage) throws {exc} {{ return \"ok\"; }}\n\
         \x20   method run() throws {exc} {{\n\
         \x20       for (var retry = 0; retry < this.maxAttempts; retry = retry + 1) {{\n\
         \x20           this.active.add(\"stage-7\");\n\
         \x20           try {{\n\
         \x20               var r = this.submit{i}(\"stage-7\");\n\
         \x20               this.active.remove(\"stage-7\");\n\
         \x20               return r;\n\
         \x20           }}\n\
         \x20           catch ({exc} e) {{ sleep(30); }}\n\
         \x20       }}\n\
         \x20       throw new {exc}(\"{class}: giving up\");\n\
         \x20   }}\n\
         }}\n",
        i = ctx.index,
    );
    let test = ctx.covered.then(|| TestShape::Standard {
        class: class.clone(),
        entry: "run".into(),
        expected: "ok".into(),
        config_key: None,
        setup: vec![],
        extra_asserts: vec![
            "assert(s.active.size() == 0, \"no leaked stage registrations\");".to_string(),
        ],
    });
    finish(
        ctx,
        StructureKind::LoopException,
        "StageRunner",
        source,
        vec![SeededBug::How],
        vec![],
        "run",
        vec![exc.clone()],
        test,
        vec![],
    )
}

/// Harness-swallow trap: correct cap, but the covering test submits many
/// tasks and swallows failures — dynamic missing-cap FP (§4.3).
pub fn loop_harness_swallow(ctx: &Ctx) -> StructureBuild {
    let class = ctx.class("TaskSender");
    let exc = &ctx.exception;
    let source = format!(
        "// Retry task dispatch on transient timeouts (bounded attempts).\n\
         class {class} {{\n\
         \x20   field maxAttempts = 2;\n\
         \x20   method send{i}(task) throws {exc} {{ return \"ok\"; }}\n\
         \x20   method process(task) throws {exc} {{\n\
         \x20       for (var retry = 0; retry < this.maxAttempts; retry = retry + 1) {{\n\
         \x20           try {{ return this.send{i}(task); }}\n\
         \x20           catch ({exc} e) {{ log(\"retrying task \" + task); }}\n\
         \x20           sleep(2);\n\
         \x20       }}\n\
         \x20       throw new {exc}(\"task \" + task + \" failed\");\n\
         \x20   }}\n\
         }}\n",
        i = ctx.index,
    );
    let test = Some(TestShape::Harness {
        class: class.clone(),
        entry: "process".into(),
        exception: exc.clone(),
        tasks: 60,
    });
    finish(
        ctx,
        StructureKind::LoopException,
        "TaskSender",
        source,
        vec![],
        vec![Trap::HarnessSwallow],
        "process",
        vec![exc.clone()],
        test,
        vec![],
    )
}

/// Replica-switch trap: no delay between attempts, but each attempt pings a
/// different replica, so none is needed — dynamic missing-delay FP (§4.3).
/// A dead sleep keeps the LLM's Q2 answer positive.
pub fn loop_replica_switch(ctx: &Ctx) -> StructureBuild {
    let class = ctx.class("ReplicaReader");
    let exc = &ctx.exception;
    let source = format!(
        "// Retry the read against the next replica on failure.\n\
         class {class} {{\n\
         \x20   field replicas;\n\
         \x20   method init() {{\n\
         \x20       this.replicas = list();\n\
         \x20       this.replicas.add(\"dn-1\"); this.replicas.add(\"dn-2\"); this.replicas.add(\"dn-3\");\n\
         \x20   }}\n\
         \x20   method read{i}(node) throws {exc} {{ return \"ok\"; }}\n\
         \x20   method run() throws {exc} {{\n\
         \x20       if (this.replicas.size() == 0) {{ sleep(100); }}\n\
         \x20       var maxTries = this.replicas.size() * 2;\n\
         \x20       for (var retry = 0; retry < maxTries; retry = retry + 1) {{\n\
         \x20           var node = this.replicas.get(retry % this.replicas.size());\n\
         \x20           try {{ return this.read{i}(node); }}\n\
         \x20           catch ({exc} e) {{ log(\"switching replica away from \" + node); }}\n\
         \x20       }}\n\
         \x20       throw new {exc}(\"all replicas failed\");\n\
         \x20   }}\n\
         }}\n",
        i = ctx.index,
    );
    let test = ctx.covered.then(|| TestShape::Standard {
        class: class.clone(),
        entry: "run".into(),
        expected: "ok".into(),
        config_key: None,
        setup: vec![],
        extra_asserts: vec![],
    });
    finish(
        ctx,
        StructureKind::LoopException,
        "ReplicaReader",
        source,
        vec![],
        vec![Trap::ReplicaSwitch],
        "run",
        vec![exc.clone()],
        test,
        vec![],
    )
}

/// Wrap-rethrow trap: a second catch wraps unexpected transport errors in a
/// general exception — the different-exception oracle flags the wrapper
/// (dynamic HOW FP, §4.3). `WireException extends TransportError`.
pub fn loop_wrap_rethrow(ctx: &Ctx) -> StructureBuild {
    let class = ctx.class("WireClient");
    let source = format!(
        "// Retry wire calls on transient wire errors (bounded attempts).\n\
         class {class} {{\n\
         \x20   field maxAttempts = 4;\n\
         \x20   method call{i}() throws WireException, TransportError {{ return \"ok\"; }}\n\
         \x20   method run() throws WireException {{\n\
         \x20       for (var retry = 0; retry < this.maxAttempts; retry = retry + 1) {{\n\
         \x20           try {{ return this.call{i}(); }}\n\
         \x20           catch (WireException e) {{ sleep(70); }}\n\
         \x20           catch (TransportError e) {{ throw new WrapperException(\"unrecoverable transport failure\", e); }}\n\
         \x20       }}\n\
         \x20       throw new WireException(\"{class}: giving up\");\n\
         \x20   }}\n\
         }}\n",
        i = ctx.index,
    );
    let test = ctx.covered.then(|| TestShape::Standard {
        class: class.clone(),
        entry: "run".into(),
        expected: "ok".into(),
        config_key: None,
        setup: vec![],
        extra_asserts: vec![],
    });
    finish(
        ctx,
        StructureKind::LoopException,
        "WireClient",
        source,
        vec![],
        vec![Trap::WrapRethrow],
        "run",
        vec!["WireException".into(), "TransportError".into()],
        test,
        vec![],
    )
}

/// Cap-helper trap: the cap lives in a policy object defined in another
/// file, so the LLM's single-file Q3 sees no cap (LLM missing-cap FP).
pub fn loop_cap_helper(ctx: &Ctx) -> StructureBuild {
    let class = ctx.class("Mover");
    let policy = format!("MovePolicy{}{:03}", ctx.short, ctx.index);
    let exc = &ctx.exception;
    let comment = ctx.head_comment("the move");
    let source = format!(
        "{comment}\n\
         class {class} {{\n\
         \x20   field policy;\n\
         \x20   field attempts = 0;\n\
         \x20   method init() {{ this.policy = new {policy}(); }}\n\
         \x20   method move{i}() throws {exc} {{ return \"ok\"; }}\n\
         \x20   method run() throws {exc} {{\n\
         \x20       while (true) {{\n\
         \x20           try {{ return this.move{i}(); }}\n\
         \x20           catch ({exc} e) {{\n\
         \x20               this.attempts = this.attempts + 1;\n\
         \x20               if (this.policy.exceeded(this.attempts)) {{ throw new {exc}(\"{class}: giving up\"); }}\n\
         \x20               sleep(90);\n\
         \x20           }}\n\
         \x20       }}\n\
         \x20   }}\n\
         }}\n",
        i = ctx.index,
    );
    let helper_source = format!(
        "// Give-up policy for {class} moves.\n\
         class {policy} {{\n\
         \x20   field budget = 4;\n\
         \x20   method exceeded(n) {{ return n >= this.budget; }}\n\
         }}\n"
    );
    let helper_path = format!(
        "src/policy_{}_{:03}.jav",
        ctx.short.to_lowercase(),
        ctx.index
    );
    let test = ctx.covered.then(|| TestShape::Standard {
        class: class.clone(),
        entry: "run".into(),
        expected: "ok".into(),
        config_key: None,
        setup: vec![],
        extra_asserts: vec![],
    });
    finish(
        ctx,
        StructureKind::LoopException,
        "Mover",
        source,
        vec![],
        vec![Trap::HelperCapElsewhere],
        "run",
        vec![exc.clone()],
        test,
        vec![(helper_path, helper_source)],
    )
}

/// Sleep-helper trap: the backoff lives in a helper defined in another file
/// (LLM missing-delay FP via single-file blindness).
pub fn loop_sleep_helper(ctx: &Ctx) -> StructureBuild {
    let class = ctx.class("Syncer");
    let helper = format!("SyncBackoff{}{:03}", ctx.short, ctx.index);
    let exc = &ctx.exception;
    let comment = ctx.head_comment("the sync");
    let source = format!(
        "{comment}\n\
         class {class} {{\n\
         \x20   field helper;\n\
         \x20   field maxAttempts = 5;\n\
         \x20   method init() {{ this.helper = new {helper}(); }}\n\
         \x20   method sync{i}() throws {exc} {{ return \"ok\"; }}\n\
         \x20   method run() throws {exc} {{\n\
         \x20       for (var retry = 0; retry < this.maxAttempts; retry = retry + 1) {{\n\
         \x20           try {{ return this.sync{i}(); }}\n\
         \x20           catch ({exc} e) {{ this.helper.pause(retry); }}\n\
         \x20       }}\n\
         \x20       throw new {exc}(\"{class}: giving up\");\n\
         \x20   }}\n\
         }}\n",
        i = ctx.index,
    );
    let helper_source = format!(
        "// Backoff helper for {class}.\n\
         class {helper} {{\n\
         \x20   method pause(n) {{ sleep(50 * (n + 1)); }}\n\
         }}\n"
    );
    let helper_path = format!(
        "src/backoff_{}_{:03}.jav",
        ctx.short.to_lowercase(),
        ctx.index
    );
    let test = ctx.covered.then(|| TestShape::Standard {
        class: class.clone(),
        entry: "run".into(),
        expected: "ok".into(),
        config_key: None,
        setup: vec![],
        extra_asserts: vec![],
    });
    finish(
        ctx,
        StructureKind::LoopException,
        "Syncer",
        source,
        vec![],
        vec![Trap::HelperSleepElsewhere],
        "run",
        vec![exc.clone()],
        test,
        vec![(helper_path, helper_source)],
    )
}

/// Error-code retry loop: no exceptions, so exception injection cannot test
/// it (the Table 5 coverage gap for Hive/ElasticSearch). `buggy` seeds an
/// LLM-visible WHEN bug.
pub fn loop_errcode(ctx: &Ctx, bug: Option<SeededBug>) -> StructureBuild {
    let class = ctx.class("CodeSubmitter");
    let (loop_header, sleep_stmt, bugs) = match bug {
        Some(SeededBug::MissingCap) => (
            "while (true) {".to_string(),
            "            sleep(25);\n".to_string(),
            vec![SeededBug::MissingCap],
        ),
        Some(SeededBug::MissingDelay) => (
            "for (var round = 0; round < this.maxAttempts; round = round + 1) {".to_string(),
            String::new(),
            vec![SeededBug::MissingDelay],
        ),
        _ => (
            "for (var round = 0; round < this.maxAttempts; round = round + 1) {".to_string(),
            "            sleep(25);\n".to_string(),
            vec![],
        ),
    };
    let source = format!(
        "// Retry the submission when the store answers with a transient error code.\n\
         class {class} {{\n\
         \x20   field maxAttempts = 8;\n\
         \x20   method submit{i}() {{ return \"OK\"; }}\n\
         \x20   method run() {{\n\
         \x20       {loop_header}\n\
         \x20           var code = this.submit{i}();\n\
         \x20           if (code == \"OK\") {{ return code; }}\n\
         \x20           log(\"got error code \" + code + \", retrying\");\n\
         {sleep_stmt}\
         \x20       }}\n\
         \x20       return \"FAILED\";\n\
         \x20   }}\n\
         }}\n",
        i = ctx.index,
    );
    finish(
        ctx,
        StructureKind::LoopErrorCode,
        "CodeSubmitter",
        source,
        bugs,
        vec![],
        "run",
        vec![],
        None,
        vec![],
    )
}

/// Queue-based retry (asynchronous task re-enqueueing, the HIVE-23894
/// shape). `bug` seeds an LLM-visible WHEN bug.
pub fn queue_structure(ctx: &Ctx, bug: Option<SeededBug>) -> StructureBuild {
    let task = ctx.class("WorkItem");
    let class = ctx.class("WorkProcessor");
    let exc = &ctx.exception;
    let (requeue, cap_check, bugs) = match bug {
        Some(SeededBug::MissingCap) => (
            "this.workQueue.putDelayed(item, 40);".to_string(),
            String::new(),
            vec![SeededBug::MissingCap],
        ),
        Some(SeededBug::MissingDelay) => (
            "this.workQueue.put(item);".to_string(),
            format!(
                "                item.attempts = item.attempts + 1;\n\
                 \x20               if (item.attempts >= this.maxAttempts) {{ throw new {exc}(\"item failed permanently\"); }}\n"
            ),
            vec![SeededBug::MissingDelay],
        ),
        _ => (
            "this.workQueue.putDelayed(item, 40);".to_string(),
            format!(
                "                item.attempts = item.attempts + 1;\n\
                 \x20               if (item.attempts >= this.maxAttempts) {{ throw new {exc}(\"item failed permanently\"); }}\n"
            ),
            vec![],
        ),
    };
    let source = format!(
        "// Failed work items are resubmitted to the queue for another pass.\n\
         class {task} {{\n\
         \x20   field attempts = 0;\n\
         \x20   field done = false;\n\
         \x20   method execute{i}() throws {exc} {{ this.done = true; return \"ok\"; }}\n\
         }}\n\
         class {class} {{\n\
         \x20   field workQueue;\n\
         \x20   field maxAttempts = 5;\n\
         \x20   method init() {{ this.workQueue = queue(); }}\n\
         \x20   method submit(item) {{ this.workQueue.put(item); }}\n\
         \x20   method drain() throws {exc} {{\n\
         \x20       while (!this.workQueue.isEmpty()) {{\n\
         \x20           var item = this.workQueue.take();\n\
         \x20           try {{ item.execute{i}(); }}\n\
         \x20           catch ({exc} e) {{\n\
         {cap_check}\
         \x20               {requeue}\n\
         \x20           }}\n\
         \x20       }}\n\
         \x20       return \"done\";\n\
         \x20   }}\n\
         }}\n",
        i = ctx.index,
    );
    let test = ctx.covered.then(|| TestShape::Standard {
        class: class.clone(),
        entry: "drain".into(),
        expected: "done".into(),
        config_key: None,
        setup: vec![format!("var item = new {task}(); s.submit(item);")],
        extra_asserts: vec!["assert(item.done, \"submitted item completes\");".to_string()],
    });
    finish(
        ctx,
        StructureKind::Queue,
        "WorkProcessor",
        source,
        bugs,
        vec![],
        "drain",
        vec![exc.clone()],
        test,
        vec![],
    )
}

/// State-machine procedure retry (the HBASE-20492 shape). `bug` seeds an
/// LLM-visible WHEN bug.
pub fn fsm_structure(ctx: &Ctx, bug: Option<SeededBug>) -> StructureBuild {
    let class = ctx.class("Procedure");
    let exc = &ctx.exception;
    let (cap_check, sleep_stmt, bugs) = match bug {
        Some(SeededBug::MissingCap) => (
            String::new(),
            "                    sleep(45);\n".to_string(),
            vec![SeededBug::MissingCap],
        ),
        Some(SeededBug::MissingDelay) => (
            format!(
                "                    this.attempts = this.attempts + 1;\n\
                 \x20                   if (this.attempts >= this.maxAttempts) {{ throw new {exc}(\"procedure aborted\"); }}\n"
            ),
            String::new(),
            vec![SeededBug::MissingDelay],
        ),
        _ => (
            format!(
                "                    this.attempts = this.attempts + 1;\n\
                 \x20                   if (this.attempts >= this.maxAttempts) {{ throw new {exc}(\"procedure aborted\"); }}\n"
            ),
            "                    sleep(45);\n".to_string(),
            vec![],
        ),
    };
    let source = format!(
        "// A state-machine procedure; failed steps stay in the same state.\n\
         class {class} {{\n\
         \x20   field state = \"DISPATCH\";\n\
         \x20   field attempts = 0;\n\
         \x20   field maxAttempts = 5;\n\
         \x20   field finished = false;\n\
         \x20   method mark{i}() throws {exc} {{ return \"ok\"; }}\n\
         \x20   method step() throws {exc} {{\n\
         \x20       switch (this.state) {{\n\
         \x20           case \"DISPATCH\": {{\n\
         \x20               try {{ this.mark{i}(); this.state = \"FINISH\"; }}\n\
         \x20               catch ({exc} e) {{\n\
         \x20                   // Stay in DISPATCH so the executor will retry this step.\n\
         {cap_check}\
         {sleep_stmt}\
         \x20               }}\n\
         \x20           }}\n\
         \x20           case \"FINISH\": {{ this.finished = true; }}\n\
         \x20       }}\n\
         \x20       return null;\n\
         \x20   }}\n\
         \x20   method drive() throws {exc} {{\n\
         \x20       while (!this.finished) {{ this.step(); }}\n\
         \x20       return \"done\";\n\
         \x20   }}\n\
         }}\n",
        i = ctx.index,
    );
    let test = ctx.covered.then(|| TestShape::Standard {
        class: class.clone(),
        entry: "drive".into(),
        expected: "done".into(),
        config_key: None,
        setup: vec![],
        extra_asserts: vec![],
    });
    finish(
        ctx,
        StructureKind::StateMachine,
        "Procedure",
        source,
        bugs,
        vec![],
        "step",
        vec![exc.clone()],
        test,
        vec![],
    )
}

/// Poll-loop trap file (not retry; LLM Q1 bait).
pub fn poll_trap_file(short: &str, index: usize) -> (String, String) {
    let class = format!("StatusMonitor{short}{index:03}");
    let source = format!(
        "// Watches job status until the coordinator reports completion.\n\
         class {class} {{\n\
         \x20   field rounds = 0;\n\
         \x20   method pollStatus() {{\n\
         \x20       this.rounds = this.rounds + 1;\n\
         \x20       if (this.rounds >= 3) {{ return \"done\"; }}\n\
         \x20       return \"busy\";\n\
         \x20   }}\n\
         \x20   method watch() {{\n\
         \x20       var status = \"busy\";\n\
         \x20       while (status == \"busy\") {{\n\
         \x20           status = this.pollStatus();\n\
         \x20           sleep(10);\n\
         \x20       }}\n\
         \x20       return status;\n\
         \x20   }}\n\
         }}\n"
    );
    (
        format!("src/misc/status_monitor_{}_{index:03}.jav", short.to_lowercase()),
        source,
    )
}

/// Retry-named-parameter parser trap file (not retry; LLM Q1 bait).
pub fn param_trap_file(short: &str, index: usize) -> (String, String) {
    let class = format!("RequestParser{short}{index:03}");
    let source = format!(
        "// Parses request options token by token.\n\
         class {class} {{\n\
         \x20   method parse(tokens) {{\n\
         \x20       var retryOnConflict = 0;\n\
         \x20       var i = 0;\n\
         \x20       while (i < tokens.size()) {{\n\
         \x20           var t = tokens.get(i);\n\
         \x20           if (t == \"retry_on_conflict\") {{ retryOnConflict = 1; }}\n\
         \x20           i = i + 1;\n\
         \x20       }}\n\
         \x20       return retryOnConflict;\n\
         \x20   }}\n\
         }}\n"
    );
    (
        format!("src/misc/request_parser_{}_{index:03}.jav", short.to_lowercase()),
        source,
    )
}

/// Lock-acquire trap file: a keyword-named loop whose catch reaches the
/// header — CodeQL identifies it, but it is lock spinning, not retry.
pub fn lock_trap_file(short: &str, index: usize) -> (String, String) {
    let class = format!("LockManager{short}{index:03}");
    let source = format!(
        "// Attempts to obtain the shard lock a few times before giving up.\n\
         class {class} {{\n\
         \x20   method tryLock{index}() throws LockException {{ return \"held\"; }}\n\
         \x20   method acquire() {{\n\
         \x20       for (var retries = 0; retries < 3; retries = retries + 1) {{\n\
         \x20           try {{ return this.tryLock{index}(); }}\n\
         \x20           catch (LockException e) {{ }}\n\
         \x20       }}\n\
         \x20       log(\"could not obtain lock\");\n\
         \x20       return null;\n\
         \x20   }}\n\
         }}\n"
    );
    (
        format!("src/misc/lock_manager_{}_{index:03}.jav", short.to_lowercase()),
        source,
    )
}

/// A batch-iteration file: a loop that catches and logs per-item errors and
/// moves on — not retry, but its catch reaches the loop header, so the
/// unfiltered control-flow query reports it (the §4.4 keyword ablation's
/// 3.5x blow-up comes from loops like this).
pub fn iteration_file(short: &str, index: usize) -> (String, String) {
    let class = format!("BatchProcessor{short}{index:03}");
    let source = format!(
        "// Applies the transform to every item; bad items are logged and skipped.\n\
         class {class} {{\n\
         \x20   method transform{index}(item) throws IllegalArgumentException {{ return item; }}\n\
         \x20   method processAll(items) {{\n\
         \x20       var done = 0;\n\
         \x20       for (var i = 0; i < items.size(); i = i + 1) {{\n\
         \x20           try {{ this.transform{index}(items.get(i)); done = done + 1; }}\n\
         \x20           catch (IllegalArgumentException e) {{ log(\"skipping malformed item\"); }}\n\
         \x20       }}\n\
         \x20       return done;\n\
         \x20   }}\n\
         }}\n"
    );
    (
        format!("src/batch/batch_{}_{index:03}.jav", short.to_lowercase()),
        source,
    )
}

/// A non-retry utility filler file, padded deterministically.
pub fn filler_file(short: &str, index: usize) -> (String, String) {
    let class = format!("Util{short}{index:04}");
    let pad_lines = 18 + (index % 40);
    let mut padding = String::new();
    for j in 0..pad_lines {
        padding.push_str(&format!(
            "// note {j:03}: cache entries are promoted after two consecutive hits\n\
             // and demoted when the scan pointer wraps around the segment.\n"
        ));
    }
    let source = format!(
        "// Utility helpers for internal bookkeeping.\n\
         class {class} {{\n\
         \x20   method combine(a, b) {{ return a + b; }}\n\
         \x20   method scale(x) {{ return x * 3; }}\n\
         \x20   method label(n) {{ return \"item-\" + n; }}\n\
         \x20   method clampIndex(i, size) {{\n\
         \x20       if (i < 0) {{ return 0; }}\n\
         \x20       if (i >= size) {{ return size - 1; }}\n\
         \x20       return i;\n\
         \x20   }}\n\
         }}\n\
         {padding}"
    );
    (
        format!("src/util/util_{}_{index:04}.jav", short.to_lowercase()),
        source,
    )
}

// ---- Nested-retry amplification seeds (opt-in) ------------------------------

/// Opt-in amplification seed files: three genuine nested-retry sites
/// (same-method nesting, retrying `this` helper, cross-class through a
/// typed field) and three decoys that look similar but must NOT be
/// reported (sleep-only helper, plain nested loop, retrying helper called
/// outside the loop). Returned alongside their ground-truth labels so the
/// lint tests can score precision and recall mechanically.
///
/// These files are never part of the default corpus — extra retry loops
/// would shift the pinned identification totals — and are appended only by
/// [`crate::synth::generate_app_with_amp`].
pub fn amp_seed_files(short: &str) -> (Vec<(String, String)>, Vec<crate::truth::AmpSeed>) {
    use crate::truth::{AmpKind, AmpSeed};
    let mut files = Vec::new();
    let mut seeds = Vec::new();
    let lower = short.to_lowercase();
    let mut add = |stem: &str,
                   kind: AmpKind,
                   class: String,
                   inner: String,
                   expected_product: &str,
                   genuine: bool,
                   source: String| {
        let path = format!("src/amp_{lower}_{stem}.jav");
        seeds.push(AmpSeed {
            id: format!("{short}-amp-{stem}"),
            kind,
            coordinator: MethodId::new(class, "run"),
            file_path: path.clone(),
            inner,
            expected_product: expected_product.to_string(),
            genuine,
        });
        files.push((path, source));
    };

    // Genuine 1: loop-in-loop in the same method. 3 outer x 4 inner.
    let nest = format!("AmpNest{short}");
    add(
        "nest",
        AmpKind::NestedLoops,
        nest.clone(),
        format!("{nest}.run"),
        "12",
        true,
        format!(
            "// Retry the snapshot upload on transient failures.\n\
             class {nest} {{\n\
             \x20   method op() throws ConnectException {{ return 1; }}\n\
             \x20   method run() {{\n\
             \x20       for (var retries = 0; retries < 3; retries = retries + 1) {{\n\
             \x20           try {{\n\
             \x20               for (var retry = 0; retry < 4; retry = retry + 1) {{\n\
             \x20                   try {{ return this.op(); }}\n\
             \x20                   catch (ConnectException e) {{ sleep(5); }}\n\
             \x20               }}\n\
             \x20               throw new ConnectException(\"inner attempts exhausted\");\n\
             \x20           }} catch (ConnectException e) {{ sleep(50); }}\n\
             \x20       }}\n\
             \x20       return null;\n\
             \x20   }}\n\
             }}\n"
        ),
    );

    // Genuine 2: the loop retries a helper on `this` that retries again.
    // 3 outer x 4 inner.
    let helper = format!("AmpHelper{short}");
    add(
        "helper",
        AmpKind::HelperRetry,
        helper.clone(),
        format!("{helper}.persist"),
        "12",
        true,
        format!(
            "// Retry the manifest write on transient store failures.\n\
             class {helper} {{\n\
             \x20   method write() throws StoreException {{ return 1; }}\n\
             \x20   method persist() throws StoreException {{\n\
             \x20       for (var retry = 0; retry < 4; retry = retry + 1) {{\n\
             \x20           try {{ return this.write(); }}\n\
             \x20           catch (StoreException e) {{ sleep(10); }}\n\
             \x20       }}\n\
             \x20       throw new StoreException(\"write attempts exhausted\");\n\
             \x20   }}\n\
             \x20   method run() {{\n\
             \x20       for (var retries = 0; retries < 3; retries = retries + 1) {{\n\
             \x20           try {{ return this.persist(); }}\n\
             \x20           catch (StoreException e) {{ sleep(40); }}\n\
             \x20       }}\n\
             \x20       return null;\n\
             \x20   }}\n\
             }}\n"
        ),
    );

    // Genuine 3: cross-class through a typed field receiver. 3 outer x 5
    // inner.
    let store = format!("AmpStore{short}");
    let client = format!("AmpClient{short}");
    add(
        "cross",
        AmpKind::CrossClass,
        client.clone(),
        format!("{store}.save"),
        "15",
        true,
        format!(
            "// Retry the task checkpoint through the shared store.\n\
             class {store} {{\n\
             \x20   method put() throws TaskException {{ return 1; }}\n\
             \x20   method save() throws TaskException {{\n\
             \x20       for (var retry = 0; retry < 5; retry = retry + 1) {{\n\
             \x20           try {{ return this.put(); }}\n\
             \x20           catch (TaskException e) {{ sleep(8); }}\n\
             \x20       }}\n\
             \x20       throw new TaskException(\"save attempts exhausted\");\n\
             \x20   }}\n\
             }}\n\
             class {client} {{\n\
             \x20   field store = new {store}();\n\
             \x20   method run() {{\n\
             \x20       for (var retries = 0; retries < 3; retries = retries + 1) {{\n\
             \x20           try {{ return this.store.save(); }}\n\
             \x20           catch (TaskException e) {{ sleep(30); }}\n\
             \x20       }}\n\
             \x20       return null;\n\
             \x20   }}\n\
             }}\n"
        ),
    );

    // Decoy 1: the helper called from the catch only sleeps; no nested
    // retry exists.
    let sleepy = format!("AmpSleepy{short}");
    add(
        "sleepy",
        AmpKind::DecoySleepHelper,
        sleepy.clone(),
        format!("{sleepy}.backoff"),
        "",
        false,
        format!(
            "// Retry the heartbeat send with helper-managed backoff.\n\
             class {sleepy} {{\n\
             \x20   method send() throws ConnectException {{ return 1; }}\n\
             \x20   method backoff(n) {{ sleep(20 * n); }}\n\
             \x20   method run() {{\n\
             \x20       for (var retry = 0; retry < 6; retry = retry + 1) {{\n\
             \x20           try {{ return this.send(); }}\n\
             \x20           catch (ConnectException e) {{ this.backoff(retry); }}\n\
             \x20       }}\n\
             \x20       return null;\n\
             \x20   }}\n\
             }}\n"
        ),
    );

    // Decoy 2: the inner loop is a plain bounded scan, not a retry loop.
    let scan = format!("AmpScan{short}");
    add(
        "scan",
        AmpKind::DecoyPlainNested,
        scan.clone(),
        format!("{scan}.run"),
        "",
        false,
        format!(
            "// Retry the segment flush after scanning its pages.\n\
             class {scan} {{\n\
             \x20   method touch(i) {{ return i; }}\n\
             \x20   method flush() throws StoreException {{ return 1; }}\n\
             \x20   method run() {{\n\
             \x20       for (var retry = 0; retry < 3; retry = retry + 1) {{\n\
             \x20           try {{\n\
             \x20               for (var i = 0; i < 8; i = i + 1) {{ this.touch(i); }}\n\
             \x20               return this.flush();\n\
             \x20           }} catch (StoreException e) {{ sleep(15); }}\n\
             \x20       }}\n\
             \x20       return null;\n\
             \x20   }}\n\
             }}\n"
        ),
    );

    // Decoy 3: the retrying helper runs once, *before* the loop; the loop
    // itself only retries a plain call.
    let warm = format!("AmpWarm{short}");
    add(
        "warm",
        AmpKind::DecoyOutsideLoop,
        warm.clone(),
        format!("{warm}.warm"),
        "",
        false,
        format!(
            "// Warm the connection, then retry the fetch on failures.\n\
             class {warm} {{\n\
             \x20   method dial() throws ConnectException {{ return 1; }}\n\
             \x20   method fetch() throws ConnectException {{ return 2; }}\n\
             \x20   method warm() {{\n\
             \x20       for (var retry = 0; retry < 4; retry = retry + 1) {{\n\
             \x20           try {{ return this.dial(); }}\n\
             \x20           catch (ConnectException e) {{ sleep(5); }}\n\
             \x20       }}\n\
             \x20       return null;\n\
             \x20   }}\n\
             \x20   method run() {{\n\
             \x20       this.warm();\n\
             \x20       for (var retry = 0; retry < 3; retry = retry + 1) {{\n\
             \x20           try {{ return this.fetch(); }}\n\
             \x20           catch (ConnectException e) {{ sleep(25); }}\n\
             \x20       }}\n\
             \x20       return null;\n\
             \x20   }}\n\
             }}\n"
        ),
    );

    (files, seeds)
}

// ---- Retry-policy seeds for the abstract-interpretation checkers (opt-in) ---

/// Opt-in retry-policy seed files for the `W004`/`W005`/`W006` checkers:
/// six genuine policy bugs (a fatal-exception retry, two runaway backoff
/// shapes, and three ineffective-cap shapes) plus three decoys per
/// checker family that look similar but are correct and must stay quiet.
/// Returned alongside ground-truth labels so the lint gate can score
/// per-code precision and recall mechanically.
///
/// Like the amplification seeds, these files are never part of the
/// default corpus — extra retry loops would shift the pinned
/// identification totals — and are appended only by
/// [`crate::synth::append_policy_seeds`].
pub fn policy_seed_files(short: &str) -> (Vec<(String, String)>, Vec<crate::truth::PolicySeed>) {
    use crate::truth::PolicySeed;
    let mut files = Vec::new();
    let mut seeds = Vec::new();
    let lower = short.to_lowercase();
    let mut add = |stem: &str,
                   code: &'static str,
                   class: String,
                   genuine: bool,
                   source: String| {
        let path = format!("src/policy_{lower}_{stem}.jav");
        seeds.push(PolicySeed {
            id: format!("{short}-policy-{stem}"),
            code,
            coordinator: MethodId::new(class, "run"),
            file_path: path.clone(),
            genuine,
        });
        files.push((path, source));
    };

    // W004 genuine: the loop retries FileExistsException, which the
    // exception lattice classifies fatal — retrying cannot help.
    let fatal = format!("PolFatal{short}");
    add(
        "fatal",
        "W004",
        fatal.clone(),
        true,
        format!(
            "// Retry the layout creation until it sticks.\n\
             class {fatal} {{\n\
             \x20   method mkdir() throws FileExistsException {{ return 1; }}\n\
             \x20   method run() {{\n\
             \x20       for (var retry = 0; retry < 5; retry = retry + 1) {{\n\
             \x20           try {{ return this.mkdir(); }}\n\
             \x20           catch (FileExistsException e) {{ sleep(100); }}\n\
             \x20       }}\n\
             \x20       return null;\n\
             \x20   }}\n\
             }}\n"
        ),
    );

    // W004 decoy: same shape, but the retried exception is transient
    // (ConnectException) — retrying is exactly right.
    let fataldecoy = format!("PolTransient{short}");
    add(
        "fataldecoy",
        "W004",
        fataldecoy.clone(),
        false,
        format!(
            "// Retry the registration over a flaky link.\n\
             class {fataldecoy} {{\n\
             \x20   method register() throws ConnectException {{ return 1; }}\n\
             \x20   method run() {{\n\
             \x20       for (var retry = 0; retry < 5; retry = retry + 1) {{\n\
             \x20           try {{ return this.register(); }}\n\
             \x20           catch (ConnectException e) {{ sleep(100); }}\n\
             \x20       }}\n\
             \x20       return null;\n\
             \x20   }}\n\
             }}\n"
        ),
    );

    // W005 genuine: multiplicative backoff with no cap; within the huge
    // attempt bound the delay interval saturates i64 overflow.
    let grow = format!("PolGrow{short}");
    add(
        "grow",
        "W005",
        grow.clone(),
        true,
        format!(
            "// Back off between fetch attempts, doubling each time.\n\
             class {grow} {{\n\
             \x20   method fetch() throws TimeoutException {{ return 1; }}\n\
             \x20   method run() {{\n\
             \x20       var delay = 10;\n\
             \x20       var retries = 0;\n\
             \x20       while (retries < 1000000000) {{\n\
             \x20           try {{ return this.fetch(); }}\n\
             \x20           catch (TimeoutException e) {{\n\
             \x20               sleep(delay);\n\
             \x20               delay = delay * 2;\n\
             \x20               retries = retries + 1;\n\
             \x20           }}\n\
             \x20       }}\n\
             \x20       return null;\n\
             \x20   }}\n\
             }}\n"
        ),
    );

    // W005 genuine: tripling backoff whose bounded loop still reaches a
    // saturating overflow long before the attempt cap trips.
    let overflow = format!("PolOverflow{short}");
    add(
        "overflow",
        "W005",
        overflow.clone(),
        true,
        format!(
            "// Back off between store writes, tripling each time.\n\
             class {overflow} {{\n\
             \x20   method write() throws StoreException {{ return 1; }}\n\
             \x20   method run() {{\n\
             \x20       var delay = 10;\n\
             \x20       for (var retry = 0; retry < 200; retry = retry + 1) {{\n\
             \x20           try {{ return this.write(); }}\n\
             \x20           catch (StoreException e) {{ sleep(delay); delay = delay * 3; }}\n\
             \x20       }}\n\
             \x20       return null;\n\
             \x20   }}\n\
             }}\n"
        ),
    );

    // W005 decoy: the same doubling, but min-capped — the interval
    // narrows back to the cap, so the delay cannot run away.
    let growdecoy = format!("PolCapped{short}");
    add(
        "growdecoy",
        "W005",
        growdecoy.clone(),
        false,
        format!(
            "// Back off between poll attempts, doubling up to a cap.\n\
             class {growdecoy} {{\n\
             \x20   field capMs = 1000;\n\
             \x20   method poll() throws TimeoutException {{ return 1; }}\n\
             \x20   method run() {{\n\
             \x20       var delay = 25;\n\
             \x20       for (var retry = 0; retry < 16; retry = retry + 1) {{\n\
             \x20           try {{ return this.poll(); }}\n\
             \x20           catch (TimeoutException e) {{\n\
             \x20               sleep(delay);\n\
             \x20               delay = min(delay * 2, this.capMs);\n\
             \x20           }}\n\
             \x20       }}\n\
             \x20       return null;\n\
             \x20   }}\n\
             }}\n"
        ),
    );

    // W006 genuine: the guard compares a counter nothing updates — the
    // bound can never trip.
    let stuck = format!("PolStuck{short}");
    add(
        "stuck",
        "W006",
        stuck.clone(),
        true,
        format!(
            "// Retry the meta lookup a bounded number of times.\n\
             class {stuck} {{\n\
             \x20   method lookup() throws MetaException {{ return 1; }}\n\
             \x20   method run() {{\n\
             \x20       var retries = 0;\n\
             \x20       while (retries < 5) {{\n\
             \x20           try {{ return this.lookup(); }}\n\
             \x20           catch (MetaException e) {{ sleep(10); }}\n\
             \x20       }}\n\
             \x20       return null;\n\
             \x20   }}\n\
             }}\n"
        ),
    );

    // W006 genuine: the attempt bound comes from a config whose default
    // is 0, making the guard unreachable out of the box.
    let confzero = format!("PolConfZero{short}");
    add(
        "confzero",
        "W006",
        confzero.clone(),
        true,
        format!(
            "// Retry the task submission up to the configured budget.\n\
             config \"{lower}.policy.retries\" default 0;\n\
             class {confzero} {{\n\
             \x20   method submit() throws TaskException {{ return 1; }}\n\
             \x20   method run() {{\n\
             \x20       for (var retry = 0; retry < getConfig(\"{lower}.policy.retries\"); retry = retry + 1) {{\n\
             \x20           try {{ return this.submit(); }}\n\
             \x20           catch (TaskException e) {{ sleep(10); }}\n\
             \x20       }}\n\
             \x20       return null;\n\
             \x20   }}\n\
             }}\n"
        ),
    );

    // W006 genuine: a literal bound of one — the loop never actually
    // retries.
    let one = format!("PolOne{short}");
    add(
        "one",
        "W006",
        one.clone(),
        true,
        format!(
            "// Retry the socket open (the budget was tuned down to one).\n\
             class {one} {{\n\
             \x20   method open() throws SocketException {{ return 1; }}\n\
             \x20   method run() {{\n\
             \x20       for (var retry = 0; retry < 1; retry = retry + 1) {{\n\
             \x20           try {{ return this.open(); }}\n\
             \x20           catch (SocketException e) {{ sleep(10); }}\n\
             \x20       }}\n\
             \x20       return null;\n\
             \x20   }}\n\
             }}\n"
        ),
    );

    // W006 decoy: an ordinary well-formed cap; the interval proves five
    // attempts and the counter advances every iteration.
    let capok = format!("PolCapOk{short}");
    add(
        "capok",
        "W006",
        capok.clone(),
        false,
        format!(
            "// Retry the metadata refresh with a sane budget.\n\
             class {capok} {{\n\
             \x20   method refresh() throws MetaException {{ return 1; }}\n\
             \x20   method run() {{\n\
             \x20       for (var retry = 0; retry < 5; retry = retry + 1) {{\n\
             \x20           try {{ return this.refresh(); }}\n\
             \x20           catch (MetaException e) {{ sleep(10); }}\n\
             \x20       }}\n\
             \x20       return null;\n\
             \x20   }}\n\
             }}\n"
        ),
    );

    (files, seeds)
}
