//! Deterministic synthesis of the eight evaluation applications.
//!
//! For each [`AppSpec`], the generator:
//!
//! 1. builds a pool of structure *slots* per visibility bucket (small
//!    keyword loops, large-file loops, comment-only loops, error-code
//!    loops, queues, state machines);
//! 2. assigns bug/trap *roles* to slots following fixed preference orders
//!    (most-constrained roles first), panicking if a spec is infeasible —
//!    the spec unit tests keep all eight paper specs feasible;
//! 3. overlays the IF-ratio seeds onto clean exception loops;
//! 4. renders every slot through [`crate::templates`], then adds the
//!    exception/config declarations, trap files, filler files, covering
//!    tests, and filler tests.
//!
//! Generation is a pure function of the spec and scale — no clocks, no
//! global RNG — so every run produces byte-identical applications.

use crate::spec::{AppSpec, Scale};
use crate::templates::{self, Ctx, StructureBuild, TestShape};
use crate::truth::{
    AppTruth, FileTrap, FileTrapTruth, IfSeedTruth, SeededBug,
};
use std::collections::BTreeMap;
use wasabi_lang::project::Project;

/// A generated application: sources plus ground truth.
#[derive(Debug, Clone)]
pub struct GeneratedApp {
    /// The spec it was generated from.
    pub spec: AppSpec,
    /// `(path, source)` pairs, in deterministic order.
    pub files: Vec<(String, String)>,
    /// Ground truth for scoring.
    pub truth: AppTruth,
    /// Number of generated unit tests (scaled).
    pub tests_generated: usize,
    /// Number of generated covering tests (scaled).
    pub covering_tests: usize,
}

/// Compiles a generated app into a Javelin [`Project`].
///
/// # Panics
///
/// Panics when the generated sources fail to compile — that is a generator
/// bug, caught by the corpus tests.
pub fn compile_app(app: &GeneratedApp) -> Project {
    match Project::compile(app.spec.name, app.files.clone()) {
        Ok(project) => project,
        Err(errors) => {
            let rendered: Vec<String> = errors.iter().take(5).map(|e| e.to_string()).collect();
            panic!(
                "generated app `{}` failed to compile ({} errors): {}",
                app.spec.name,
                errors.len(),
                rendered.join("; ")
            );
        }
    }
}

/// Generates all eight paper applications at the given scale.
pub fn generate_all(scale: Scale) -> Vec<GeneratedApp> {
    crate::spec::paper_apps()
        .iter()
        .map(|spec| generate_app(spec, scale))
        .collect()
}

/// Generates an application and appends the opt-in nested-retry
/// amplification seeds (three genuine sites plus three decoys, labelled in
/// `truth.amp_seeds`).
///
/// Kept separate from [`generate_app`] on purpose: the amplification files
/// add retry loops, which would shift the pinned identification totals the
/// spec tests and the corpus digest check.
pub fn generate_app_with_amp(spec: &AppSpec, scale: Scale) -> GeneratedApp {
    let mut app = generate_app(spec, scale);
    let (files, seeds) = templates::amp_seed_files(spec.short);
    app.files.extend(files);
    app.truth.amp_seeds = seeds;
    app
}

/// Appends the opt-in retry-policy seeds (six genuine W004–W006 policy
/// bugs plus three decoys, labelled in `truth.policy_seeds`) to an
/// already-generated app. A separate appender rather than a generator
/// variant so it composes with the amplification extension: `--amp
/// --policy` stacks both seed families on one app.
pub fn append_policy_seeds(app: &mut GeneratedApp) {
    let (files, seeds) = templates::policy_seed_files(app.spec.short);
    app.files.extend(files);
    app.truth.policy_seeds = seeds;
}

// ---- Slot and role machinery ------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Bucket {
    Both,
    CqOnly,
    LlmKw,
    Err,
    Queue,
    Fsm,
}

struct Pool {
    free: BTreeMap<Bucket, usize>,
}

impl Pool {
    fn take(&mut self, prefs: &[Bucket]) -> Option<Bucket> {
        for bucket in prefs {
            let slot = self.free.get_mut(bucket)?;
            let _ = slot;
            if self.free[bucket] > 0 {
                *self.free.get_mut(bucket).expect("bucket exists") -= 1;
                return Some(*bucket);
            }
        }
        None
    }

    fn take_n(&mut self, n: usize, prefs: &[Bucket], role: &str) -> Vec<Bucket> {
        (0..n)
            .map(|_| {
                self.take(prefs).unwrap_or_else(|| {
                    panic!("spec infeasible: no slot left for role `{role}` (prefs {prefs:?})")
                })
            })
            .collect()
    }

    fn drain(&mut self) -> Vec<Bucket> {
        let mut out = Vec::new();
        for (bucket, count) in std::mem::take(&mut self.free) {
            for _ in 0..count {
                out.push(bucket);
            }
        }
        out
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    CapBoth,
    DelayBoth,
    CapHelper,
    SleepHelper,
    Harness,
    Replica,
    Wrap,
    How,
    CapDyn,
    DelayDyn,
    CapLlm,
    DelayLlm,
    CoveredClean,
    Clean,
}

/// The trigger-exception pool, cycled per structure.
const EXCEPTION_POOL: [&str; 6] = [
    "ConnectException",
    "SocketException",
    "TimeoutException",
    "MetaException",
    "TaskException",
    "StoreException",
];

/// Generates one application.
pub fn generate_app(spec: &AppSpec, scale: Scale) -> GeneratedApp {
    let mut pool = Pool {
        free: BTreeMap::from([
            (Bucket::Both, spec.loops_both),
            (Bucket::CqOnly, spec.loops_codeql_only),
            (Bucket::LlmKw, spec.loops_llm_only),
            (Bucket::Err, spec.loops_errcode),
            (Bucket::Queue, spec.queues),
            (Bucket::Fsm, spec.fsms),
        ]),
    };

    // Role assignment, most-constrained first (see module docs).
    let mut assignments: Vec<(Role, Bucket)> = Vec::new();
    let mut assign = |pool: &mut Pool, role: Role, n: usize, prefs: &[Bucket], tag: &str| {
        for bucket in pool.take_n(n, prefs, tag) {
            assignments.push((role, bucket));
        }
    };
    let b = &spec.bugs;
    let t = &spec.traps;
    assign(&mut pool, Role::CapBoth, b.cap_both, &[Bucket::Both], "cap-both");
    assign(&mut pool, Role::DelayBoth, b.delay_both, &[Bucket::Both], "delay-both");
    assign(
        &mut pool,
        Role::CapHelper,
        t.cap_helper_elsewhere,
        &[Bucket::LlmKw, Bucket::Err, Bucket::Both],
        "cap-helper",
    );
    assign(
        &mut pool,
        Role::SleepHelper,
        t.sleep_helper_elsewhere,
        &[Bucket::LlmKw, Bucket::Err, Bucket::Both],
        "sleep-helper",
    );
    assign(
        &mut pool,
        Role::Harness,
        t.harness_swallow,
        &[Bucket::Both, Bucket::CqOnly],
        "harness",
    );
    assign(
        &mut pool,
        Role::Replica,
        t.replica_switch,
        &[Bucket::Both, Bucket::CqOnly],
        "replica",
    );
    assign(
        &mut pool,
        Role::Wrap,
        t.wrap_rethrow,
        &[Bucket::Both, Bucket::CqOnly],
        "wrap",
    );
    assign(
        &mut pool,
        Role::How,
        b.how,
        &[Bucket::Both, Bucket::CqOnly],
        "how",
    );
    assign(&mut pool, Role::CapDyn, b.cap_dyn_only, &[Bucket::CqOnly], "cap-dyn");
    assign(
        &mut pool,
        Role::DelayDyn,
        b.delay_dyn_only,
        &[Bucket::CqOnly],
        "delay-dyn",
    );
    let llm_prefs = [
        Bucket::Queue,
        Bucket::Fsm,
        Bucket::Err,
        Bucket::LlmKw,
        Bucket::Both,
    ];
    assign(&mut pool, Role::CapLlm, b.cap_llm_only, &llm_prefs, "cap-llm");
    assign(&mut pool, Role::DelayLlm, b.delay_llm_only, &llm_prefs, "delay-llm");
    assign(
        &mut pool,
        Role::CoveredClean,
        spec.covered_clean,
        &[Bucket::CqOnly, Bucket::Both, Bucket::Queue, Bucket::Fsm],
        "covered-clean",
    );
    for bucket in pool.drain() {
        assignments.push((Role::Clean, bucket));
    }
    assert_eq!(
        assignments.len(),
        spec.total_structures(),
        "slot accounting drifted for {}",
        spec.short
    );

    // IF-seed overlays ride on clean exception loops: retried overlays need
    // hosts that already sleep (clean loops do); non-retried overlays are
    // textually inert.
    let mut overlays: Vec<Option<(String, bool, bool)>> = Vec::new();
    for seed in spec.if_seeds {
        let genuine_retried = seed.r - seed.flag_fakes;
        for _ in 0..genuine_retried {
            overlays.push(Some((seed.exception.to_string(), true, false)));
        }
        for _ in 0..seed.flag_fakes {
            overlays.push(Some((seed.exception.to_string(), true, true)));
        }
        for _ in 0..(seed.n - seed.r) {
            overlays.push(Some((seed.exception.to_string(), false, false)));
        }
    }
    overlays.reverse(); // Pop from the front of the declared order.

    // Render each assignment.
    let mut builds: Vec<StructureBuild> = Vec::new();
    let mut how_variant = 0usize;
    for (index, (role, bucket)) in assignments.iter().enumerate() {
        let keyword = !matches!(bucket, Bucket::LlmKw | Bucket::Err);
        let large_file = *bucket == Bucket::CqOnly;
        let exception = EXCEPTION_POOL[index % EXCEPTION_POOL.len()].to_string();
        let covered = matches!(
            role,
            Role::CapBoth
                | Role::DelayBoth
                | Role::Harness
                | Role::Replica
                | Role::Wrap
                | Role::How
                | Role::CapDyn
                | Role::DelayDyn
                | Role::CoveredClean
        );
        // Clean loops in loop buckets host IF overlays; every third covered
        // clean loop reads its cap from a config key (exercising the
        // planner's config-restoration pass).
        let is_clean_loop = matches!(role, Role::Clean | Role::CoveredClean)
            && matches!(bucket, Bucket::Both | Bucket::CqOnly | Bucket::LlmKw);
        let if_overlay = if is_clean_loop { overlays.pop().flatten() } else { None };
        let config_key = if *role == Role::CoveredClean
            && matches!(bucket, Bucket::Both | Bucket::CqOnly)
            && index % 3 == 0
        {
            Some(format!("{}.worker{index}.retry.max.attempts", spec.name))
        } else {
            None
        };
        let ctx = Ctx {
            short: spec.short.to_string(),
            index,
            exception,
            keyword,
            large_file,
            covered,
            if_overlay,
            config_key,
        };
        let build = match (role, bucket) {
            (Role::CapBoth | Role::CapDyn, _) => templates::loop_missing_cap(&ctx),
            (Role::DelayBoth | Role::DelayDyn, _) => templates::loop_missing_delay(&ctx),
            (Role::CapHelper, _) => templates::loop_cap_helper(&ctx),
            (Role::SleepHelper, _) => templates::loop_sleep_helper(&ctx),
            (Role::Harness, _) => templates::loop_harness_swallow(&ctx),
            (Role::Replica, _) => templates::loop_replica_switch(&ctx),
            (Role::Wrap, _) => templates::loop_wrap_rethrow(&ctx),
            (Role::How, _) => {
                how_variant += 1;
                match how_variant % 3 {
                    1 => templates::loop_how_npe(&ctx),
                    2 => templates::loop_how_state_reset(&ctx),
                    _ => templates::loop_how_tracking(&ctx),
                }
            }
            (Role::CapLlm, Bucket::Queue) => {
                templates::queue_structure(&ctx, Some(SeededBug::MissingCap))
            }
            (Role::CapLlm, Bucket::Fsm) => {
                templates::fsm_structure(&ctx, Some(SeededBug::MissingCap))
            }
            (Role::CapLlm, Bucket::Err) => {
                templates::loop_errcode(&ctx, Some(SeededBug::MissingCap))
            }
            (Role::CapLlm, _) => templates::loop_missing_cap(&ctx),
            (Role::DelayLlm, Bucket::Queue) => {
                templates::queue_structure(&ctx, Some(SeededBug::MissingDelay))
            }
            (Role::DelayLlm, Bucket::Fsm) => {
                templates::fsm_structure(&ctx, Some(SeededBug::MissingDelay))
            }
            (Role::DelayLlm, Bucket::Err) => {
                templates::loop_errcode(&ctx, Some(SeededBug::MissingDelay))
            }
            (Role::DelayLlm, _) => templates::loop_missing_delay(&ctx),
            (Role::CoveredClean | Role::Clean, Bucket::Queue) => {
                templates::queue_structure(&ctx, None)
            }
            (Role::CoveredClean | Role::Clean, Bucket::Fsm) => {
                templates::fsm_structure(&ctx, None)
            }
            (Role::CoveredClean | Role::Clean, Bucket::Err) => {
                templates::loop_errcode(&ctx, None)
            }
            (Role::CoveredClean | Role::Clean, _) => templates::loop_clean(&ctx),
        };
        builds.push(build);
    }
    assert!(
        overlays.is_empty(),
        "spec {}: not enough clean exception loops to host IF seeds ({} left)",
        spec.short,
        overlays.len()
    );

    // ---- Assemble files ---------------------------------------------------
    let mut files: Vec<(String, String)> = Vec::new();
    files.push((
        "src/exceptions.jav".to_string(),
        exceptions_file(spec),
    ));

    let mut config_decls = String::from("// Application configuration defaults.\n");
    let mut truth = AppTruth {
        app: spec.short.to_string(),
        ..AppTruth::default()
    };
    for seed in spec.if_seeds {
        truth.if_seeds.push(IfSeedTruth {
            exception: seed.exception.to_string(),
            n: seed.n,
            r: seed.r,
            genuine: seed.genuine,
        });
    }

    let mut test_shapes: Vec<TestShape> = Vec::new();
    for build in builds {
        if let Some(TestShape::Standard {
            config_key: Some(key),
            ..
        }) = &build.test
        {
            config_decls.push_str(&format!("config {key:?} default 5;\n"));
        }
        files.extend(build.files);
        if let Some(shape) = build.test {
            test_shapes.push(shape);
        }
        truth.structures.push(build.truth);
    }
    files.push(("src/config.jav".to_string(), config_decls));

    // Trap files.
    for i in 0..t.poll_files {
        let (path, source) = templates::poll_trap_file(spec.short, i);
        truth.file_traps.push(FileTrapTruth {
            file_path: path.clone(),
            trap: FileTrap::PollLoop,
        });
        files.push((path, source));
    }
    for i in 0..t.param_files {
        let (path, source) = templates::param_trap_file(spec.short, i);
        truth.file_traps.push(FileTrapTruth {
            file_path: path.clone(),
            trap: FileTrap::RetryNamedParam,
        });
        files.push((path, source));
    }
    for i in 0..t.lock_files {
        let (path, source) = templates::lock_trap_file(spec.short, i);
        truth.file_traps.push(FileTrapTruth {
            file_path: path.clone(),
            trap: FileTrap::LockAcquire,
        });
        files.push((path, source));
    }

    // Batch-iteration files (fixed count; §4.4 ablation fodder).
    for i in 0..spec.iteration_files {
        files.push(templates::iteration_file(spec.short, i));
    }

    // Filler source files.
    let filler_files = scale.scale(spec.filler_files, 4);
    for i in 0..filler_files {
        files.push(templates::filler_file(spec.short, i));
    }

    // ---- Tests -------------------------------------------------------------
    let covering_target = scale.scale(spec.tests_cover_retry, test_shapes.len().max(1));
    let (test_files, covering_tests, filler_tests) =
        render_tests(spec, &test_shapes, covering_target, scale, filler_files);
    let tests_generated = covering_tests + filler_tests;
    files.extend(test_files);

    GeneratedApp {
        spec: spec.clone(),
        files,
        truth,
        tests_generated,
        covering_tests,
    }
}

fn exceptions_file(spec: &AppSpec) -> String {
    let mut out = String::from("// Exception hierarchy for this application.\n");
    out.push_str("exception IOException;\n");
    for exc in EXCEPTION_POOL {
        if exc == "ConnectException" || exc == "SocketException" {
            out.push_str(&format!("exception {exc} extends IOException;\n"));
        } else {
            out.push_str(&format!("exception {exc};\n"));
        }
    }
    // Fixed types used by specific templates.
    out.push_str("exception TransportError;\n");
    out.push_str("exception WireException extends TransportError;\n");
    out.push_str("exception WrapperException;\n");
    out.push_str("exception FileExistsException;\n");
    out.push_str("exception LockException;\n");
    // Per-app IF-seed exceptions (builtins are not re-declared).
    for seed in spec.if_seeds {
        if !matches!(
            seed.exception,
            "IllegalArgumentException" | "IllegalStateException"
        ) {
            out.push_str(&format!("exception {};\n", seed.exception));
        }
    }
    out
}

/// Renders covering tests (spread round-robin over covered structures) and
/// filler tests; returns the files plus the covering and filler test counts.
fn render_tests(
    spec: &AppSpec,
    shapes: &[TestShape],
    covering_target: usize,
    scale: Scale,
    filler_files: usize,
) -> (Vec<(String, String)>, usize, usize) {
    let mut files = Vec::new();
    let mut covering_tests = 0usize;

    // Harness shapes get exactly one (special) test; standard shapes share
    // the remaining budget.
    let standard: Vec<&TestShape> = shapes
        .iter()
        .filter(|s| matches!(s, TestShape::Standard { .. }))
        .collect();
    let harness: Vec<&TestShape> = shapes
        .iter()
        .filter(|s| matches!(s, TestShape::Harness { .. }))
        .collect();
    let standard_budget = covering_target.saturating_sub(harness.len());
    let per_structure = if standard.is_empty() {
        0
    } else {
        (standard_budget / standard.len()).max(1)
    };

    for shape in &standard {
        let TestShape::Standard {
            class,
            entry,
            expected,
            config_key,
            setup,
            extra_asserts,
        } = shape
        else {
            unreachable!("filtered to standard shapes");
        };
        let mut body = String::new();
        body.push_str(&format!("// Unit tests for {class}.\n"));
        body.push_str(&format!("class {class}Tests {{\n"));
        for j in 0..per_structure {
            // A slice of tests restricts the retry config (§3.1.4), using
            // override value 1 so the un-pinned baseline still passes.
            let restrict = config_key.is_some()
                && j * 100 < per_structure * spec.config_restricting_pct;
            body.push_str(&format!("    test t{j:03}() {{\n"));
            if restrict {
                let key = config_key.as_deref().expect("restrict implies key");
                body.push_str(&format!("        setConfig({key:?}, 1);\n"));
            }
            body.push_str(&format!("        var s = new {class}();\n"));
            for line in setup {
                body.push_str(&format!("        {line}\n"));
            }
            body.push_str(&format!(
                "        assert(s.{entry}() == {expected:?}, \"{class} should succeed\");\n"
            ));
            for line in extra_asserts {
                body.push_str(&format!("        {line}\n"));
            }
            body.push_str("    }\n");
            covering_tests += 1;
        }
        body.push_str("}\n");
        files.push((
            format!("test/{}_tests.jav", class.to_lowercase()),
            body,
        ));
    }

    for shape in &harness {
        let TestShape::Harness {
            class,
            entry,
            exception,
            tasks,
        } = shape
        else {
            unreachable!("filtered to harness shapes");
        };
        let body = format!(
            "// Batch harness for {class}: failures of individual tasks are logged\n\
             // and the batch moves on.\n\
             class {class}Harness {{\n\
             \x20   test tBatch() {{\n\
             \x20       var s = new {class}();\n\
             \x20       for (var i = 0; i < {tasks}; i = i + 1) {{\n\
             \x20           try {{ s.{entry}(\"task-\" + i); }}\n\
             \x20           catch ({exception} e) {{ log(\"task \" + i + \" failed, moving on\"); }}\n\
             \x20       }}\n\
             \x20       assert(true, \"batch completes\");\n\
             \x20   }}\n\
             }}\n"
        );
        files.push((format!("test/{}_harness.jav", class.to_lowercase()), body));
        covering_tests += 1;
    }

    // Filler tests, batched 100 per file, exercising the filler utils.
    let filler_target = scale
        .scale(spec.tests_total, covering_tests + 1)
        .saturating_sub(covering_tests);
    let mut remaining = filler_target;
    let mut suite = 0usize;
    while remaining > 0 {
        let in_this_file = remaining.min(100);
        let mut body = format!(
            "// Generated regression suite {suite:03}.\nclass Suite{}{suite:03} {{\n",
            spec.short
        );
        for j in 0..in_this_file {
            let util = (suite * 100 + j) % filler_files.max(1);
            let a = j % 7;
            body.push_str(&format!(
                "    test tF{j:03}() {{\n\
                 \x20       var u = new Util{short}{util:04}();\n\
                 \x20       assert(u.combine({a}, 2) == {sum});\n\
                 \x20       assert(u.clampIndex(9, 4) == 3);\n\
                 \x20   }}\n",
                short = spec.short,
                sum = a + 2,
            ));
        }
        body.push_str("}\n");
        files.push((format!("test/suite_{}_{suite:03}.jav", spec.short.to_lowercase()), body));
        remaining -= in_this_file;
        suite += 1;
    }

    (files, covering_tests, filler_target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::paper_apps;
    use crate::truth::StructureKind;

    #[test]
    fn all_eight_apps_generate_and_compile_at_tiny_scale() {
        for spec in paper_apps() {
            let app = generate_app(&spec, Scale::Tiny);
            assert_eq!(
                app.truth.structures.len(),
                spec.total_structures(),
                "{}",
                spec.short
            );
            let project = compile_app(&app);
            assert!(!project.tests().is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = &paper_apps()[1];
        let a = generate_app(spec, Scale::Tiny);
        let b = generate_app(spec, Scale::Tiny);
        assert_eq!(a.files, b.files);
    }

    #[test]
    fn covered_structures_have_tests_and_clean_baseline() {
        use wasabi_vm::runner::{run_all_tests, RunOptions};
        let spec = &paper_apps()[2]; // MapReduce: small.
        let app = generate_app(spec, Scale::Tiny);
        let project = compile_app(&app);
        let runs = run_all_tests(&project, &RunOptions::default());
        let failures: Vec<String> = runs
            .iter()
            .filter(|r| !r.outcome.is_pass())
            .map(|r| format!("{}: {:?}", r.test, r.outcome))
            .collect();
        assert!(
            failures.is_empty(),
            "baseline test failures (first 5): {:?}",
            &failures[..failures.len().min(5)]
        );
    }

    #[test]
    fn seeded_bug_counts_match_spec() {
        let spec = &paper_apps()[4]; // HBase: the busiest spec.
        let app = generate_app(spec, Scale::Tiny);
        let caps = app.truth.bug_count(SeededBug::MissingCap);
        let delays = app.truth.bug_count(SeededBug::MissingDelay);
        let hows = app.truth.bug_count(SeededBug::How);
        assert_eq!(
            caps,
            spec.bugs.cap_both + spec.bugs.cap_dyn_only + spec.bugs.cap_llm_only
        );
        assert_eq!(
            delays,
            spec.bugs.delay_both + spec.bugs.delay_dyn_only + spec.bugs.delay_llm_only
        );
        assert_eq!(hows, spec.bugs.how);
    }

    #[test]
    fn amp_extension_compiles_and_is_labelled() {
        let spec = &paper_apps()[0];
        let plain = generate_app(spec, Scale::Tiny);
        let app = generate_app_with_amp(spec, Scale::Tiny);
        let _ = compile_app(&app);
        assert_eq!(app.truth.amp_seeds.len(), 6);
        let genuine = app.truth.amp_seeds.iter().filter(|s| s.genuine).count();
        assert_eq!(genuine, 3);
        assert_eq!(app.files.len(), plain.files.len() + 6);
        // The base app is untouched: same structures, same pinned totals.
        assert_eq!(app.truth.structures.len(), plain.truth.structures.len());
        assert!(plain.truth.amp_seeds.is_empty());
        for seed in &app.truth.amp_seeds {
            assert!(
                app.files.iter().any(|(p, _)| p == &seed.file_path),
                "seed {} points at a generated file",
                seed.id
            );
        }
    }

    #[test]
    fn policy_extension_compiles_labels_and_composes_with_amp() {
        let spec = &paper_apps()[0];
        let plain = generate_app(spec, Scale::Tiny);
        let mut app = generate_app(spec, Scale::Tiny);
        append_policy_seeds(&mut app);
        let _ = compile_app(&app);
        assert_eq!(app.truth.policy_seeds.len(), 9);
        let genuine = app.truth.policy_seeds.iter().filter(|s| s.genuine).count();
        assert_eq!(genuine, 6);
        for code in ["W004", "W005", "W006"] {
            assert!(
                app.truth.policy_seeds.iter().any(|s| s.code == code && s.genuine),
                "at least one genuine {code} seed"
            );
            assert!(
                app.truth.policy_seeds.iter().any(|s| s.code == code && !s.genuine),
                "at least one {code} decoy"
            );
        }
        assert_eq!(app.files.len(), plain.files.len() + 9);
        assert_eq!(app.truth.structures.len(), plain.truth.structures.len());
        assert!(plain.truth.policy_seeds.is_empty());
        for seed in &app.truth.policy_seeds {
            assert!(
                app.files.iter().any(|(p, _)| p == &seed.file_path),
                "seed {} points at a generated file",
                seed.id
            );
        }

        // Composes with the amplification extension: both seed families
        // stack on one app.
        let mut both = generate_app_with_amp(spec, Scale::Tiny);
        append_policy_seeds(&mut both);
        let _ = compile_app(&both);
        assert_eq!(both.truth.amp_seeds.len(), 6);
        assert_eq!(both.truth.policy_seeds.len(), 9);
        assert_eq!(both.files.len(), plain.files.len() + 6 + 9);
    }

    #[test]
    fn structure_kinds_match_bucket_totals() {
        let spec = &paper_apps()[0];
        let app = generate_app(spec, Scale::Tiny);
        let queues = app
            .truth
            .structures
            .iter()
            .filter(|s| s.kind == StructureKind::Queue)
            .count();
        let fsms = app
            .truth
            .structures
            .iter()
            .filter(|s| s.kind == StructureKind::StateMachine)
            .count();
        // Queue/FSM slots may be consumed by queue/fsm bug templates, which
        // keep their kind, so totals match the spec buckets exactly.
        assert_eq!(queues, spec.queues);
        assert_eq!(fsms, spec.fsms);
    }
}
