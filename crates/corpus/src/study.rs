//! The §2 bug-study dataset: 70 real-world retry issues.
//!
//! Thirteen issues are the ones the paper discusses by name (KAFKA-6829,
//! HADOOP-16683, HIVE-23894, HBASE-20492, ...); the remainder are synthesized
//! records whose attributes are allocated deterministically to reproduce the
//! paper's published marginals exactly: Table 1 (issues per application),
//! Table 2 (root causes), the §2.5 severity, mechanism, and trigger splits,
//! and the 42/70 regression-test ratio.

/// The application an issue was reported against (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StudyApp {
    Elasticsearch,
    Hadoop,
    HBase,
    Hive,
    Kafka,
    Spark,
}

impl StudyApp {
    /// All six studied applications with their GitHub star counts (Table 1).
    pub fn all() -> [(StudyApp, &'static str, u32); 6] {
        [
            (StudyApp::Elasticsearch, "Full-text search", 66),
            (StudyApp::Hadoop, "Distr. storage/processing", 14),
            (StudyApp::HBase, "Database", 5),
            (StudyApp::Hive, "Data warehousing", 5),
            (StudyApp::Kafka, "Stream processing", 26),
            (StudyApp::Spark, "Data processing", 37),
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            StudyApp::Elasticsearch => "Elasticsearch",
            StudyApp::Hadoop => "Hadoop",
            StudyApp::HBase => "HBase",
            StudyApp::Hive => "Hive",
            StudyApp::Kafka => "Kafka",
            StudyApp::Spark => "Spark",
        }
    }
}

/// Root-cause category (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RootCause {
    /// IF: recoverable or non-recoverable errors mishandled by the policy.
    WrongPolicy,
    /// IF: retry mechanism missing or disabled entirely.
    MissingMechanism,
    /// WHEN: no or wrong delay between attempts.
    DelayProblem,
    /// WHEN: missing or broken cap on attempts.
    CapProblem,
    /// HOW: state not (fully) reset before the retry.
    ImproperStateReset,
    /// HOW: job status tracking broken or racy under retry.
    BrokenJobTracking,
    /// HOW: other execution problems.
    Other,
}

impl RootCause {
    /// The IF/WHEN/HOW supercategory.
    pub fn category(self) -> &'static str {
        match self {
            RootCause::WrongPolicy | RootCause::MissingMechanism => "IF",
            RootCause::DelayProblem | RootCause::CapProblem => "WHEN",
            RootCause::ImproperStateReset | RootCause::BrokenJobTracking | RootCause::Other => {
                "HOW"
            }
        }
    }

    /// Table 2 row label.
    pub fn label(self) -> &'static str {
        match self {
            RootCause::WrongPolicy => "Wrong retry policy",
            RootCause::MissingMechanism => "Missing or disabled retry mechanism",
            RootCause::DelayProblem => "Delay problem",
            RootCause::CapProblem => "Cap problem",
            RootCause::ImproperStateReset => "Improper state reset",
            RootCause::BrokenJobTracking => "Broken/raced job tracking",
            RootCause::Other => "Other",
        }
    }
}

/// Retry mechanism shape (§2.5: 55% loop / 25% queue / 20% state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MechanismShape {
    Loop,
    Queue,
    StateMachine,
}

/// Developer-assigned severity (§2.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    Blocker,
    Critical,
    Major,
    Minor,
    Unlabeled,
}

/// How the task error reaches the coordinator (§3.1: 70% exceptions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Trigger {
    Exception,
    ErrorCode,
}

/// One studied issue.
#[derive(Debug, Clone)]
pub struct StudyIssue {
    /// Tracker id, e.g. `"KAFKA-6829"`.
    pub id: String,
    /// Application.
    pub app: StudyApp,
    /// Root cause (Table 2).
    pub root_cause: RootCause,
    /// Mechanism shape.
    pub mechanism: MechanismShape,
    /// Severity label.
    pub severity: Severity,
    /// Error-reporting channel.
    pub trigger: Trigger,
    /// Whether developers added a regression unit test after the fix.
    pub regression_test: bool,
    /// One-line description.
    pub description: String,
}

/// The thirteen issues the paper discusses by name.
fn named_issues() -> Vec<StudyIssue> {
    let mk = |id: &str,
              app: StudyApp,
              root_cause: RootCause,
              mechanism: MechanismShape,
              severity: Severity,
              trigger: Trigger,
              regression_test: bool,
              description: &str| StudyIssue {
        id: id.to_string(),
        app,
        root_cause,
        mechanism,
        severity,
        trigger,
        regression_test,
        description: description.to_string(),
    };
    vec![
        mk("KAFKA-6829", StudyApp::Kafka, RootCause::WrongPolicy, MechanismShape::Queue,
           Severity::Major, Trigger::ErrorCode, true,
           "UNKNOWN_TOPIC_OR_PARTITION missing from the commit response handler's retry list"),
        mk("HBASE-25743", StudyApp::HBase, RootCause::WrongPolicy, MechanismShape::Loop,
           Severity::Major, Trigger::Exception, true,
           "Upgraded Zookeeper returns KeeperException.RequestTimeout, never retried"),
        mk("KAFKA-12339", StudyApp::Kafka, RootCause::WrongPolicy, MechanismShape::Loop,
           Severity::Critical, Trigger::Exception, true,
           "New UnknownTopicOrPartitionException from internal library not retried during sync"),
        mk("HADOOP-16580", StudyApp::Hadoop, RootCause::WrongPolicy, MechanismShape::Loop,
           Severity::Major, Trigger::Exception, true,
           "IOException retried wholesale, wrongly covering AccessControlException"),
        mk("HADOOP-16683", StudyApp::Hadoop, RootCause::WrongPolicy, MechanismShape::Loop,
           Severity::Major, Trigger::Exception, true,
           "AccessControlException wrapped in HadoopException always retried"),
        mk("ELASTICSEARCH-53687", StudyApp::Elasticsearch, RootCause::WrongPolicy,
           MechanismShape::Queue, Severity::Major, Trigger::Exception, false,
           "Cancelled analytics job treated as recoverable; results persister retries forever"),
        mk("HIVE-23894", StudyApp::Hive, RootCause::WrongPolicy, MechanismShape::Queue,
           Severity::Major, Trigger::Exception, true,
           "Cancelled TezTask re-submitted to the task queue as if it had failed"),
        mk("HIVE-20349", StudyApp::Hive, RootCause::MissingMechanism, MechanismShape::Loop,
           Severity::Major, Trigger::Exception, false,
           "Fetch failures not retried against other nodes holding redundant segments"),
        mk("HBASE-20492", StudyApp::HBase, RootCause::DelayProblem, MechanismShape::StateMachine,
           Severity::Critical, Trigger::Exception, true,
           "UnassignProcedure retries REGION_TRANSITION_DISPATCH with no delay, congesting the executor"),
        mk("HDFS-15439", StudyApp::Hadoop, RootCause::CapProblem, MechanismShape::Loop,
           Severity::Major, Trigger::Exception, true,
           "Negative dfs.mover.retry.max.attempts allows infinite mover retries"),
        mk("YARN-8362", StudyApp::Hadoop, RootCause::CapProblem, MechanismShape::StateMachine,
           Severity::Major, Trigger::Exception, true,
           "Attempt counter incremented twice, halving the configured max retries"),
        mk("SPARK-27630", StudyApp::Spark, RootCause::BrokenJobTracking, MechanismShape::Queue,
           Severity::Major, Trigger::Exception, true,
           "Zombie stages share stageId with retries and corrupt stageIdToNumTasks"),
        mk("HBASE-20616", StudyApp::HBase, RootCause::ImproperStateReset,
           MechanismShape::StateMachine, Severity::Major, Trigger::Exception, true,
           "TruncateTable retry fails: files from the failed CREATE_FS_LAYOUT attempt not cleaned"),
    ]
}

/// Target marginals (paper Tables 1–2 and §2.5).
mod targets {
    use super::*;

    pub const PER_APP: [(StudyApp, usize); 6] = [
        (StudyApp::Elasticsearch, 11),
        (StudyApp::Hadoop, 15),
        (StudyApp::HBase, 15),
        (StudyApp::Hive, 11),
        (StudyApp::Kafka, 9),
        (StudyApp::Spark, 9),
    ];

    pub const ROOT_CAUSES: [(RootCause, usize); 7] = [
        (RootCause::WrongPolicy, 17),
        (RootCause::MissingMechanism, 8),
        (RootCause::DelayProblem, 10),
        (RootCause::CapProblem, 13),
        (RootCause::ImproperStateReset, 12),
        (RootCause::BrokenJobTracking, 8),
        (RootCause::Other, 2),
    ];

    pub const MECHANISMS: [(MechanismShape, usize); 3] = [
        (MechanismShape::Loop, 39),
        (MechanismShape::Queue, 17),
        (MechanismShape::StateMachine, 14),
    ];

    pub const SEVERITIES: [(Severity, usize); 5] = [
        (Severity::Blocker, 4),
        (Severity::Critical, 7),
        (Severity::Major, 45),
        (Severity::Minor, 4),
        (Severity::Unlabeled, 10),
    ];

    pub const TRIGGERS: [(Trigger, usize); 2] = [(Trigger::Exception, 49), (Trigger::ErrorCode, 21)];

    pub const REGRESSION_TESTS: usize = 42;
}

/// Builds the full 70-issue dataset with the paper's exact marginals.
pub fn study_issues() -> Vec<StudyIssue> {
    let mut issues = named_issues();

    // Remaining quota per attribute after the named issues.
    let mut per_app: Vec<(StudyApp, usize)> = targets::PER_APP.to_vec();
    let mut causes: Vec<(RootCause, usize)> = targets::ROOT_CAUSES.to_vec();
    let mut mechanisms: Vec<(MechanismShape, usize)> = targets::MECHANISMS.to_vec();
    let mut severities: Vec<(Severity, usize)> = targets::SEVERITIES.to_vec();
    let mut triggers: Vec<(Trigger, usize)> = targets::TRIGGERS.to_vec();
    let mut regressions = targets::REGRESSION_TESTS;

    fn take<T: Copy + PartialEq>(pool: &mut [(T, usize)], value: T) {
        let entry = pool
            .iter_mut()
            .find(|(v, _)| *v == value)
            .expect("value in pool");
        assert!(entry.1 > 0, "marginal exhausted by named issues");
        entry.1 -= 1;
    }
    for issue in &issues {
        take(&mut per_app, issue.app);
        take(&mut causes, issue.root_cause);
        take(&mut mechanisms, issue.mechanism);
        take(&mut severities, issue.severity);
        take(&mut triggers, issue.trigger);
        if issue.regression_test {
            regressions -= 1;
        }
    }

    // Deterministic round-robin draw keeping every marginal exact.
    fn draw<T: Copy>(pool: &mut [(T, usize)], step: usize) -> T {
        let total: usize = pool.iter().map(|(_, n)| n).sum();
        let mut idx = step % total.max(1);
        for (value, n) in pool.iter_mut() {
            if idx < *n {
                *n -= 1;
                return *value;
            }
            idx -= *n;
        }
        unreachable!("draw past pool end");
    }

    let mut serial = 20000;
    let mut step = 0usize;
    while issues.len() < 70 {
        step += 7; // Co-prime stride interleaves the attribute pools.
        let app = draw(&mut per_app, step);
        let root_cause = draw(&mut causes, step / 2);
        let mechanism = draw(&mut mechanisms, step / 3);
        let severity = draw(&mut severities, step / 5);
        let trigger = draw(&mut triggers, step);
        let remaining = 70 - issues.len();
        let regression_test = regressions >= remaining || (regressions > 0 && !step.is_multiple_of(3));
        if regression_test {
            regressions -= 1;
        }
        serial += 17;
        issues.push(StudyIssue {
            id: format!("{}-{serial}", app.name().to_uppercase()),
            app,
            root_cause,
            mechanism,
            severity,
            trigger,
            regression_test,
            description: format!(
                "{} via {:?}-based retry ({})",
                root_cause.label(),
                mechanism,
                app.name()
            ),
        });
    }
    issues
}

/// Table 2: issue counts per root cause.
pub fn table2_counts(issues: &[StudyIssue]) -> Vec<(RootCause, usize)> {
    targets::ROOT_CAUSES
        .iter()
        .map(|(cause, _)| {
            (
                *cause,
                issues.iter().filter(|i| i.root_cause == *cause).count(),
            )
        })
        .collect()
}

/// Table 1: issue counts per application.
pub fn table1_counts(issues: &[StudyIssue]) -> Vec<(StudyApp, usize)> {
    StudyApp::all()
        .iter()
        .map(|(app, _, _)| (*app, issues.iter().filter(|i| i.app == *app).count()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_has_seventy_issues() {
        assert_eq!(study_issues().len(), 70);
    }

    #[test]
    fn per_app_counts_match_table_1() {
        let issues = study_issues();
        let counts = table1_counts(&issues);
        let expected = [11, 15, 15, 11, 9, 9];
        for ((_, count), want) in counts.iter().zip(expected) {
            assert_eq!(*count, want);
        }
    }

    #[test]
    fn root_causes_match_table_2() {
        let issues = study_issues();
        let counts = table2_counts(&issues);
        let expected = [17, 8, 10, 13, 12, 8, 2];
        for ((cause, count), want) in counts.iter().zip(expected) {
            assert_eq!(*count, want, "{}", cause.label());
        }
        // Category split: IF 25 (36%), WHEN 23 (33%), HOW 22 (31%).
        let by_cat = |cat: &str| {
            issues
                .iter()
                .filter(|i| i.root_cause.category() == cat)
                .count()
        };
        assert_eq!(by_cat("IF"), 25);
        assert_eq!(by_cat("WHEN"), 23);
        assert_eq!(by_cat("HOW"), 22);
    }

    #[test]
    fn mechanism_split_matches_section_2_5() {
        let issues = study_issues();
        let count = |m| issues.iter().filter(|i| i.mechanism == m).count();
        assert_eq!(count(MechanismShape::Loop), 39);
        assert_eq!(count(MechanismShape::Queue), 17);
        assert_eq!(count(MechanismShape::StateMachine), 14);
    }

    #[test]
    fn severity_and_trigger_splits() {
        let issues = study_issues();
        let sev = |s| issues.iter().filter(|i| i.severity == s).count();
        assert_eq!(sev(Severity::Blocker), 4);
        assert_eq!(sev(Severity::Critical), 7);
        assert_eq!(sev(Severity::Major), 45);
        assert_eq!(sev(Severity::Minor), 4);
        assert_eq!(sev(Severity::Unlabeled), 10);
        let exc = issues
            .iter()
            .filter(|i| i.trigger == Trigger::Exception)
            .count();
        assert_eq!(exc, 49, "70% exception-triggered");
    }

    #[test]
    fn regression_test_ratio_is_42_of_70() {
        let issues = study_issues();
        assert_eq!(issues.iter().filter(|i| i.regression_test).count(), 42);
    }

    #[test]
    fn named_issues_are_present() {
        let issues = study_issues();
        for id in ["KAFKA-6829", "HBASE-20492", "HDFS-15439", "SPARK-27630"] {
            assert!(issues.iter().any(|i| i.id == id), "missing {id}");
        }
    }

    #[test]
    fn ids_are_unique() {
        let issues = study_issues();
        let mut ids: Vec<&str> = issues.iter().map(|i| i.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 70);
    }
}
