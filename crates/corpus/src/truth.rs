//! Ground-truth labels for the synthetic corpus.
//!
//! Every generated retry structure and false-positive trap carries a label,
//! so the evaluation harness can score tool reports as true/false positives
//! mechanically instead of by manual audit (which is what the paper's
//! authors did by hand).

use wasabi_lang::project::MethodId;

/// The kind of retry structure generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StructureKind {
    /// Exception-triggered retry loop.
    LoopException,
    /// Error-code-triggered retry loop (no exceptions; untestable by
    /// exception injection).
    LoopErrorCode,
    /// Queue-based asynchronous task re-enqueueing.
    Queue,
    /// State-machine procedure retry.
    StateMachine,
}

impl StructureKind {
    /// Whether the structure is a loop (vs queue/state-machine).
    pub fn is_loop(self) -> bool {
        matches!(self, StructureKind::LoopException | StructureKind::LoopErrorCode)
    }
}

/// A retry bug deliberately seeded into a structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SeededBug {
    /// WHEN: no cap on retry attempts.
    MissingCap,
    /// WHEN: no delay between attempts.
    MissingDelay,
    /// HOW: broken state handling exposed by a single injected fault
    /// (null-dereference in the error path, missing cleanup, job-tracking
    /// leak, ...).
    How,
}

/// A false-positive trap: code that is *correct* but constructed so that one
/// of the detectors plausibly mislabels it, reproducing the paper's §4.3
/// false-positive taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Trap {
    /// Correct cap, but the test harness swallows the propagated exception
    /// and keeps submitting tasks — the per-site injection count crosses the
    /// missing-cap threshold (dynamic cap FP).
    HarnessSwallow,
    /// No delay, but each attempt switches to a different replica, so a
    /// delay is unnecessary (dynamic delay FP).
    ReplicaSwitch,
    /// A general catch wraps unexpected exceptions; the wrapper crashes the
    /// test under injection (dynamic HOW FP via the different-exception
    /// oracle's no-unwrapping rule).
    WrapRethrow,
    /// The delay is implemented by a helper defined in a *different file*
    /// (LLM missing-delay FP via single-file blindness).
    HelperSleepElsewhere,
    /// The cap is implemented by a policy object defined in a *different
    /// file* (LLM missing-cap FP via single-file blindness).
    HelperCapElsewhere,
    /// The catch sets a boolean flag that always breaks the loop — the
    /// exception is never actually retried, but syntactic reachability says
    /// it is (IF-analysis FP).
    BooleanFlagBreak,
}

/// How visible a structure is to each identification technique.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Visibility {
    /// The loop carries retry/retries naming evidence (CodeQL's filter).
    pub keyword_evidence: bool,
    /// The structure lives in a large file (the LLM's recall cliff).
    pub large_file: bool,
}

/// Ground truth for one generated retry structure.
#[derive(Debug, Clone)]
pub struct StructureTruth {
    /// Stable id, e.g. `"HB-loop-017"`.
    pub id: String,
    /// Structure kind.
    pub kind: StructureKind,
    /// The coordinator method in the generated code.
    pub coordinator: MethodId,
    /// Path of the file the structure lives in.
    pub file_path: String,
    /// Seeded bugs (empty = correct retry).
    pub bugs: Vec<SeededBug>,
    /// False-positive traps attached to this structure.
    pub traps: Vec<Trap>,
    /// Visibility to the identification techniques.
    pub visibility: Visibility,
    /// Whether unit tests exercising this structure were generated.
    pub covered_by_tests: bool,
    /// Trigger exceptions (empty for error-code retry).
    pub exceptions: Vec<String>,
}

impl StructureTruth {
    /// Whether the structure has the given seeded bug.
    pub fn has_bug(&self, bug: SeededBug) -> bool {
        self.bugs.contains(&bug)
    }

    /// Whether the structure has the given trap.
    pub fn has_trap(&self, trap: Trap) -> bool {
        self.traps.contains(&trap)
    }

    /// Whether a seeded WHEN bug here is *fixable* by `wasabi repair`.
    ///
    /// The repair loop only patches what lint can anchor, and the W001 /
    /// W002 checkers anchor at exception-triggered retry loops that pass
    /// the keyword filter — error-code loops, queues, state machines, and
    /// keyword-invisible loops are out of reach by construction, so they
    /// are excluded from the fix-rate denominator rather than counted as
    /// failures.
    pub fn when_fixable(&self, bug: SeededBug) -> bool {
        matches!(bug, SeededBug::MissingCap | SeededBug::MissingDelay)
            && self.has_bug(bug)
            && self.kind == StructureKind::LoopException
            && self.visibility.keyword_evidence
    }
}

/// A non-retry file generated to exercise a specific detector weakness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FileTrap {
    /// Status polling / spin loop (LLM Q1 false-positive bait).
    PollLoop,
    /// Parses a retry-named request parameter without retrying anything.
    RetryNamedParam,
    /// Acquires a lock with "retries" and logs failure (CodeQL bait; the
    /// catch never reaches the header).
    LockAcquire,
}

/// Ground truth for a generated trap file.
#[derive(Debug, Clone)]
pub struct FileTrapTruth {
    /// Path of the trap file.
    pub file_path: String,
    /// What the trap is.
    pub trap: FileTrap,
}

/// Ground truth for one seeded IF-policy outlier group.
#[derive(Debug, Clone)]
pub struct IfSeedTruth {
    /// The exception whose retry policy is inconsistent.
    pub exception: String,
    /// Number of retry loops where it can be thrown.
    pub n: usize,
    /// Number of loops where it is retried.
    pub r: usize,
    /// Whether the minority instances are genuine policy bugs (`false` for
    /// the boolean-flag false positive).
    pub genuine: bool,
}

/// The shape of a seeded nested-retry amplification site (or decoy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AmpKind {
    /// Two retry loops nested in the same method.
    NestedLoops,
    /// A retry loop whose body calls a retrying helper on `this`.
    HelperRetry,
    /// A retry loop retrying a method of another class through a typed
    /// field receiver.
    CrossClass,
    /// Decoy: the helper called from the loop only sleeps, it does not
    /// retry.
    DecoySleepHelper,
    /// Decoy: the nested inner loop is a plain bounded loop, not a retry
    /// loop.
    DecoyPlainNested,
    /// Decoy: the retrying helper is called *before* the loop, not inside
    /// it.
    DecoyOutsideLoop,
}

/// Ground truth for one seeded amplification site. Decoys carry
/// `genuine: false` and exist to give the precision measurement teeth.
#[derive(Debug, Clone)]
pub struct AmpSeed {
    /// Stable id, e.g. `"HB-amp-nest"`.
    pub id: String,
    /// Site shape.
    pub kind: AmpKind,
    /// Outer coordinator method.
    pub coordinator: MethodId,
    /// Path of the file the site lives in.
    pub file_path: String,
    /// `Class.method` owning the inner retry loop (the coordinator itself
    /// for same-method nesting; the would-be inner for decoys).
    pub inner: String,
    /// Worst-case attempt product the detector should report (display form
    /// of [`AttemptBound`](../../analysis), e.g. `"12"`).
    pub expected_product: String,
    /// Whether an amplification finding here is correct.
    pub genuine: bool,
}

/// Ground truth for one seeded retry-policy site (or decoy) exercising
/// the abstract-interpretation checkers. Decoys carry `genuine: false`
/// and are correct code shaped to tempt the checker the seed names —
/// they give the per-code precision measurement teeth.
#[derive(Debug, Clone)]
pub struct PolicySeed {
    /// Stable id, e.g. `"HB-policy-grow"`.
    pub id: String,
    /// The checker under test: `"W004"`, `"W005"`, or `"W006"`.
    pub code: &'static str,
    /// Coordinator method containing the seeded loop.
    pub coordinator: MethodId,
    /// Path of the file the seed lives in.
    pub file_path: String,
    /// Whether a finding of `code` here is correct.
    pub genuine: bool,
}

/// Complete ground truth for one generated application.
#[derive(Debug, Clone, Default)]
pub struct AppTruth {
    /// Application short code, e.g. `"HB"`.
    pub app: String,
    /// All generated retry structures.
    pub structures: Vec<StructureTruth>,
    /// All generated trap files.
    pub file_traps: Vec<FileTrapTruth>,
    /// Seeded IF-ratio groups.
    pub if_seeds: Vec<IfSeedTruth>,
    /// Seeded nested-retry amplification sites (opt-in; empty unless the
    /// app was generated with the amplification extension).
    pub amp_seeds: Vec<AmpSeed>,
    /// Seeded retry-policy sites for the W004–W006 checkers (opt-in;
    /// empty unless the app was generated with the policy extension).
    pub policy_seeds: Vec<PolicySeed>,
}

impl AppTruth {
    /// Looks up a structure by its coordinator method.
    pub fn by_coordinator(&self, coordinator: &MethodId) -> Option<&StructureTruth> {
        self.structures.iter().find(|s| &s.coordinator == coordinator)
    }

    /// Looks up structures living in `file_path`.
    pub fn by_file(&self, file_path: &str) -> Vec<&StructureTruth> {
        self.structures
            .iter()
            .filter(|s| s.file_path == file_path)
            .collect()
    }

    /// Count of structures with a given bug.
    pub fn bug_count(&self, bug: SeededBug) -> usize {
        self.structures.iter().filter(|s| s.has_bug(bug)).count()
    }

    /// Count of structures whose seeded WHEN bug the repair loop can
    /// reach (see [`StructureTruth::when_fixable`]).
    pub fn fixable_count(&self, bug: SeededBug) -> usize {
        self.structures.iter().filter(|s| s.when_fixable(bug)).count()
    }

    /// Count of genuine amplification seeds — the fixable `A001`
    /// population (decoys produce no finding and must stay untouched).
    pub fn fixable_amp_count(&self) -> usize {
        self.amp_seeds.iter().filter(|a| a.genuine).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_kind_loop_classification() {
        assert!(StructureKind::LoopException.is_loop());
        assert!(StructureKind::LoopErrorCode.is_loop());
        assert!(!StructureKind::Queue.is_loop());
        assert!(!StructureKind::StateMachine.is_loop());
    }

    #[test]
    fn app_truth_lookup() {
        let truth = AppTruth {
            app: "HA".into(),
            structures: vec![StructureTruth {
                id: "HA-loop-000".into(),
                kind: StructureKind::LoopException,
                coordinator: MethodId::new("Retry0", "run"),
                file_path: "src/retry0.jav".into(),
                bugs: vec![SeededBug::MissingCap],
                traps: vec![],
                visibility: Visibility {
                    keyword_evidence: true,
                    large_file: false,
                },
                covered_by_tests: true,
                exceptions: vec!["IOException".into()],
            }],
            file_traps: vec![],
            if_seeds: vec![],
            amp_seeds: vec![],
            policy_seeds: vec![],
        };
        assert!(truth.by_coordinator(&MethodId::new("Retry0", "run")).is_some());
        assert!(truth.by_coordinator(&MethodId::new("X", "y")).is_none());
        assert_eq!(truth.by_file("src/retry0.jav").len(), 1);
        assert_eq!(truth.bug_count(SeededBug::MissingCap), 1);
        assert_eq!(truth.bug_count(SeededBug::How), 0);
    }

    #[test]
    fn fixability_tracks_lint_reachability() {
        let visible = Visibility {
            keyword_evidence: true,
            large_file: false,
        };
        let base = StructureTruth {
            id: "T-loop-000".into(),
            kind: StructureKind::LoopException,
            coordinator: MethodId::new("Retry0", "run"),
            file_path: "src/retry0.jav".into(),
            bugs: vec![SeededBug::MissingCap],
            traps: vec![],
            visibility: visible,
            covered_by_tests: true,
            exceptions: vec!["IOException".into()],
        };
        assert!(base.when_fixable(SeededBug::MissingCap));
        assert!(!base.when_fixable(SeededBug::MissingDelay), "bug not seeded");
        assert!(!base.when_fixable(SeededBug::How), "HOW bugs have no template");

        let hidden = StructureTruth {
            visibility: Visibility {
                keyword_evidence: false,
                large_file: false,
            },
            ..base.clone()
        };
        assert!(!hidden.when_fixable(SeededBug::MissingCap), "keyword-invisible");

        let error_code = StructureTruth {
            kind: StructureKind::LoopErrorCode,
            ..base.clone()
        };
        assert!(!error_code.when_fixable(SeededBug::MissingCap), "no exception anchor");

        let truth = AppTruth {
            app: "T".into(),
            structures: vec![base, hidden, error_code],
            amp_seeds: vec![
                AmpSeed {
                    id: "T-amp-nest".into(),
                    kind: AmpKind::NestedLoops,
                    coordinator: MethodId::new("AmpNestT", "run"),
                    file_path: "src/amp_nest.jav".into(),
                    inner: "AmpNestT.run".into(),
                    expected_product: "12".into(),
                    genuine: true,
                },
                AmpSeed {
                    id: "T-amp-decoy".into(),
                    kind: AmpKind::DecoySleepHelper,
                    coordinator: MethodId::new("AmpDecoyT", "run"),
                    file_path: "src/amp_decoy.jav".into(),
                    inner: "AmpDecoyT.pause".into(),
                    expected_product: "-".into(),
                    genuine: false,
                },
            ],
            ..AppTruth::default()
        };
        assert_eq!(truth.fixable_count(SeededBug::MissingCap), 1);
        assert_eq!(truth.fixable_count(SeededBug::MissingDelay), 0);
        assert_eq!(truth.fixable_amp_count(), 1);
    }
}
