//! Per-application generation specs, calibrated to the paper's evaluation
//! tables.
//!
//! Every number here is transcribed or derived from the paper:
//!
//! - retry-structure counts and visibility buckets from Table 5 and
//!   Figure 4 (323 structures; 239 loops of which CodeQL finds ~85% and the
//!   LLM misses 100 in large files; 47 queue + 37 state-machine structures);
//! - seeded true bugs and false-positive traps from Tables 3–4 (subscripts)
//!   and the §4.3 false-positive taxonomy;
//! - the dynamic/static overlap (20 bugs, Figure 3) split as 12 missing-cap
//!   + 8 missing-delay structures visible to both workflows;
//! - unit-test counts from Table 6;
//! - IF-ratio seeds from §4.1 (KeeperException 17/20, TTransportException
//!   2/3, IllegalArgumentException 2/9, ExitException 1/3,
//!   IllegalStateException 1/3, plus the FileNotFoundException 1/4
//!   boolean-flag false positive).

/// How many structures of each dynamic-workflow outcome an app seeds.
#[derive(Debug, Clone, Copy, Default)]
pub struct BugBudget {
    /// Missing-cap bugs visible to both workflows (covered + small file).
    pub cap_both: usize,
    /// Missing-cap bugs only the dynamic workflow finds (covered +
    /// large-file loops the LLM misses).
    pub cap_dyn_only: usize,
    /// Missing-cap bugs only the LLM finds (not covered by tests).
    pub cap_llm_only: usize,
    /// Missing-delay bugs visible to both workflows.
    pub delay_both: usize,
    /// Missing-delay bugs only the dynamic workflow finds.
    pub delay_dyn_only: usize,
    /// Missing-delay bugs only the LLM finds.
    pub delay_llm_only: usize,
    /// HOW bugs (dynamic only, K = 1 different-exception findings).
    pub how: usize,
}

/// False-positive traps seeded per app.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrapBudget {
    /// Harness-swallow structures (dynamic missing-cap FPs).
    pub harness_swallow: usize,
    /// Replica-switch structures (dynamic missing-delay FPs).
    pub replica_switch: usize,
    /// Wrap-and-rethrow structures (dynamic HOW FPs).
    pub wrap_rethrow: usize,
    /// Cap implemented by a helper in another file (LLM missing-cap FPs).
    pub cap_helper_elsewhere: usize,
    /// Delay implemented by a helper in another file (LLM missing-delay
    /// FPs).
    pub sleep_helper_elsewhere: usize,
    /// Poll/status-watch files (probabilistic LLM Q1 FPs).
    pub poll_files: usize,
    /// Retry-named-parameter parser files (probabilistic LLM Q1 FPs).
    pub param_files: usize,
    /// Lock-acquire "retries" files (CodeQL bait; catch never reaches the
    /// header).
    pub lock_files: usize,
}

/// An IF-ratio seed: `n` retry loops can throw `exception`; `r` retry it.
#[derive(Debug, Clone, Copy)]
pub struct IfSeedSpec {
    /// The exception whose policy is inconsistent.
    pub exception: &'static str,
    /// Loops where it can be thrown.
    pub n: usize,
    /// Loops where it is retried.
    pub r: usize,
    /// How many of the "retried" instances are boolean-flag fakes (counted
    /// as retried by syntactic reachability but never actually retried).
    pub flag_fakes: usize,
    /// Whether the minority instances are genuine policy bugs.
    pub genuine: bool,
}

/// Generation spec for one application.
#[derive(Debug, Clone)]
pub struct AppSpec {
    /// Full name, e.g. `"hbase"`.
    pub name: &'static str,
    /// Paper short code, e.g. `"HB"`.
    pub short: &'static str,
    /// Deterministic generation seed.
    pub seed: u64,

    // ---- Structure counts (Table 5 / Figure 4) --------------------------
    /// Exception loops visible to both CodeQL and the LLM (small files,
    /// keyword-named).
    pub loops_both: usize,
    /// Exception loops in large files: CodeQL finds them, the LLM misses.
    pub loops_codeql_only: usize,
    /// Exception loops with only comment evidence: the LLM finds them,
    /// CodeQL's keyword filter drops them.
    pub loops_llm_only: usize,
    /// Error-code retry loops (LLM-identified, untestable by exception
    /// injection).
    pub loops_errcode: usize,
    /// Queue-based structures (LLM-only identification).
    pub queues: usize,
    /// State-machine structures (LLM-only identification).
    pub fsms: usize,

    // ---- Seeds -----------------------------------------------------------
    /// True-bug budget.
    pub bugs: BugBudget,
    /// False-positive trap budget.
    pub traps: TrapBudget,
    /// Clean structures that unit tests cover (tunes Table 5 "tested").
    pub covered_clean: usize,
    /// IF-ratio seeds overlaid on this app's loops.
    pub if_seeds: &'static [IfSeedSpec],

    // ---- Test suite (Table 6) -------------------------------------------
    /// Total unit tests (Paper scale).
    pub tests_total: usize,
    /// Tests that cover retry locations (Paper scale).
    pub tests_cover_retry: usize,
    /// Fraction (percent) of covering tests that restrict retry configs.
    pub config_restricting_pct: usize,

    // ---- LLM sweep volume (§4.3) ----------------------------------------
    /// Non-retry filler files (Paper scale), sized so that per-app API
    /// calls land near the paper's ~2600 median.
    pub filler_files: usize,
    /// Batch-iteration files with catch-and-continue loops (not scaled);
    /// these feed the §4.4 keyword-ablation blow-up (725 vs 205 loops).
    pub iteration_files: usize,
}

impl AppSpec {
    /// Total retry structures this spec generates (Table 5 "identified"
    /// targets). Bug and trap roles are assigned to slots within these
    /// visibility buckets, not added on top.
    pub fn total_structures(&self) -> usize {
        self.loops_both
            + self.loops_codeql_only
            + self.loops_llm_only
            + self.loops_errcode
            + self.queues
            + self.fsms
    }

    /// Total loop structures (exception + error-code + loop-shaped traps).
    pub fn total_loops(&self) -> usize {
        self.loops_both + self.loops_codeql_only + self.loops_llm_only + self.loops_errcode
    }
}

/// The eight evaluated applications (§4: HA, HD, MA, YA, HB, HI, CA, EL).
pub fn paper_apps() -> Vec<AppSpec> {
    vec![
        AppSpec {
            name: "hadoop-common",
            short: "HA",
            seed: 0xA001,
            loops_both: 14,
            loops_codeql_only: 12,
            loops_llm_only: 1,
            loops_errcode: 1,
            queues: 6,
            fsms: 4,
            bugs: BugBudget {
                cap_both: 0,
                cap_dyn_only: 1,
                cap_llm_only: 0,
                delay_both: 1,
                delay_dyn_only: 0,
                delay_llm_only: 2,
                how: 0,
            },
            traps: TrapBudget {
                harness_swallow: 1,
                replica_switch: 2,
                wrap_rethrow: 0,
                cap_helper_elsewhere: 1,
                sleep_helper_elsewhere: 1,
                poll_files: 4,
                param_files: 2,
                lock_files: 1,
            },
            covered_clean: 7,
            if_seeds: &[IfSeedSpec {
                exception: "ExitException",
                n: 3,
                r: 1,
                flag_fakes: 0,
                genuine: true,
            }],
            tests_total: 7296,
            tests_cover_retry: 841,
            config_restricting_pct: 10,
            filler_files: 2300,
            iteration_files: 55,
        },
        AppSpec {
            name: "hdfs",
            short: "HD",
            seed: 0xA002,
            loops_both: 14,
            loops_codeql_only: 14,
            loops_llm_only: 1,
            loops_errcode: 1,
            queues: 6,
            fsms: 5,
            bugs: BugBudget {
                cap_both: 3,
                cap_dyn_only: 2,
                cap_llm_only: 2,
                delay_both: 2,
                delay_dyn_only: 1,
                delay_llm_only: 5,
                how: 2,
            },
            traps: TrapBudget {
                harness_swallow: 2,
                replica_switch: 3,
                wrap_rethrow: 2,
                cap_helper_elsewhere: 1,
                sleep_helper_elsewhere: 1,
                poll_files: 4,
                param_files: 2,
                lock_files: 1,
            },
            covered_clean: 10,
            if_seeds: &[IfSeedSpec {
                exception: "FileNotFoundException",
                n: 4,
                r: 1,
                flag_fakes: 1,
                genuine: false,
            }],
            tests_total: 7642,
            tests_cover_retry: 405,
            config_restricting_pct: 10,
            filler_files: 2400,
            iteration_files: 55,
        },
        AppSpec {
            name: "mapreduce",
            short: "MA",
            seed: 0xA003,
            loops_both: 7,
            loops_codeql_only: 4,
            loops_llm_only: 0,
            loops_errcode: 1,
            queues: 2,
            fsms: 2,
            bugs: BugBudget {
                cap_both: 0,
                cap_dyn_only: 0,
                cap_llm_only: 0,
                delay_both: 2,
                delay_dyn_only: 2,
                delay_llm_only: 1,
                how: 0,
            },
            traps: TrapBudget {
                harness_swallow: 0,
                replica_switch: 1,
                wrap_rethrow: 0,
                cap_helper_elsewhere: 1,
                sleep_helper_elsewhere: 0,
                poll_files: 3,
                param_files: 2,
                lock_files: 1,
            },
            covered_clean: 6,
            if_seeds: &[],
            tests_total: 1468,
            tests_cover_retry: 393,
            config_restricting_pct: 10,
            filler_files: 2200,
            iteration_files: 50,
        },
        AppSpec {
            name: "yarn",
            short: "YA",
            seed: 0xA004,
            loops_both: 6,
            loops_codeql_only: 5,
            loops_llm_only: 1,
            loops_errcode: 1,
            queues: 3,
            fsms: 2,
            bugs: BugBudget {
                cap_both: 0,
                cap_dyn_only: 0,
                cap_llm_only: 2,
                delay_both: 0,
                delay_dyn_only: 0,
                delay_llm_only: 4,
                how: 0,
            },
            traps: TrapBudget {
                harness_swallow: 1,
                replica_switch: 0,
                wrap_rethrow: 0,
                cap_helper_elsewhere: 0,
                sleep_helper_elsewhere: 0,
                poll_files: 3,
                param_files: 2,
                lock_files: 1,
            },
            covered_clean: 10,
            if_seeds: &[IfSeedSpec {
                exception: "IllegalStateException",
                n: 3,
                r: 1,
                flag_fakes: 0,
                genuine: true,
            }],
            tests_total: 5757,
            tests_cover_retry: 764,
            config_restricting_pct: 10,
            filler_files: 2400,
            iteration_files: 52,
        },
        AppSpec {
            name: "hbase",
            short: "HB",
            seed: 0xA005,
            loops_both: 35,
            loops_codeql_only: 34,
            loops_llm_only: 2,
            loops_errcode: 2,
            queues: 14,
            fsms: 11,
            bugs: BugBudget {
                cap_both: 7,
                cap_dyn_only: 4,
                cap_llm_only: 5,
                delay_both: 2,
                delay_dyn_only: 2,
                delay_llm_only: 10,
                how: 2,
            },
            traps: TrapBudget {
                harness_swallow: 2,
                replica_switch: 2,
                wrap_rethrow: 2,
                cap_helper_elsewhere: 2,
                sleep_helper_elsewhere: 2,
                poll_files: 4,
                param_files: 2,
                lock_files: 1,
            },
            covered_clean: 25,
            if_seeds: &[
                IfSeedSpec {
                    exception: "KeeperException",
                    n: 20,
                    r: 17,
                    flag_fakes: 0,
                    genuine: true,
                },
                // The paper places this outlier in Cassandra; Cassandra's 15
                // structures cannot host a 9-loop ratio group, so it lives
                // in HBase here (noted in EXPERIMENTS.md).
                IfSeedSpec {
                    exception: "IllegalArgumentException",
                    n: 9,
                    r: 2,
                    flag_fakes: 0,
                    genuine: true,
                },
            ],
            tests_total: 7052,
            tests_cover_retry: 1438,
            config_restricting_pct: 10,
            filler_files: 2500,
            iteration_files: 60,
        },
        AppSpec {
            name: "hive",
            short: "HI",
            seed: 0xA006,
            loops_both: 16,
            loops_codeql_only: 14,
            loops_llm_only: 0,
            loops_errcode: 14,
            queues: 8,
            fsms: 7,
            bugs: BugBudget {
                cap_both: 1,
                cap_dyn_only: 1,
                cap_llm_only: 0,
                delay_both: 1,
                delay_dyn_only: 1,
                delay_llm_only: 10,
                how: 1,
            },
            traps: TrapBudget {
                harness_swallow: 1,
                replica_switch: 0,
                wrap_rethrow: 1,
                cap_helper_elsewhere: 1,
                sleep_helper_elsewhere: 2,
                poll_files: 4,
                param_files: 2,
                lock_files: 1,
            },
            covered_clean: 7,
            if_seeds: &[IfSeedSpec {
                exception: "TTransportException",
                n: 3,
                r: 2,
                flag_fakes: 0,
                genuine: true,
            }],
            tests_total: 35289,
            tests_cover_retry: 1505,
            config_restricting_pct: 10,
            filler_files: 2500,
            iteration_files: 58,
        },
        AppSpec {
            name: "cassandra",
            short: "CA",
            seed: 0xA007,
            loops_both: 7,
            loops_codeql_only: 4,
            loops_llm_only: 0,
            loops_errcode: 0,
            queues: 2,
            fsms: 2,
            bugs: BugBudget {
                cap_both: 1,
                cap_dyn_only: 0,
                cap_llm_only: 3,
                delay_both: 0,
                delay_dyn_only: 2,
                delay_llm_only: 4,
                how: 0,
            },
            traps: TrapBudget {
                harness_swallow: 0,
                replica_switch: 0,
                wrap_rethrow: 0,
                cap_helper_elsewhere: 1,
                sleep_helper_elsewhere: 0,
                poll_files: 3,
                param_files: 2,
                lock_files: 1,
            },
            covered_clean: 2,
            if_seeds: &[],
            tests_total: 5439,
            tests_cover_retry: 952,
            config_restricting_pct: 10,
            filler_files: 2200,
            iteration_files: 50,
        },
        AppSpec {
            name: "elasticsearch",
            short: "EL",
            seed: 0xA008,
            loops_both: 4,
            loops_codeql_only: 13,
            loops_llm_only: 1,
            loops_errcode: 10,
            queues: 6,
            fsms: 4,
            bugs: BugBudget {
                cap_both: 0,
                cap_dyn_only: 0,
                cap_llm_only: 3,
                delay_both: 0,
                delay_dyn_only: 1,
                delay_llm_only: 8,
                how: 0,
            },
            traps: TrapBudget {
                harness_swallow: 1,
                replica_switch: 0,
                wrap_rethrow: 0,
                cap_helper_elsewhere: 1,
                sleep_helper_elsewhere: 2,
                poll_files: 4,
                param_files: 2,
                lock_files: 1,
            },
            covered_clean: 3,
            if_seeds: &[],
            tests_total: 12045,
            tests_cover_retry: 1388,
            config_restricting_pct: 10,
            filler_files: 2400,
            iteration_files: 60,
        },
    ]
}

/// Generation scale: divides test counts and filler-file counts so the
/// whole corpus can run quickly in CI while `Paper` scale reproduces the
/// evaluation volumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Full paper-scale volumes (≈82 k unit tests, ≈19 k files).
    Paper,
    /// Everything retry-related intact; tests and filler divided by 20.
    Small,
    /// Minimal filler for unit tests of the generator itself (÷200).
    Tiny,
}

impl Scale {
    /// The divisor applied to test and filler counts.
    pub fn divisor(self) -> usize {
        match self {
            Scale::Paper => 1,
            Scale::Small => 20,
            Scale::Tiny => 200,
        }
    }

    /// Scales a Paper-level count, keeping at least `min`.
    pub fn scale(self, count: usize, min: usize) -> usize {
        (count / self.divisor()).max(min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_apps_with_paper_short_codes() {
        let apps = paper_apps();
        let shorts: Vec<&str> = apps.iter().map(|a| a.short).collect();
        assert_eq!(shorts, vec!["HA", "HD", "MA", "YA", "HB", "HI", "CA", "EL"]);
    }

    #[test]
    fn loop_buckets_match_figure_4_totals() {
        let apps = paper_apps();
        let both: usize = apps.iter().map(|a| a.loops_both).sum();
        let cq: usize = apps.iter().map(|a| a.loops_codeql_only).sum();
        let llm: usize = apps.iter().map(|a| a.loops_llm_only).sum();
        let err: usize = apps.iter().map(|a| a.loops_errcode).sum();
        let queues: usize = apps.iter().map(|a| a.queues).sum();
        let fsms: usize = apps.iter().map(|a| a.fsms).sum();
        assert_eq!(both + cq + llm + err, 239, "total retry loops (Figure 4)");
        assert_eq!(cq, 100, "loops the LLM misses in large files (§4.2)");
        assert_eq!(queues, 47, "queue structures");
        assert_eq!(fsms, 37, "state-machine structures");
        assert_eq!(both + cq + llm + err + queues + fsms, 323, "total structures");
        // CodeQL finds both + codeql_only = 203 of 239 ≈ 85%.
        assert_eq!(both + cq, 203);
    }

    #[test]
    fn bug_budgets_match_tables_3_and_4() {
        let apps = paper_apps();
        let dyn_cap: usize = apps.iter().map(|a| a.bugs.cap_both + a.bugs.cap_dyn_only).sum();
        let dyn_delay: usize = apps
            .iter()
            .map(|a| a.bugs.delay_both + a.bugs.delay_dyn_only)
            .sum();
        let how: usize = apps.iter().map(|a| a.bugs.how).sum();
        assert_eq!(dyn_cap, 20, "true missing-cap bugs via unit testing (Table 3)");
        assert_eq!(dyn_delay, 17, "true missing-delay bugs via unit testing");
        assert_eq!(how, 5, "true HOW bugs");

        let llm_cap: usize = apps.iter().map(|a| a.bugs.cap_both + a.bugs.cap_llm_only).sum();
        let llm_delay: usize = apps
            .iter()
            .map(|a| a.bugs.delay_both + a.bugs.delay_llm_only)
            .sum();
        assert_eq!(llm_cap, 27, "true missing-cap bugs via the LLM (Table 4)");
        assert_eq!(llm_delay, 52, "true missing-delay bugs via the LLM");

        let overlap: usize = apps.iter().map(|a| a.bugs.cap_both + a.bugs.delay_both).sum();
        assert_eq!(overlap, 20, "dynamic/static overlap (Figure 3)");
    }

    #[test]
    fn trap_budgets_match_fp_taxonomy() {
        let apps = paper_apps();
        let harness: usize = apps.iter().map(|a| a.traps.harness_swallow).sum();
        let replica: usize = apps.iter().map(|a| a.traps.replica_switch).sum();
        let wrap: usize = apps.iter().map(|a| a.traps.wrap_rethrow).sum();
        assert_eq!(harness, 8, "dynamic missing-cap FPs (§4.3)");
        assert_eq!(replica, 8, "dynamic missing-delay FPs");
        assert_eq!(wrap, 5, "dynamic HOW FPs");
        let cap_helper: usize = apps.iter().map(|a| a.traps.cap_helper_elsewhere).sum();
        let sleep_helper: usize = apps.iter().map(|a| a.traps.sleep_helper_elsewhere).sum();
        assert_eq!(cap_helper, 8, "LLM missing-cap FP seeds");
        assert_eq!(sleep_helper, 8, "LLM missing-delay FP seeds");
    }

    #[test]
    fn identified_totals_match_table_5() {
        let apps = paper_apps();
        let identified: Vec<usize> = apps.iter().map(|a| a.total_structures()).collect();
        assert_eq!(identified, vec![38, 41, 16, 18, 98, 59, 15, 38]);
        assert_eq!(identified.iter().sum::<usize>(), 323);
    }

    #[test]
    fn test_totals_match_table_6() {
        let apps = paper_apps();
        let totals: Vec<usize> = apps.iter().map(|a| a.tests_total).collect();
        assert_eq!(
            totals,
            vec![7296, 7642, 1468, 5757, 7052, 35289, 5439, 12045]
        );
        for app in &apps {
            assert!(app.tests_cover_retry < app.tests_total);
        }
    }

    #[test]
    fn scale_divisors() {
        assert_eq!(Scale::Paper.scale(7296, 10), 7296);
        assert_eq!(Scale::Small.scale(7296, 10), 364);
        assert_eq!(Scale::Tiny.scale(7296, 10), 36);
        assert_eq!(Scale::Tiny.scale(100, 10), 10);
    }
}
