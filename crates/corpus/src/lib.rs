#![forbid(unsafe_code)]
//! The WASABI evaluation corpus.
//!
//! Two halves:
//!
//! - [`study`] — the §2 bug-study dataset: 70 real-world retry issues from
//!   six applications, encoded with root cause, mechanism, severity,
//!   trigger, and regression-test attributes (Tables 1–2 and the §2.5
//!   statistics);
//! - [`spec`], [`templates`], [`synth`] — the synthetic eight-application
//!   corpus the tool pipelines run on, generated deterministically from
//!   per-app specs calibrated to the paper's evaluation tables, with full
//!   ground truth ([`truth`]) so reports can be scored mechanically.

pub mod spec;
pub mod study;
pub mod synth;
pub mod templates;
pub mod truth;

pub use spec::{paper_apps, AppSpec, Scale};
pub use synth::{compile_app, generate_app, GeneratedApp};
pub use truth::{AppTruth, SeededBug, StructureKind, StructureTruth, Trap};
