//! Corpus-wide invariants: every generated file round-trips through the
//! pretty-printer, and the whole pipeline is deterministic.

use wasabi::corpus::spec::{paper_apps, Scale};
use wasabi::corpus::synth::generate_app;
use wasabi::lang::parser::parse_file;
use wasabi::lang::printer::print_items;

#[test]
fn printer_is_a_fixed_point_over_the_whole_corpus() {
    // MapReduce is the smallest app; Tiny scale keeps this fast while still
    // covering every template (structures are scale-invariant).
    let spec = paper_apps().into_iter().find(|s| s.short == "MA").expect("MA");
    let app = generate_app(&spec, Scale::Tiny);
    for (path, source) in &app.files {
        let items = parse_file(source).unwrap_or_else(|e| panic!("{path}: {e}"));
        let printed = print_items(&items);
        let reparsed =
            parse_file(&printed).unwrap_or_else(|e| panic!("{path} (printed): {e}"));
        assert_eq!(
            print_items(&reparsed),
            printed,
            "printer not a fixed point for {path}"
        );
    }
}

#[test]
fn every_app_has_the_spec_number_of_tests_at_tiny_scale() {
    for spec in paper_apps() {
        let app = generate_app(&spec, Scale::Tiny);
        let project = wasabi::corpus::synth::compile_app(&app);
        assert_eq!(
            project.tests().len(),
            app.tests_generated,
            "{}: generator bookkeeping vs discovered tests",
            spec.short
        );
        assert!(app.covering_tests > 0, "{}", spec.short);
    }
}

#[test]
fn full_pipeline_is_deterministic() {
    use wasabi::core::dynamic::{run_dynamic, DynamicOptions};
    use wasabi::core::identify::identify;
    use wasabi::llm::simulated::SimulatedLlm;

    let spec = paper_apps().into_iter().find(|s| s.short == "CA").expect("CA");
    let run = || {
        let app = generate_app(&spec, Scale::Tiny);
        let project = wasabi::corpus::synth::compile_app(&app);
        let mut llm = SimulatedLlm::with_seed(spec.seed);
        let identified = identify(&project, &mut llm);
        let result = run_dynamic(&project, &identified.locations, &DynamicOptions::default());
        let mut bugs: Vec<String> = result
            .bugs
            .iter()
            .map(|b| format!("{}:{}", b.kind, b.key))
            .collect();
        bugs.sort();
        (identified.locations.len(), result.runs_planned, bugs)
    };
    assert_eq!(run(), run());
}
