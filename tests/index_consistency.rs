//! Consistency and determinism tests for the compile-once `ProgramIndex`
//! against the name-based `SymbolTable` it replaces on the hot path.
//!
//! The synthetic corpus apps exercise deep exception hierarchies (wrapper
//! types, well-known JDK types, per-app families) and class inheritance,
//! so agreement over *every pair* here is strong evidence the precomputed
//! ancestry matrices encode exactly the declaration-time subtype relation.

use wasabi::corpus::spec::Scale;
use wasabi::corpus::synth::{compile_app, generate_all};
use wasabi::lang::project::Project;

/// The exception-ancestry matrix agrees with the symbol table's chain walk
/// for every ordered pair of declared exception types, in every corpus app.
#[test]
fn exception_matrix_matches_symbol_table_on_corpus() {
    for app in generate_all(Scale::Tiny) {
        let project = compile_app(&app);
        let names: Vec<&String> = project.symbols.exception_names().collect();
        assert!(!names.is_empty(), "{}: no exceptions declared", app.spec.name);
        for sub in &names {
            let sub_id = project
                .index
                .exc_by_name(sub)
                .unwrap_or_else(|| panic!("{}: `{sub}` missing from index", app.spec.name));
            for sup in &names {
                let sup_id = project.index.exc_by_name(sup).unwrap();
                assert_eq!(
                    project.index.is_exc_subtype(sub_id, sup_id),
                    project.symbols.is_exception_subtype(sub, sup),
                    "{}: matrix disagrees on {sub} <: {sup}",
                    app.spec.name
                );
            }
        }
    }
}

/// Same agreement for the class-ancestry matrix.
#[test]
fn class_matrix_matches_symbol_table_on_corpus() {
    for app in generate_all(Scale::Tiny) {
        let project = compile_app(&app);
        let names: Vec<&String> = project.symbols.class_names().collect();
        for sub in &names {
            let sub_id = project.index.class_by_name(sub).unwrap();
            for sup in &names {
                let sup_id = project.index.class_by_name(sup).unwrap();
                assert_eq!(
                    project.index.is_class_subtype(sub_id, sup_id),
                    project.symbols.is_class_subtype(sub, sup),
                    "{}: matrix disagrees on {sub} <: {sup}",
                    app.spec.name
                );
            }
        }
    }
}

/// Flattened dispatch tables agree with the symbol table's inheritance
/// walk: every `(class, method-name)` pair resolves on one side iff it
/// resolves on the other, with matching arity.
#[test]
fn dispatch_tables_match_method_resolution_on_corpus() {
    use std::collections::BTreeSet;
    for app in generate_all(Scale::Tiny) {
        let project = compile_app(&app);
        let method_names: BTreeSet<String> = project
            .all_methods()
            .map(|(_, _, m)| m.name.clone())
            .collect();
        for class in project.symbols.class_names() {
            let class_id = project.index.class_by_name(class).unwrap();
            for method in &method_names {
                let walked = project.resolve_method(class, method);
                let indexed = project
                    .index
                    .interner
                    .lookup(method)
                    .and_then(|sym| project.index.resolve_dispatch(class_id, sym));
                match (walked, indexed) {
                    (None, None) => {}
                    (Some((_, decl)), Some(midx)) => {
                        let compiled = &project.index.methods[midx as usize];
                        assert_eq!(
                            decl.params.len() as u32,
                            compiled.params,
                            "{}: arity mismatch for {class}.{method}",
                            app.spec.name
                        );
                    }
                    (walked, indexed) => panic!(
                        "{}: {class}.{method} resolves to {walked:?} by walk \
                         but {indexed:?} by dispatch table",
                        app.spec.name
                    ),
                }
            }
        }
    }
}

/// Building the index twice from identical sources yields an identical
/// index — interner, id assignment, layouts, and dispatch included. The
/// campaign engine's byte-identical reports rely on this.
#[test]
fn index_build_is_deterministic() {
    let app = &generate_all(Scale::Tiny)[0];
    let fingerprint = |project: &Project| {
        let index = &project.index;
        let mut out = String::new();
        for class in &index.classes {
            out.push_str(&format!(
                "class {} file={:?} parent={:?} has_init={} fields=[",
                class.name_str, class.file, class.parent, class.has_init
            ));
            for (sym, slot) in class.layout.slots() {
                out.push_str(&format!("{}:{slot},", index.interner.resolve(sym)));
            }
            out.push(']');
            out.push('\n');
        }
        for exc in &index.exceptions {
            out.push_str(&format!("exc {} parent={:?}\n", exc.name_str, exc.parent));
        }
        for config in &index.configs {
            out.push_str(&format!("config {} = {:?}\n", config.key, config.default));
        }
        for method in &index.methods {
            out.push_str(&format!(
                "method {} params={} slots={} body={:?}\n",
                index.interner.resolve(method.name),
                method.params,
                method.n_slots,
                method.body
            ));
        }
        out
    };
    let first = compile_app(app);
    let second = compile_app(app);
    assert_eq!(fingerprint(&first), fingerprint(&second));
}
