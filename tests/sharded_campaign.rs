//! End-to-end crash tolerance: `wasabi test --shards N` must produce a
//! report byte-identical to the single-process run — uninterrupted, after
//! a chaos-killed shard recovers, and again when the shard directory is
//! re-merged offline with `wasabi merge`. The simulated LLM keys on
//! relative source paths, so every invocation here runs from the same
//! working directory with the same relative arguments.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const APP: &str = "\
exception ConnectException;\n\
exception SocketException;\n\
exception TimeoutException;\n\
class Fetcher {\n\
  method op() throws ConnectException { return \"ok\"; }\n\
  method run() {\n\
    while (true) {\n\
      try { return this.op(); } catch (ConnectException e) { log(\"retrying\"); }\n\
    }\n\
  }\n\
  test tFetch() { assert(this.run() == \"ok\"); }\n\
}\n\
class Uploader {\n\
  field maxAttempts = 3;\n\
  method push() throws SocketException { return \"sent\"; }\n\
  method run() {\n\
    for (var retry = 0; retry < this.maxAttempts; retry = retry + 1) {\n\
      try { return this.push(); } catch (SocketException e) { sleep(40); }\n\
    }\n\
    throw new SocketException(\"giving up\");\n\
  }\n\
  test tPush() { assert(this.run() == \"sent\"); }\n\
}\n\
class Prober {\n\
  field maxAttempts = 4;\n\
  method ping() throws TimeoutException { return \"pong\"; }\n\
  method run() {\n\
    for (var retry = 0; retry < this.maxAttempts; retry = retry + 1) {\n\
      try { return this.ping(); } catch (TimeoutException e) { sleep(10); }\n\
    }\n\
    throw new TimeoutException(\"unreachable\");\n\
  }\n\
  test tPing() { assert(this.run() == \"pong\"); }\n\
}\n";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wasabi-sharded-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn wasabi_in(dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_wasabi"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("wasabi runs")
}

fn report(output: &Output, what: &str) -> String {
    let code = output.status.code().expect("wasabi exits, not signalled");
    assert!(
        code <= 1,
        "{what}: exit {code}, stderr:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout.clone()).expect("utf-8 report")
}

#[test]
fn sharded_campaign_report_is_byte_identical_to_single_process() {
    let dir = temp_dir("parity");
    std::fs::write(dir.join("app.jav"), APP).expect("write app");

    let single = report(
        &wasabi_in(&dir, &["test", "--quiet", "--json", "app.jav"]),
        "single-process",
    );
    assert!(single.contains("\"dead_lettered\": 0"), "report carries the DLQ count");

    let sharded = report(
        &wasabi_in(
            &dir,
            &["test", "--quiet", "--json", "--shards", "3", "--shard-dir", "shards", "app.jav"],
        ),
        "sharded",
    );
    assert_eq!(single, sharded, "sharded report must match single-process byte-for-byte");

    // The shard directory is a durable artifact: an offline merge re-derives
    // the identical report from the journals alone.
    let merged = report(&wasabi_in(&dir, &["merge", "--json", "shards"]), "merge");
    assert_eq!(single, merged, "offline merge must reproduce the report");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chaos_killed_shard_recovers_to_the_identical_report_reproducibly() {
    let dir = temp_dir("chaos");
    std::fs::write(dir.join("app.jav"), APP).expect("write app");

    let single = report(
        &wasabi_in(&dir, &["test", "--quiet", "--json", "app.jav"]),
        "single-process",
    );

    let chaos_args = [
        "test", "--quiet", "--json", "--shards", "3", "--chaos-kill-shard", "1",
        "--chaos-exit-after", "1",
    ];
    let mut reports = Vec::new();
    for round in 0..2 {
        let shard_dir = format!("shards-{round}");
        let mut args: Vec<&str> = chaos_args.to_vec();
        args.extend_from_slice(&["--shard-dir", &shard_dir, "app.jav"]);
        reports.push(report(&wasabi_in(&dir, &args), "chaos-killed sharded run"));
    }
    assert_eq!(
        reports[0], single,
        "a chaos-killed shard must recover to the uninterrupted report"
    );
    assert_eq!(reports[0], reports[1], "recovery must be reproducible for the same chaos seed");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn merge_refuses_changed_sources_and_missing_directories() {
    let dir = temp_dir("refuse");
    std::fs::write(dir.join("app.jav"), APP).expect("write app");
    report(
        &wasabi_in(
            &dir,
            &["test", "--quiet", "--json", "--shards", "2", "--shard-dir", "shards", "app.jav"],
        ),
        "sharded",
    );

    // Mutating the sources invalidates the manifest digest: the journals
    // describe runs of a different campaign and must not merge.
    std::fs::write(dir.join("app.jav"), APP.replace("\"pong\"", "\"gnop\"")).expect("rewrite");
    let changed = wasabi_in(&dir, &["merge", "--json", "shards"]);
    assert_eq!(changed.status.code(), Some(2), "changed sources are an input error");
    let stderr = String::from_utf8_lossy(&changed.stderr);
    assert!(stderr.contains("sources changed"), "unexpected stderr: {stderr}");

    let missing = wasabi_in(&dir, &["merge", "no-such-dir"]);
    assert_eq!(missing.status.code(), Some(2), "missing shard dir is an input error");

    let _ = std::fs::remove_dir_all(&dir);
}
