//! Cross-crate integration: the full WASABI pipeline on the synthetic
//! corpus, scored against ground truth.

use wasabi::core::dynamic::DynamicOptions;
use wasabi::core::score::{evaluate_app, Aggregate};
use wasabi::corpus::spec::{paper_apps, Scale};
use wasabi::corpus::synth::generate_app;

fn evaluate_all(scale: Scale) -> Aggregate {
    let options = DynamicOptions::default();
    let mut aggregate = Aggregate::default();
    for spec in paper_apps() {
        let app = generate_app(&spec, scale);
        aggregate.apps.push(evaluate_app(&app, &options));
    }
    aggregate
}

#[test]
fn table3_dynamic_bug_counts_match_the_paper_exactly() {
    let aggregate = evaluate_all(Scale::Tiny);
    let cap = aggregate.cell_sum(|a| a.dyn_cap);
    let delay = aggregate.cell_sum(|a| a.dyn_delay);
    let how = aggregate.cell_sum(|a| a.dyn_how);
    assert_eq!((cap.reported(), cap.fp), (28, 8), "missing-cap row of Table 3");
    assert_eq!((delay.reported(), delay.fp), (25, 8), "missing-delay row");
    assert_eq!((how.reported(), how.fp), (10, 5), "HOW row");
}

#[test]
fn figure3_bug_totals_hold_shape() {
    let aggregate = evaluate_all(Scale::Tiny);
    assert_eq!(aggregate.dynamic_bugs(), 42, "42 bugs via repurposed unit testing");
    let static_bugs = aggregate.static_bugs();
    assert!(
        (80..=92).contains(&static_bugs),
        "static bugs near the paper's 87, got {static_bugs}"
    );
    assert_eq!(aggregate.overlap(), 20, "20 bugs found by both workflows");
    let total = aggregate.total_bugs();
    assert!(
        (100..=115).contains(&total),
        "total distinct bugs near the paper's 109, got {total}"
    );
}

#[test]
fn table4_llm_detector_shape() {
    let aggregate = evaluate_all(Scale::Tiny);
    let cap = aggregate.cell_sum(|a| a.llm_cap);
    let delay = aggregate.cell_sum(|a| a.llm_delay);
    // The LLM finds more WHEN bugs than unit testing but with a worse FP
    // rate (paper: 60_33 cap, 79_27 delay; ~1.4 TP per FP overall).
    assert!((50..=70).contains(&cap.reported()), "cap reported {}", cap.reported());
    assert!((70..=95).contains(&delay.reported()), "delay reported {}", delay.reported());
    let tp = cap.tp + delay.tp;
    let fp = cap.fp + delay.fp;
    assert!(tp > fp, "more true than false positives ({tp} vs {fp})");
    assert!(fp * 3 > tp, "but a substantial FP rate, like the paper's");
}

#[test]
fn table5_identification_matches_per_app() {
    let aggregate = evaluate_all(Scale::Tiny);
    let identified: Vec<usize> = aggregate.apps.iter().map(|a| a.identified_any).collect();
    assert_eq!(identified, vec![38, 41, 16, 18, 98, 59, 15, 38], "Table 5 identified");
    for (app, paper_tested) in aggregate.apps.iter().zip([12, 27, 12, 11, 48, 14, 6, 5]) {
        let diff = app.tested.abs_diff(paper_tested);
        assert!(diff <= 1, "{}: tested {} vs paper {paper_tested}", app.app, app.tested);
    }
}

#[test]
fn figure4_identification_complementarity() {
    let aggregate = evaluate_all(Scale::Tiny);
    let loops_total: usize = aggregate.apps.iter().map(|a| a.loops_total).sum();
    let loops_codeql: usize = aggregate.apps.iter().map(|a| a.loops_codeql).sum();
    let loops_llm: usize = aggregate.apps.iter().map(|a| a.loops_llm).sum();
    assert_eq!(loops_total, 239);
    // CodeQL finds ~85% of loops; the LLM misses ~100 in large files.
    assert!(loops_codeql >= 200, "codeql loops {loops_codeql}");
    let llm_missed = loops_total - loops_llm;
    assert!(
        (85..=115).contains(&llm_missed),
        "LLM-missed loops near 100, got {llm_missed}"
    );
    // Non-loop structures are found only by the LLM.
    let nonloop_llm: usize = aggregate
        .apps
        .iter()
        .map(|a| a.identified_llm - a.loops_llm)
        .sum();
    assert!(nonloop_llm >= 70, "queue/FSM structures via LLM: {nonloop_llm}");
}

#[test]
fn if_analysis_finds_the_seeded_outliers() {
    let aggregate = evaluate_all(Scale::Tiny);
    let tp: usize = aggregate.apps.iter().map(|a| a.if_tp).sum();
    let fp: usize = aggregate.apps.iter().map(|a| a.if_fp).sum();
    let instances: usize = aggregate.apps.iter().map(|a| a.if_outlier_instances).sum();
    assert_eq!(tp, 5, "five true exception groups");
    assert_eq!(fp, 1, "the FileNotFoundException boolean-flag FP");
    assert_eq!(instances, 8, "eight true outlier instances (paper: 8 of 9)");
    // The exact ratios.
    let mut ratios: Vec<(String, usize, usize)> = aggregate
        .apps
        .iter()
        .flat_map(|a| a.if_ratios.clone())
        .collect();
    ratios.sort();
    let expect = [
        ("ExitException", 1, 3),
        ("FileNotFoundException", 1, 4),
        ("IllegalArgumentException", 2, 9),
        ("IllegalStateException", 1, 3),
        ("KeeperException", 17, 20),
        ("TTransportException", 2, 3),
    ];
    assert_eq!(ratios.len(), expect.len());
    for ((exc, r, n), (pe, pr, pn)) in ratios.iter().zip(expect) {
        assert_eq!((exc.as_str(), *r, *n), (pe, pr, pn));
    }
}

#[test]
fn fp_taxonomy_matches_section_4_3() {
    let aggregate = evaluate_all(Scale::Tiny);
    let count = |key: &str| -> usize {
        aggregate
            .apps
            .iter()
            .map(|a| a.fp_taxonomy.get(key).copied().unwrap_or(0))
            .sum()
    };
    assert_eq!(count("dyn-cap-harness-swallow"), 8);
    assert_eq!(count("dyn-delay-not-needed"), 8);
    assert_eq!(count("dyn-how-wrapped-exception"), 5);
    assert_eq!(count("if-boolean-flag-control-flow"), 1);
    assert!(count("llm-single-file-helper") >= 14, "single-file FPs near 16");
    assert!(count("llm-non-retry-file") >= 20, "non-retry-file FPs near 29");
}

#[test]
fn oracle_filtering_suppresses_rethrows() {
    let aggregate = evaluate_all(Scale::Tiny);
    let crashed: usize = aggregate.apps.iter().map(|a| a.crashed_runs).sum();
    let rethrows: usize = aggregate.apps.iter().map(|a| a.rethrow_filtered).sum();
    assert!(crashed > 0);
    assert!(
        rethrows * 10 >= crashed * 5,
        "a large share of crashes are filtered rethrows ({rethrows}/{crashed}); paper ~90%"
    );
}

#[test]
fn planning_reduces_runs_at_small_scale() {
    // The reduction only emerges when many tests cover each structure.
    let options = DynamicOptions::default();
    let spec = paper_apps().into_iter().find(|s| s.short == "CA").expect("CA");
    let app = generate_app(&spec, Scale::Small);
    let eval = evaluate_app(&app, &options);
    assert!(
        eval.runs_naive >= 5 * eval.runs_planned,
        "planning cuts runs: {} naive vs {} planned",
        eval.runs_naive,
        eval.runs_planned
    );
}
