//! Randomized property tests over the language front end, the CFG, and the
//! planner, driven by the in-repo seeded PRNG (`wasabi::util::Rng`) so the
//! suite needs no external framework and every failure is reproducible
//! from the printed seed.
//!
//! Gated behind the `proptest-suite` feature:
//! `cargo test --features proptest-suite --test property_tests`.

use wasabi::util::Rng;

// ---- Source generators -----------------------------------------------------

/// A small expression in concrete syntax.
fn gen_expr(rng: &mut Rng, depth: u32) -> String {
    let leaf = |rng: &mut Rng| match rng.below(7) {
        0 => rng.below(1000).to_string(),
        1 => "true".to_string(),
        2 => "false".to_string(),
        3 => "null".to_string(),
        4 => "x".to_string(),
        5 => "this.f".to_string(),
        _ => "\"lit\"".to_string(),
    };
    if depth == 0 {
        return leaf(rng);
    }
    match rng.below(5) {
        0 => leaf(rng),
        1 => {
            let a = gen_expr(rng, depth - 1);
            let b = gen_expr(rng, depth - 1);
            let op = *rng.pick(&["+", "-", "*", "==", "!=", "<", ">=", "&&", "||"]);
            // Logical operators need boolean operands at run time, but
            // parsing/printing does not evaluate, so any shape is fine.
            format!("({a} {op} {b})")
        }
        2 => format!("!({})", gen_expr(rng, depth - 1)),
        3 => format!("this.m({})", gen_expr(rng, depth - 1)),
        _ => {
            let a = gen_expr(rng, depth - 1);
            let b = gen_expr(rng, depth - 1);
            format!("this.g({a}, {b})")
        }
    }
}

/// A statement in concrete syntax.
fn gen_stmt(rng: &mut Rng, depth: u32) -> String {
    let simple = |rng: &mut Rng| match rng.below(8) {
        0 => format!("var v = {};", gen_expr(rng, 2)),
        1 => format!("x = {};", gen_expr(rng, 2)),
        2 => format!("log({});", gen_expr(rng, 2)),
        3 => format!("sleep(5);\n log({});", gen_expr(rng, 2)),
        4 => format!("return {};", gen_expr(rng, 2)),
        5 => "break;".to_string(),
        6 => "continue;".to_string(),
        _ => "throw new E(\"boom\");".to_string(),
    };
    if depth == 0 {
        return simple(rng);
    }
    match rng.below(6) {
        0 => simple(rng),
        1 => {
            let c = gen_expr(rng, 2);
            let a = gen_stmt(rng, depth - 1);
            let b = gen_stmt(rng, depth - 1);
            format!("if ({c}) {{ {a} }} else {{ {b} }}")
        }
        2 => {
            let c = gen_expr(rng, 2);
            let s = gen_stmt(rng, depth - 1);
            format!("while ({c}) {{ {s} }}")
        }
        3 => {
            let c = gen_expr(rng, 2);
            let s = gen_stmt(rng, depth - 1);
            format!("for (var i = 0; {c}; i = i + 1) {{ {s} }}")
        }
        4 => {
            let a = gen_stmt(rng, depth - 1);
            let b = gen_stmt(rng, depth - 1);
            format!("try {{ {a} }} catch (E e) {{ {b} }}")
        }
        _ => {
            let c = gen_expr(rng, 2);
            let a = gen_stmt(rng, depth - 1);
            let b = gen_stmt(rng, depth - 1);
            format!("switch ({c}) {{ case 1: {{ {a} }} default: {{ {b} }} }}")
        }
    }
}

fn gen_file(rng: &mut Rng) -> String {
    let count = rng.range(1, 6) as usize;
    let stmts: Vec<String> = (0..count).map(|_| gen_stmt(rng, 3)).collect();
    format!(
        "exception E;\nclass C {{\n  field f = 0;\n  method m(x) {{\n    {}\n  }}\n  method g(a, b) {{ return a; }}\n}}\n",
        stmts.join("\n    ")
    )
}

/// An arbitrary (mostly garbage) input string for totality tests: a mix of
/// ASCII printables, language punctuation, and a few multi-byte chars.
fn gen_garbage(rng: &mut Rng, max_len: usize) -> String {
    const POOL: &[char] = &[
        'a', 'z', 'A', 'Z', '0', '9', '_', ' ', '\n', '\t', '{', '}', '(', ')', ';', '"', '\\',
        '+', '-', '*', '/', '<', '>', '=', '!', '&', '|', '.', ',', ':', '\'', '\u{e9}',
        '\u{2603}', '\u{1f980}',
    ];
    let len = rng.below(max_len as u64 + 1) as usize;
    (0..len).map(|_| *rng.pick(POOL)).collect()
}

// ---- Front-end properties --------------------------------------------------

/// The lexer never panics and either tokenizes or reports an error.
#[test]
fn lexer_total_on_arbitrary_input() {
    use wasabi::lang::lexer::Lexer;
    for case in 0..128u64 {
        let mut rng = Rng::new(0x1_e7e5_0000 + case);
        let input = gen_garbage(&mut rng, 200);
        let _ = Lexer::tokenize(&input);
    }
}

/// The parser never panics on arbitrary input.
#[test]
fn parser_total_on_arbitrary_input() {
    use wasabi::lang::parser::parse_file;
    for case in 0..128u64 {
        let mut rng = Rng::new(0x9_a25e_0000 + case);
        let input = gen_garbage(&mut rng, 300);
        let _ = parse_file(&input);
    }
}

/// Printing is a fixed point through the parser: print(parse(print(p)))
/// equals print(p) for every generated program.
#[test]
fn printer_roundtrip_fixed_point() {
    use wasabi::lang::parser::parse_file;
    use wasabi::lang::printer::print_items;
    for case in 0..128u64 {
        let mut rng = Rng::new(0x9021_0000 + case);
        let source = gen_file(&mut rng);
        let items = parse_file(&source)
            .unwrap_or_else(|e| panic!("[case {case}] generated source failed to parse: {e}"));
        let printed = print_items(&items);
        let reparsed = parse_file(&printed).unwrap_or_else(|e| {
            panic!("[case {case}] printed source failed to parse: {e}\n{printed}")
        });
        let reprinted = print_items(&reparsed);
        assert_eq!(printed, reprinted, "[case {case}] printer not a fixed point");
    }
}

/// CFG construction is total on generated programs, every edge targets a
/// valid block, and loop headers are unique per loop id.
#[test]
fn cfg_structural_invariants() {
    use wasabi::analysis::cfg::Cfg;
    use wasabi::lang::ast::Item;
    use wasabi::lang::parser::parse_file;
    for case in 0..128u64 {
        let mut rng = Rng::new(0xcf9_0000 + case);
        let source = gen_file(&mut rng);
        let items = parse_file(&source).expect("generated source parses");
        for item in &items {
            let Item::Class(class) = item else { continue };
            for method in &class.methods {
                let cfg = Cfg::build(&method.body);
                let blocks = cfg.blocks.len();
                let mut headers = std::collections::HashSet::new();
                for block in &cfg.blocks {
                    for succ in &block.succs {
                        assert!((succ.0 as usize) < blocks, "[case {case}] edge out of range");
                    }
                    if let Some(id) = block.loop_header {
                        assert!(headers.insert(id), "[case {case}] duplicate header for {id}");
                    }
                }
                // Reachability from the entry never escapes the graph.
                let reachable = cfg.reachable_from(cfg.entry());
                assert!(reachable.len() <= blocks, "[case {case}] reachability escaped");
            }
        }
    }
}

/// Retry-loop detection is deterministic and keyword filtering only
/// removes loops (never adds).
#[test]
fn keyword_filter_is_monotone() {
    use wasabi::analysis::loops::{find_retry_loops, LoopQueryOptions};
    use wasabi::analysis::resolve::ProjectIndex;
    use wasabi::lang::parser::parse_file;
    use wasabi::lang::project::Project;
    for case in 0..128u64 {
        let mut rng = Rng::new(0x1007_0000 + case);
        let source = gen_file(&mut rng);
        let _ = parse_file(&source).expect("generated source parses");
        let Ok(project) = Project::compile("p", vec![("f.jav", source)]) else {
            continue; // e.g. `x = ...` before declaration; compile errors are fine
        };
        let index = ProjectIndex::build(&project);
        let with = find_retry_loops(&index, &LoopQueryOptions::default());
        let options = LoopQueryOptions {
            keyword_filter: false,
            ..LoopQueryOptions::default()
        };
        let without = find_retry_loops(&index, &options);
        assert!(with.len() <= without.len(), "[case {case}] filter added loops");
        let unfiltered: std::collections::HashSet<_> =
            without.iter().map(|l| (l.file, l.loop_id)).collect();
        for retry_loop in &with {
            assert!(
                unfiltered.contains(&(retry_loop.file, retry_loop.loop_id)),
                "[case {case}] filtered set is not a subset"
            );
        }
    }
}

// ---- Interning and slot-environment properties ------------------------------

/// A random identifier-ish string (the interner must also cope with
/// non-identifier text, so a few odd characters are mixed in).
fn gen_name(rng: &mut Rng) -> String {
    const POOL: &[char] = &[
        'a', 'b', 'z', 'A', 'Z', '0', '9', '_', '.', '<', '>', '\u{e9}',
    ];
    let len = rng.range(1, 12) as usize;
    (0..len).map(|_| *rng.pick(POOL)).collect()
}

/// `resolve(intern(s)) == s` over a generated corpus, interning is
/// idempotent (same symbol back), and distinct strings get distinct
/// symbols.
#[test]
fn interner_roundtrip_and_idempotence() {
    use std::collections::HashMap;
    use wasabi::lang::intern::Interner;
    for case in 0..64u64 {
        let mut rng = Rng::new(0x1_274e_0000 + case);
        let mut interner = Interner::new();
        let mut expected: HashMap<String, wasabi::lang::intern::Symbol> = HashMap::new();
        for _ in 0..rng.range(1, 300) {
            let name = gen_name(&mut rng);
            let sym = interner.intern(&name);
            match expected.get(&name) {
                Some(prior) => assert_eq!(*prior, sym, "[case {case}] intern not idempotent"),
                None => {
                    expected.insert(name.clone(), sym);
                }
            }
            assert_eq!(interner.resolve(sym), name, "[case {case}] roundtrip");
            assert_eq!(interner.lookup(&name), Some(sym), "[case {case}] lookup");
        }
        // Distinct strings map to distinct symbols.
        assert_eq!(interner.len(), expected.len(), "[case {case}] symbol reuse");
    }
}

// A reference evaluator over the *surface AST* with a string-keyed
// HashMap environment — the semantics the slot-lowered interpreter must
// reproduce. Covers int locals (declared anywhere, function-scoped),
// assignment, if/while, and wrapping arithmetic.
mod reference {
    use std::collections::HashMap;
    use wasabi::lang::ast::{BinOp, Block, Expr, Literal, Stmt};

    pub fn eval(env: &mut HashMap<String, i64>, expr: &Expr) -> i64 {
        match expr {
            Expr::Literal(Literal::Int(v), _) => *v,
            Expr::Unary {
                op: wasabi::lang::ast::UnOp::Neg,
                expr,
                ..
            } => eval(env, expr).wrapping_neg(),
            Expr::Ident(name, _) => env[name.as_str()],
            Expr::Binary { op, lhs, rhs, .. } => {
                let (a, b) = (eval(env, lhs), eval(env, rhs));
                match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    other => panic!("reference: unexpected int op {other:?}"),
                }
            }
            other => panic!("reference: unexpected expr {other:?}"),
        }
    }

    pub fn eval_cond(env: &mut HashMap<String, i64>, expr: &Expr) -> bool {
        match expr {
            Expr::Binary { op, lhs, rhs, .. } => {
                let (a, b) = (eval(env, lhs), eval(env, rhs));
                match op {
                    BinOp::Lt => a < b,
                    BinOp::LtEq => a <= b,
                    BinOp::Gt => a > b,
                    BinOp::GtEq => a >= b,
                    BinOp::Eq => a == b,
                    BinOp::NotEq => a != b,
                    other => panic!("reference: unexpected cmp {other:?}"),
                }
            }
            other => panic!("reference: unexpected cond {other:?}"),
        }
    }

    /// Executes a block; returns `Some(value)` when a `return` fired.
    pub fn exec(env: &mut HashMap<String, i64>, block: &Block) -> Option<i64> {
        for stmt in &block.stmts {
            match stmt {
                Stmt::Var { name, init, .. } => {
                    let value = eval(env, init);
                    env.insert(name.clone(), value);
                }
                Stmt::Assign { target, value, .. } => {
                    let value = eval(env, value);
                    match target {
                        wasabi::lang::ast::LValue::Var(name, _) => {
                            env.insert(name.clone(), value);
                        }
                        other => panic!("reference: unexpected lvalue {other:?}"),
                    }
                }
                Stmt::If {
                    cond,
                    then_blk,
                    else_blk,
                    ..
                } => {
                    if eval_cond(env, cond) {
                        if let Some(v) = exec(env, then_blk) {
                            return Some(v);
                        }
                    } else if let Some(else_blk) = else_blk {
                        if let Some(v) = exec(env, else_blk) {
                            return Some(v);
                        }
                    }
                }
                Stmt::While { cond, body, .. } => {
                    while eval_cond(env, cond) {
                        if let Some(v) = exec(env, body) {
                            return Some(v);
                        }
                    }
                }
                Stmt::Return { expr: Some(expr), .. } => return Some(eval(env, expr)),
                other => panic!("reference: unexpected stmt {other:?}"),
            }
        }
        None
    }
}

/// Generates an int-only method body over function-scoped locals: `var`
/// declarations (possibly nested inside branches, exercising the lowering
/// rule that locals are slotted per method, not per block), assignments,
/// `if`/`else`, and bounded `while` loops with fresh counters.
fn gen_int_body(rng: &mut Rng, vars: &mut Vec<String>, loops: &mut u32, depth: u32) -> String {
    let int_expr = |rng: &mut Rng, vars: &[String]| -> String {
        let leaf = |rng: &mut Rng, vars: &[String]| -> String {
            if !vars.is_empty() && rng.below(2) == 0 {
                rng.pick(vars).clone()
            } else {
                (rng.below(2000) as i64 - 1000).to_string()
            }
        };
        let a = leaf(rng, vars);
        let b = leaf(rng, vars);
        let op = *rng.pick(&["+", "-", "*"]);
        format!("({a} {op} {b})")
    };
    let cond_expr = |rng: &mut Rng, vars: &[String]| -> String {
        let a = int_expr(rng, vars);
        let b = int_expr(rng, vars);
        let cmp = *rng.pick(&["<", "<=", ">", ">=", "==", "!="]);
        format!("({a} {cmp} {b})")
    };
    let count = rng.range(1, 5) as usize;
    let mut out = String::new();
    for _ in 0..count {
        let choice = if depth == 0 { rng.below(2) } else { rng.below(4) };
        match choice {
            0 => {
                let name = format!("v{}", vars.len());
                out.push_str(&format!("var {name} = {};\n", int_expr(rng, vars)));
                vars.push(name);
            }
            1 if !vars.is_empty() => {
                let name = rng.pick(vars).clone();
                out.push_str(&format!("{name} = {};\n", int_expr(rng, vars)));
            }
            1 => {}
            2 => {
                // Vars declared inside a branch may be skipped at run time,
                // so they must not be read afterwards: generate each branch
                // with its own clone of the var list. Both clones start at
                // the same length, so sibling branches routinely declare the
                // same name — exercising slot sharing in the lowering.
                let cond = cond_expr(rng, vars);
                let mut then_vars = vars.clone();
                let then_blk = gen_int_body(rng, &mut then_vars, loops, depth - 1);
                let mut else_vars = vars.clone();
                let else_blk = gen_int_body(rng, &mut else_vars, loops, depth - 1);
                out.push_str(&format!(
                    "if ({cond}) {{\n{then_blk}}} else {{\n{else_blk}}}\n"
                ));
            }
            _ => {
                // Bounded loop on a fresh counter, so termination is
                // guaranteed whatever the generated body does.
                let counter = format!("l{loops}");
                *loops += 1;
                let bound = rng.range(1, 5);
                // The counter is deliberately NOT visible inside the body:
                // a generated `lN = ...` reset would loop forever.
                let mut body_vars = vars.clone();
                let body = gen_int_body(rng, &mut body_vars, loops, depth - 1);
                out.push_str(&format!(
                    "var {counter} = 0;\nwhile ({counter} < {bound}) {{\n{body}{counter} = {counter} + 1;\n}}\n"
                ));
                vars.push(counter);
            }
        }
    }
    out
}

/// The slot-addressed environment of the lowered interpreter computes the
/// same result as a string-keyed HashMap environment over the surface AST,
/// on random method bodies.
#[test]
fn slot_env_matches_reference_hashmap_env() {
    use std::collections::HashMap;
    use wasabi::lang::ast::Item;
    use wasabi::lang::parser::parse_file;
    use wasabi::lang::project::Project;
    use wasabi::vm::interp::{Interp, InvokeResult, RunLimits};
    use wasabi::vm::interceptor::NoopInterceptor;
    use wasabi::vm::Value;

    for case in 0..96u64 {
        let mut rng = Rng::new(0x5107_0000 + case);
        let mut vars = vec!["p0".to_string(), "p1".to_string()];
        let mut loops = 0u32;
        let body = gen_int_body(&mut rng, &mut vars, &mut loops, 3);
        // Mix every variable into the result so a single misassigned slot
        // changes the output.
        let sum = vars
            .iter()
            .enumerate()
            .map(|(i, v)| format!("{v} * {}", 2 * i as i64 + 1))
            .collect::<Vec<_>>()
            .join(" + ");
        let source = format!("class P {{\n method run(p0, p1) {{\n{body}return {sum};\n }}\n}}\n");

        // Reference: string-keyed environment over the parsed AST.
        let items = parse_file(&source)
            .unwrap_or_else(|e| panic!("[case {case}] generated source failed to parse: {e}"));
        let Item::Class(class) = &items[0] else {
            panic!("[case {case}] expected a class");
        };
        let method = &class.methods[0];
        let (a0, a1) = (rng.below(100) as i64, rng.below(100) as i64);
        let mut env: HashMap<String, i64> = HashMap::new();
        env.insert("p0".to_string(), a0);
        env.insert("p1".to_string(), a1);
        let expected = reference::exec(&mut env, &method.body)
            .unwrap_or_else(|| panic!("[case {case}] reference did not return"));

        // Subject: the slot-compiled interpreter.
        let project = Project::compile("prop", vec![("p.jav", source.clone())])
            .unwrap_or_else(|e| panic!("[case {case}] compile failed: {e:?}"));
        let mut noop = NoopInterceptor;
        let mut interp = Interp::new(&project, &mut noop, RunLimits::default());
        match interp.invoke("P", "run", vec![Value::Int(a0), Value::Int(a1)]) {
            InvokeResult::Ok(Value::Int(actual)) => {
                assert_eq!(actual, expected, "[case {case}]\n{source}");
            }
            other => panic!("[case {case}] unexpected result {other:?}\n{source}"),
        }
    }
}

// ---- Planner properties ----------------------------------------------------

/// Every coverable site appears exactly once in the plan, and only
/// covering tests are used.
#[test]
fn plan_covers_each_site_exactly_once() {
    use std::collections::BTreeSet;
    use wasabi::lang::ast::CallId;
    use wasabi::lang::project::{CallSite, FileId, MethodId};
    use wasabi::planner::coverage::CoverageProfile;
    use wasabi::planner::plan::plan;

    let site = |c: u32| CallSite { file: FileId(0), call: CallId(c) };
    for case in 0..64u64 {
        let mut rng = Rng::new(0x91a9_0000 + case);
        // 1..12 tests, each covering a random set of 0..6 sites from 0..20.
        let tests = rng.range(1, 12) as usize;
        let coverage: Vec<BTreeSet<u32>> = (0..tests)
            .map(|_| {
                let count = rng.below(6);
                (0..count).map(|_| rng.below(20) as u32).collect()
            })
            .collect();

        let mut profile = CoverageProfile {
            tests_total: coverage.len(),
            ..CoverageProfile::default()
        };
        for (i, sites) in coverage.iter().enumerate() {
            if sites.is_empty() {
                continue;
            }
            let test = MethodId::new("T", format!("t{i:02}"));
            let sites: Vec<CallSite> = sites.iter().map(|c| site(*c)).collect();
            for s in &sites {
                profile.site_to_tests.entry(*s).or_default().push(test.clone());
            }
            profile.per_test.insert(test, sites);
        }
        let all_sites: BTreeSet<CallSite> = (0u32..25).map(site).collect();
        let test_plan = plan(&profile, &all_sites);

        // Exactly-once coverage of every coverable site.
        let mut planned: Vec<CallSite> = test_plan.entries.iter().map(|e| e.site).collect();
        planned.sort();
        let mut expected: Vec<CallSite> = profile.covered_sites().into_iter().collect();
        expected.sort();
        assert_eq!(planned, expected, "[case {case}]");
        // Plan entries reference real covering tests.
        for entry in &test_plan.entries {
            let sites = &profile.per_test[&entry.test];
            assert!(sites.contains(&entry.site), "[case {case}]");
        }
        // Uncovered = all minus covered.
        assert_eq!(
            test_plan.uncovered_sites.len(),
            all_sites.len() - profile.covered_sites().len(),
            "[case {case}]"
        );
    }
}

// ---- Abstract-interpretation properties --------------------------------------

/// The statically inferred attempt-bound interval over-approximates what
/// the VM actually does: on random bounded retry loops (random
/// init/bound/step, failures injected through an argument, optionally
/// exiting early on success), the attempt count the interpreter observes
/// always falls inside the loop's static interval.
#[test]
fn attempt_interval_over_approximates_vm_attempts() {
    use wasabi::analysis::absint::analyze_method;
    use wasabi::lang::ast::Item;
    use wasabi::lang::project::Project;
    use wasabi::vm::interceptor::NoopInterceptor;
    use wasabi::vm::interp::{Interp, InvokeResult, RunLimits};
    use wasabi::vm::Value;

    for case in 0..96u64 {
        let mut rng = Rng::new(0xab51_0000 + case);
        let init = rng.below(4) as i64;
        let bound = rng.below(12) as i64;
        let step = rng.range(1, 4);
        // Half the cases return out of the loop on success (observing
        // fewer attempts than the bound permits), half run to the bound.
        let call = if rng.below(2) == 0 {
            "if ((fail - attempts) <= 0) { return attempts; }\n        this.op((fail - attempts));"
        } else {
            "this.op((fail - attempts));"
        };
        let source = format!(
            "exception E;\n\
             class C {{\n\
               method op(f) throws E {{\n\
                 if (f > 0) {{ throw new E(\"transient\"); }}\n\
                 return 1;\n\
               }}\n\
               method run(fail) {{\n\
                 var attempts = 0;\n\
                 for (var retry = {init}; retry < {bound}; retry = retry + {step}) {{\n\
                   attempts = attempts + 1;\n\
                   try {{\n\
                     {call}\n\
                   }} catch (E e) {{ sleep(1); }}\n\
                 }}\n\
                 return attempts;\n\
               }}\n\
             }}\n"
        );
        let project = Project::compile("prop", vec![("c.jav", source.clone())])
            .unwrap_or_else(|e| panic!("[case {case}] compile failed: {e:?}\n{source}"));

        let Item::Class(class) = &project.files[0].items[1] else {
            panic!("[case {case}] expected the class item");
        };
        let method = class
            .methods
            .iter()
            .find(|m| m.name == "run")
            .unwrap_or_else(|| panic!("[case {case}] C.run missing"));
        let abs = analyze_method(&project.index, "C", method);
        let obs = abs
            .loops
            .values()
            .next()
            .unwrap_or_else(|| panic!("[case {case}] no loop observation"));

        for fail in [0i64, 2, 5, 40] {
            let mut noop = NoopInterceptor;
            let mut interp = Interp::new(&project, &mut noop, RunLimits::default());
            let observed = match interp.invoke("C", "run", vec![Value::Int(fail)]) {
                InvokeResult::Ok(Value::Int(n)) => n,
                other => panic!("[case {case}] unexpected result {other:?}\n{source}"),
            };
            assert!(
                obs.attempts.lo <= observed && observed <= obs.attempts.hi,
                "[case {case}] fail={fail}: observed {observed} attempts outside \
                 static interval {}\n{source}",
                obs.attempts,
            );
        }
    }
}

/// Abstract interpretation is total and well-formed across every corpus
/// app (amplification and policy seeds included): every method analyses
/// without panicking, every loop observation carries a well-formed
/// attempts interval, and the sweep sees real finite attempt bounds.
#[test]
fn absint_is_total_and_well_formed_corpus_wide() {
    use wasabi::analysis::absint::{analyze_method, POS_INF};
    use wasabi::corpus::spec::{paper_apps, Scale};
    use wasabi::corpus::synth::{append_policy_seeds, compile_app, generate_app_with_amp};
    use wasabi::lang::ast::Item;

    let mut loops_seen = 0usize;
    let mut finite_bounds = 0usize;
    for spec in paper_apps() {
        let mut app = generate_app_with_amp(&spec, Scale::Tiny);
        append_policy_seeds(&mut app);
        let project = compile_app(&app);
        for file in &project.files {
            for item in &file.items {
                let Item::Class(class) = item else { continue };
                for method in &class.methods {
                    let abs = analyze_method(&project.index, &class.name, method);
                    for obs in abs.loops.values() {
                        loops_seen += 1;
                        assert!(
                            obs.attempts.lo <= obs.attempts.hi,
                            "{}.{}: malformed attempts interval {}",
                            class.name,
                            method.name,
                            obs.attempts
                        );
                        if obs.attempts.hi < POS_INF {
                            finite_bounds += 1;
                            assert!(
                                obs.attempts.lo >= 0,
                                "{}.{}: negative attempt bound {}",
                                class.name,
                                method.name,
                                obs.attempts
                            );
                        }
                    }
                }
            }
        }
    }
    assert!(loops_seen > 100, "sweep covered real loops ({loops_seen})");
    assert!(
        finite_bounds > 50,
        "sweep inferred finite attempt bounds ({finite_bounds})"
    );
}

// ---- Interprocedural summary properties -------------------------------------

/// A method body made of throws, rethrowing catches, and acyclic
/// `this` calls: method `i` may only call methods with larger indices, so
/// every generated program terminates and the call graph is a DAG.
fn gen_throwy_method(rng: &mut Rng, index: usize, methods: usize, depth: u32) -> String {
    let excs = ["E0", "E1", "E2"];
    let call = |rng: &mut Rng| -> Option<String> {
        if index + 1 >= methods {
            return None;
        }
        let callee = rng.range(index as i64 + 1, methods as i64) as usize;
        Some(format!("this.m{callee}((p + 1));"))
    };
    let simple = |rng: &mut Rng| match rng.below(4) {
        0 => format!("throw new {}(\"boom\");", rng.pick(&excs)),
        1 => call(rng).unwrap_or_else(|| "log(\"leaf\");".to_string()),
        2 => "return 1;".to_string(),
        _ => "log(\"noop\");".to_string(),
    };
    if depth == 0 {
        return simple(rng);
    }
    match rng.below(5) {
        0 | 1 => simple(rng),
        2 => {
            let a = gen_throwy_method(rng, index, methods, depth - 1);
            let b = gen_throwy_method(rng, index, methods, depth - 1);
            format!("if (p < {}) {{ {a} }} else {{ {b} }}", rng.below(10))
        }
        3 => {
            let body = gen_throwy_method(rng, index, methods, depth - 1);
            let caught = rng.pick(&excs);
            let handler = match rng.below(3) {
                0 => "throw e;".to_string(),
                1 => format!("throw new {}(\"wrapped\");", rng.pick(&excs)),
                _ => "log(\"swallowed\");".to_string(),
            };
            format!("try {{ {body} }} catch ({caught} e) {{ {handler} }}")
        }
        _ => {
            let a = gen_throwy_method(rng, index, methods, depth - 1);
            let b = gen_throwy_method(rng, index, methods, depth - 1);
            format!("{a}\n{b}")
        }
    }
}

/// Every exception the VM observes escaping a method is predicted by that
/// method's interprocedural may-throw summary (the static set
/// over-approximates the dynamic behaviour).
#[test]
fn may_throw_over_approximates_vm_exceptions() {
    use wasabi::analysis::callgraph::CallGraph;
    use wasabi::analysis::summaries::Summaries;
    use wasabi::lang::project::Project;
    use wasabi::vm::interceptor::NoopInterceptor;
    use wasabi::vm::interp::{Interp, InvokeResult, RunLimits};
    use wasabi::vm::Value;

    for case in 0..96u64 {
        let mut rng = Rng::new(0x7112_0000 + case);
        let methods = rng.range(2, 6) as usize;
        let bodies: Vec<String> = (0..methods)
            .map(|i| {
                let body = gen_throwy_method(&mut rng, i, methods, 3);
                format!(" method m{i}(p) {{ {body}\n return 0; }}")
            })
            .collect();
        let source = format!(
            "exception E0;\nexception E1;\nexception E2;\nclass C {{\n{}\n}}\n",
            bodies.join("\n")
        );
        let project = Project::compile("prop", vec![("c.jav", source.clone())])
            .unwrap_or_else(|e| panic!("[case {case}] compile failed: {e:?}\n{source}"));
        let cg = CallGraph::build(&project);
        let summaries = Summaries::compute(&project, &cg, &[], 1);
        let index = &project.index;

        for i in 0..methods {
            let name = format!("m{i}");
            let midx = (0..index.methods.len() as u32)
                .find(|&m| index.method_display(m) == format!("C.{name}"))
                .unwrap_or_else(|| panic!("[case {case}] method C.{name} not indexed"));
            let may_throw = &summaries.methods[midx as usize].may_throw;
            for arg in [0i64, 3, 7, 11] {
                let mut noop = NoopInterceptor;
                let mut interp = Interp::new(&project, &mut noop, RunLimits::default());
                match interp.invoke("C", &name, vec![Value::Int(arg)]) {
                    InvokeResult::Ok(_) => {}
                    InvokeResult::Exception(exc) => {
                        let escaped = index
                            .exc_by_name(&exc.ty)
                            .unwrap_or_else(|| panic!("[case {case}] undeclared {}", exc.ty));
                        assert!(
                            may_throw.iter().any(|&t| index.is_exc_subtype(escaped, t)),
                            "[case {case}] C.{name}({arg}) escaped {} but may-throw \
                             predicts only {:?}\n{source}",
                            exc.ty,
                            may_throw,
                        );
                    }
                    InvokeResult::Vm(err) => {
                        panic!("[case {case}] VM error in C.{name}({arg}): {err:?}\n{source}")
                    }
                }
            }
        }
    }
}
