//! Randomized property tests over the language front end, the CFG, and the
//! planner, driven by the in-repo seeded PRNG (`wasabi::util::Rng`) so the
//! suite needs no external framework and every failure is reproducible
//! from the printed seed.
//!
//! Gated behind the `proptest-suite` feature:
//! `cargo test --features proptest-suite --test property_tests`.

use wasabi::util::Rng;

// ---- Source generators -----------------------------------------------------

/// A small expression in concrete syntax.
fn gen_expr(rng: &mut Rng, depth: u32) -> String {
    let leaf = |rng: &mut Rng| match rng.below(7) {
        0 => rng.below(1000).to_string(),
        1 => "true".to_string(),
        2 => "false".to_string(),
        3 => "null".to_string(),
        4 => "x".to_string(),
        5 => "this.f".to_string(),
        _ => "\"lit\"".to_string(),
    };
    if depth == 0 {
        return leaf(rng);
    }
    match rng.below(5) {
        0 => leaf(rng),
        1 => {
            let a = gen_expr(rng, depth - 1);
            let b = gen_expr(rng, depth - 1);
            let op = *rng.pick(&["+", "-", "*", "==", "!=", "<", ">=", "&&", "||"]);
            // Logical operators need boolean operands at run time, but
            // parsing/printing does not evaluate, so any shape is fine.
            format!("({a} {op} {b})")
        }
        2 => format!("!({})", gen_expr(rng, depth - 1)),
        3 => format!("this.m({})", gen_expr(rng, depth - 1)),
        _ => {
            let a = gen_expr(rng, depth - 1);
            let b = gen_expr(rng, depth - 1);
            format!("this.g({a}, {b})")
        }
    }
}

/// A statement in concrete syntax.
fn gen_stmt(rng: &mut Rng, depth: u32) -> String {
    let simple = |rng: &mut Rng| match rng.below(8) {
        0 => format!("var v = {};", gen_expr(rng, 2)),
        1 => format!("x = {};", gen_expr(rng, 2)),
        2 => format!("log({});", gen_expr(rng, 2)),
        3 => format!("sleep(5);\n log({});", gen_expr(rng, 2)),
        4 => format!("return {};", gen_expr(rng, 2)),
        5 => "break;".to_string(),
        6 => "continue;".to_string(),
        _ => "throw new E(\"boom\");".to_string(),
    };
    if depth == 0 {
        return simple(rng);
    }
    match rng.below(6) {
        0 => simple(rng),
        1 => {
            let c = gen_expr(rng, 2);
            let a = gen_stmt(rng, depth - 1);
            let b = gen_stmt(rng, depth - 1);
            format!("if ({c}) {{ {a} }} else {{ {b} }}")
        }
        2 => {
            let c = gen_expr(rng, 2);
            let s = gen_stmt(rng, depth - 1);
            format!("while ({c}) {{ {s} }}")
        }
        3 => {
            let c = gen_expr(rng, 2);
            let s = gen_stmt(rng, depth - 1);
            format!("for (var i = 0; {c}; i = i + 1) {{ {s} }}")
        }
        4 => {
            let a = gen_stmt(rng, depth - 1);
            let b = gen_stmt(rng, depth - 1);
            format!("try {{ {a} }} catch (E e) {{ {b} }}")
        }
        _ => {
            let c = gen_expr(rng, 2);
            let a = gen_stmt(rng, depth - 1);
            let b = gen_stmt(rng, depth - 1);
            format!("switch ({c}) {{ case 1: {{ {a} }} default: {{ {b} }} }}")
        }
    }
}

fn gen_file(rng: &mut Rng) -> String {
    let count = rng.range(1, 6) as usize;
    let stmts: Vec<String> = (0..count).map(|_| gen_stmt(rng, 3)).collect();
    format!(
        "exception E;\nclass C {{\n  field f = 0;\n  method m(x) {{\n    {}\n  }}\n  method g(a, b) {{ return a; }}\n}}\n",
        stmts.join("\n    ")
    )
}

/// An arbitrary (mostly garbage) input string for totality tests: a mix of
/// ASCII printables, language punctuation, and a few multi-byte chars.
fn gen_garbage(rng: &mut Rng, max_len: usize) -> String {
    const POOL: &[char] = &[
        'a', 'z', 'A', 'Z', '0', '9', '_', ' ', '\n', '\t', '{', '}', '(', ')', ';', '"', '\\',
        '+', '-', '*', '/', '<', '>', '=', '!', '&', '|', '.', ',', ':', '\'', '\u{e9}',
        '\u{2603}', '\u{1f980}',
    ];
    let len = rng.below(max_len as u64 + 1) as usize;
    (0..len).map(|_| *rng.pick(POOL)).collect()
}

// ---- Front-end properties --------------------------------------------------

/// The lexer never panics and either tokenizes or reports an error.
#[test]
fn lexer_total_on_arbitrary_input() {
    use wasabi::lang::lexer::Lexer;
    for case in 0..128u64 {
        let mut rng = Rng::new(0x1e7e5_0000 + case);
        let input = gen_garbage(&mut rng, 200);
        let _ = Lexer::tokenize(&input);
    }
}

/// The parser never panics on arbitrary input.
#[test]
fn parser_total_on_arbitrary_input() {
    use wasabi::lang::parser::parse_file;
    for case in 0..128u64 {
        let mut rng = Rng::new(0x9a25e_0000 + case);
        let input = gen_garbage(&mut rng, 300);
        let _ = parse_file(&input);
    }
}

/// Printing is a fixed point through the parser: print(parse(print(p)))
/// equals print(p) for every generated program.
#[test]
fn printer_roundtrip_fixed_point() {
    use wasabi::lang::parser::parse_file;
    use wasabi::lang::printer::print_items;
    for case in 0..128u64 {
        let mut rng = Rng::new(0x9021_0000 + case);
        let source = gen_file(&mut rng);
        let items = parse_file(&source)
            .unwrap_or_else(|e| panic!("[case {case}] generated source failed to parse: {e}"));
        let printed = print_items(&items);
        let reparsed = parse_file(&printed).unwrap_or_else(|e| {
            panic!("[case {case}] printed source failed to parse: {e}\n{printed}")
        });
        let reprinted = print_items(&reparsed);
        assert_eq!(printed, reprinted, "[case {case}] printer not a fixed point");
    }
}

/// CFG construction is total on generated programs, every edge targets a
/// valid block, and loop headers are unique per loop id.
#[test]
fn cfg_structural_invariants() {
    use wasabi::analysis::cfg::Cfg;
    use wasabi::lang::ast::Item;
    use wasabi::lang::parser::parse_file;
    for case in 0..128u64 {
        let mut rng = Rng::new(0xcf9_0000 + case);
        let source = gen_file(&mut rng);
        let items = parse_file(&source).expect("generated source parses");
        for item in &items {
            let Item::Class(class) = item else { continue };
            for method in &class.methods {
                let cfg = Cfg::build(&method.body);
                let blocks = cfg.blocks.len();
                let mut headers = std::collections::HashSet::new();
                for block in &cfg.blocks {
                    for succ in &block.succs {
                        assert!((succ.0 as usize) < blocks, "[case {case}] edge out of range");
                    }
                    if let Some(id) = block.loop_header {
                        assert!(headers.insert(id), "[case {case}] duplicate header for {id}");
                    }
                }
                // Reachability from the entry never escapes the graph.
                let reachable = cfg.reachable_from(cfg.entry());
                assert!(reachable.len() <= blocks, "[case {case}] reachability escaped");
            }
        }
    }
}

/// Retry-loop detection is deterministic and keyword filtering only
/// removes loops (never adds).
#[test]
fn keyword_filter_is_monotone() {
    use wasabi::analysis::loops::{find_retry_loops, LoopQueryOptions};
    use wasabi::analysis::resolve::ProjectIndex;
    use wasabi::lang::parser::parse_file;
    use wasabi::lang::project::Project;
    for case in 0..128u64 {
        let mut rng = Rng::new(0x1007_0000 + case);
        let source = gen_file(&mut rng);
        let _ = parse_file(&source).expect("generated source parses");
        let Ok(project) = Project::compile("p", vec![("f.jav", source)]) else {
            continue; // e.g. `x = ...` before declaration; compile errors are fine
        };
        let index = ProjectIndex::build(&project);
        let with = find_retry_loops(&index, &LoopQueryOptions::default());
        let mut options = LoopQueryOptions::default();
        options.keyword_filter = false;
        let without = find_retry_loops(&index, &options);
        assert!(with.len() <= without.len(), "[case {case}] filter added loops");
        let unfiltered: std::collections::HashSet<_> =
            without.iter().map(|l| (l.file, l.loop_id)).collect();
        for retry_loop in &with {
            assert!(
                unfiltered.contains(&(retry_loop.file, retry_loop.loop_id)),
                "[case {case}] filtered set is not a subset"
            );
        }
    }
}

// ---- Planner properties ----------------------------------------------------

/// Every coverable site appears exactly once in the plan, and only
/// covering tests are used.
#[test]
fn plan_covers_each_site_exactly_once() {
    use std::collections::BTreeSet;
    use wasabi::lang::ast::CallId;
    use wasabi::lang::project::{CallSite, FileId, MethodId};
    use wasabi::planner::coverage::CoverageProfile;
    use wasabi::planner::plan::plan;

    let site = |c: u32| CallSite { file: FileId(0), call: CallId(c) };
    for case in 0..64u64 {
        let mut rng = Rng::new(0x91a9_0000 + case);
        // 1..12 tests, each covering a random set of 0..6 sites from 0..20.
        let tests = rng.range(1, 12) as usize;
        let coverage: Vec<BTreeSet<u32>> = (0..tests)
            .map(|_| {
                let count = rng.below(6);
                (0..count).map(|_| rng.below(20) as u32).collect()
            })
            .collect();

        let mut profile = CoverageProfile::default();
        profile.tests_total = coverage.len();
        for (i, sites) in coverage.iter().enumerate() {
            if sites.is_empty() {
                continue;
            }
            let test = MethodId::new("T", format!("t{i:02}"));
            let sites: Vec<CallSite> = sites.iter().map(|c| site(*c)).collect();
            for s in &sites {
                profile.site_to_tests.entry(*s).or_default().push(test.clone());
            }
            profile.per_test.insert(test, sites);
        }
        let all_sites: BTreeSet<CallSite> = (0u32..25).map(site).collect();
        let test_plan = plan(&profile, &all_sites);

        // Exactly-once coverage of every coverable site.
        let mut planned: Vec<CallSite> = test_plan.entries.iter().map(|e| e.site).collect();
        planned.sort();
        let mut expected: Vec<CallSite> = profile.covered_sites().into_iter().collect();
        expected.sort();
        assert_eq!(planned, expected, "[case {case}]");
        // Plan entries reference real covering tests.
        for entry in &test_plan.entries {
            let sites = &profile.per_test[&entry.test];
            assert!(sites.contains(&entry.site), "[case {case}]");
        }
        // Uncovered = all minus covered.
        assert_eq!(
            test_plan.uncovered_sites.len(),
            all_sites.len() - profile.covered_sites().len(),
            "[case {case}]"
        );
    }
}
