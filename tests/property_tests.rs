//! Property-based tests over the language front end, the CFG, and the
//! planner.

use proptest::prelude::*;
use wasabi::lang::lexer::Lexer;
use wasabi::lang::parser::parse_file;
use wasabi::lang::printer::print_items;

// ---- Source generation strategies -----------------------------------------

/// A small expression in concrete syntax.
fn arb_expr(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (0i64..1000).prop_map(|v| v.to_string()),
        Just("true".to_string()),
        Just("false".to_string()),
        Just("null".to_string()),
        Just("x".to_string()),
        Just("this.f".to_string()),
        Just("\"lit\"".to_string()),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = arb_expr(depth - 1);
    prop_oneof![
        leaf,
        (inner.clone(), inner.clone(), prop_oneof![
            Just("+"), Just("-"), Just("*"), Just("=="), Just("!="),
            Just("<"), Just(">="), Just("&&"), Just("||"),
        ])
            .prop_map(|(a, b, op)| {
                // Logical operators need boolean operands at run time, but
                // parsing/printing does not evaluate, so any shape is fine.
                format!("({a} {op} {b})")
            }),
        inner.clone().prop_map(|e| format!("!({e})")),
        inner.clone().prop_map(|e| format!("this.m({e})")),
        (inner.clone(), inner).prop_map(|(a, b)| format!("this.g({a}, {b})")),
    ]
    .boxed()
}

/// A statement in concrete syntax.
fn arb_stmt(depth: u32) -> BoxedStrategy<String> {
    let expr = arb_expr(2);
    let simple = prop_oneof![
        expr.clone().prop_map(|e| format!("var v = {e};")),
        expr.clone().prop_map(|e| format!("x = {e};")),
        expr.clone().prop_map(|e| format!("log({e});")),
        expr.clone().prop_map(|e| format!("sleep(5);\n log({e});")),
        expr.clone().prop_map(|e| format!("return {e};")),
        Just("break;".to_string()),
        Just("continue;".to_string()),
        Just("throw new E(\"boom\");".to_string()),
    ];
    if depth == 0 {
        return simple.boxed();
    }
    let inner = arb_stmt(depth - 1);
    prop_oneof![
        simple,
        (expr.clone(), inner.clone(), inner.clone())
            .prop_map(|(c, a, b)| format!("if ({c}) {{ {a} }} else {{ {b} }}")),
        (expr.clone(), inner.clone()).prop_map(|(c, s)| format!("while ({c}) {{ {s} }}")),
        (expr.clone(), inner.clone())
            .prop_map(|(c, s)| format!("for (var i = 0; {c}; i = i + 1) {{ {s} }}")),
        (inner.clone(), inner.clone())
            .prop_map(|(a, b)| format!("try {{ {a} }} catch (E e) {{ {b} }}")),
        (expr, inner.clone(), inner)
            .prop_map(|(c, a, b)| {
                format!("switch ({c}) {{ case 1: {{ {a} }} default: {{ {b} }} }}")
            }),
    ]
    .boxed()
}

fn arb_file() -> impl Strategy<Value = String> {
    proptest::collection::vec(arb_stmt(3), 1..6).prop_map(|stmts| {
        format!(
            "exception E;\nclass C {{\n  field f = 0;\n  method m(x) {{\n    {}\n  }}\n  method g(a, b) {{ return a; }}\n}}\n",
            stmts.join("\n    ")
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The lexer never panics and either tokenizes or reports an error.
    #[test]
    fn lexer_total_on_arbitrary_input(input in ".{0,200}") {
        let _ = Lexer::tokenize(&input);
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_total_on_arbitrary_input(input in ".{0,300}") {
        let _ = parse_file(&input);
    }

    /// Printing is a fixed point through the parser: print(parse(print(p)))
    /// equals print(p) for every generated program.
    #[test]
    fn printer_roundtrip_fixed_point(source in arb_file()) {
        let items = parse_file(&source).expect("generated source parses");
        let printed = print_items(&items);
        let reparsed = parse_file(&printed)
            .unwrap_or_else(|e| panic!("printed source failed to parse: {e}\n{printed}"));
        let reprinted = print_items(&reparsed);
        prop_assert_eq!(printed, reprinted);
    }

    /// CFG construction is total on generated programs, every edge targets a
    /// valid block, and loop headers are unique per loop id.
    #[test]
    fn cfg_structural_invariants(source in arb_file()) {
        use wasabi::analysis::cfg::Cfg;
        use wasabi::lang::ast::Item;
        let items = parse_file(&source).expect("parse");
        for item in &items {
            let Item::Class(class) = item else { continue };
            for method in &class.methods {
                let cfg = Cfg::build(&method.body);
                let blocks = cfg.blocks.len();
                let mut headers = std::collections::HashSet::new();
                for block in &cfg.blocks {
                    for succ in &block.succs {
                        prop_assert!((succ.0 as usize) < blocks, "edge out of range");
                    }
                    if let Some(id) = block.loop_header {
                        prop_assert!(headers.insert(id), "duplicate header for {id}");
                    }
                }
                // Reachability from the entry never escapes the graph.
                let reachable = cfg.reachable_from(cfg.entry());
                prop_assert!(reachable.len() <= blocks);
            }
        }
    }

    /// Retry-loop detection is deterministic and keyword filtering only
    /// removes loops (never adds).
    #[test]
    fn keyword_filter_is_monotone(source in arb_file()) {
        use wasabi::analysis::loops::{find_retry_loops, LoopQueryOptions};
        use wasabi::analysis::resolve::ProjectIndex;
        use wasabi::lang::project::Project;
        let Ok(project) = Project::compile("p", vec![("f.jav", source)]) else {
            return Ok(()); // e.g. `x = ...` before declaration is still valid; compile errors are fine
        };
        let index = ProjectIndex::build(&project);
        let with = find_retry_loops(&index, &LoopQueryOptions::default());
        let mut options = LoopQueryOptions::default();
        options.keyword_filter = false;
        let without = find_retry_loops(&index, &options);
        prop_assert!(with.len() <= without.len());
        let unfiltered: std::collections::HashSet<_> =
            without.iter().map(|l| (l.file, l.loop_id)).collect();
        for retry_loop in &with {
            prop_assert!(unfiltered.contains(&(retry_loop.file, retry_loop.loop_id)));
        }
    }
}

// ---- Planner properties ----------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every coverable site appears exactly once in the plan, and only
    /// covering tests are used.
    #[test]
    fn plan_covers_each_site_exactly_once(
        coverage in proptest::collection::vec(
            proptest::collection::btree_set(0u32..20, 0..6),
            1..12,
        )
    ) {
        use std::collections::BTreeSet;
        use wasabi::lang::ast::CallId;
        use wasabi::lang::project::{CallSite, FileId, MethodId};
        use wasabi::planner::coverage::CoverageProfile;
        use wasabi::planner::plan::plan;

        let site = |c: u32| CallSite { file: FileId(0), call: CallId(c) };
        let mut profile = CoverageProfile::default();
        profile.tests_total = coverage.len();
        for (i, sites) in coverage.iter().enumerate() {
            if sites.is_empty() {
                continue;
            }
            let test = MethodId::new("T", format!("t{i:02}"));
            let sites: Vec<CallSite> = sites.iter().map(|c| site(*c)).collect();
            for s in &sites {
                profile.site_to_tests.entry(*s).or_default().push(test.clone());
            }
            profile.per_test.insert(test, sites);
        }
        let all_sites: BTreeSet<CallSite> = (0u32..25).map(site).collect();
        let test_plan = plan(&profile, &all_sites);

        // Exactly-once coverage of every coverable site.
        let mut planned: Vec<CallSite> = test_plan.entries.iter().map(|e| e.site).collect();
        planned.sort();
        let mut expected: Vec<CallSite> = profile.covered_sites().into_iter().collect();
        expected.sort();
        prop_assert_eq!(planned.clone(), expected);
        // Plan entries reference real covering tests.
        for entry in &test_plan.entries {
            let sites = &profile.per_test[&entry.test];
            prop_assert!(sites.contains(&entry.site));
        }
        // Uncovered = all minus covered.
        prop_assert_eq!(
            test_plan.uncovered_sites.len(),
            all_sites.len() - profile.covered_sites().len()
        );
    }
}
