//! Integration tests for the interprocedural lint: determinism across
//! worker counts and runs, amplification precision/recall against the
//! seeded corpus ground truth, and CFG exceptional-edge invariants swept
//! across every generated method.

use wasabi::analysis::cfg::{BlockId, Cfg};
use wasabi::analysis::checkers::{lint_project, LintOptions};
use wasabi::analysis::diag::render_text;
use wasabi::core::lint::{cross_check, lint_with_overlap};
use wasabi::corpus::spec::{paper_apps, Scale};
use wasabi::corpus::synth::{
    append_policy_seeds, compile_app, generate_app, generate_app_with_amp, GeneratedApp,
};
use wasabi::lang::project::Project;
use wasabi::llm::simulated::SimulatedLlm;

fn amp_app(short: &str) -> (GeneratedApp, Project) {
    let spec = paper_apps()
        .into_iter()
        .find(|s| s.short == short)
        .expect("known app");
    let app = generate_app_with_amp(&spec, Scale::Small);
    let project = compile_app(&app);
    (app, project)
}

fn policy_app(short: &str) -> (GeneratedApp, Project) {
    let spec = paper_apps()
        .into_iter()
        .find(|s| s.short == short)
        .expect("known app");
    let mut app = generate_app(&spec, Scale::Small);
    append_policy_seeds(&mut app);
    let project = compile_app(&app);
    (app, project)
}

fn lint_text(project: &Project, jobs: usize) -> String {
    let options = LintOptions {
        jobs,
        ..LintOptions::default()
    };
    render_text(&lint_project(project, &options).diagnostics)
}

/// The rendered diagnostics are byte-identical whatever the worker count,
/// and across consecutive runs of the same configuration.
#[test]
fn lint_output_is_byte_identical_across_jobs_and_runs() {
    let (_, project) = amp_app("HD");
    let serial = lint_text(&project, 1);
    assert!(!serial.is_empty(), "corpus app produces diagnostics");
    assert_eq!(serial, lint_text(&project, 4), "jobs 1 vs 4");
    assert_eq!(serial, lint_text(&project, 1), "consecutive runs");
    // A fresh compile of the same sources also agrees: no hidden state.
    let (_, again) = amp_app("HD");
    assert_eq!(serial, lint_text(&again, 4), "fresh compile, jobs 4");
}

/// The amplification detector scores at least 0.9 precision AND recall
/// against the seeded ground truth, across all eight applications, and
/// every genuine finding carries the full call chain and the worst-case
/// attempt product.
#[test]
fn amplification_precision_and_recall_meet_the_bar() {
    let mut true_positives = 0usize;
    let mut genuine_total = 0usize;
    let mut reported_in_amp_files = 0usize;

    for spec in paper_apps() {
        let app = generate_app_with_amp(&spec, Scale::Small);
        let project = compile_app(&app);
        let result = lint_project(&project, &LintOptions::default());
        let amp_files: std::collections::BTreeSet<&str> = app
            .truth
            .amp_seeds
            .iter()
            .map(|s| s.file_path.as_str())
            .collect();
        let a001: Vec<_> = result
            .diagnostics
            .iter()
            .filter(|d| d.code == "A001" && amp_files.contains(d.file.as_str()))
            .collect();
        reported_in_amp_files += a001.len();

        for seed in &app.truth.amp_seeds {
            let matched = a001.iter().find(|d| {
                d.file == seed.file_path && d.coordinator == seed.coordinator.to_string()
            });
            if seed.genuine {
                genuine_total += 1;
                let diag = match matched {
                    Some(diag) => diag,
                    None => continue, // missed: costs recall
                };
                true_positives += 1;
                assert!(
                    diag.message.contains(&seed.expected_product),
                    "{}: finding lacks worst-case product {}: {}",
                    seed.id,
                    seed.expected_product,
                    diag.message
                );
                assert!(
                    diag.chain.first() == Some(&seed.coordinator.to_string())
                        && diag.chain.last() == Some(&seed.inner),
                    "{}: chain {:?} should run {} -> {}",
                    seed.id,
                    diag.chain,
                    seed.coordinator,
                    seed.inner
                );
            } else {
                assert!(
                    matched.is_none(),
                    "{}: decoy was reported: {:?}",
                    seed.id,
                    matched
                );
            }
        }
    }

    assert!(genuine_total > 0 && reported_in_amp_files > 0);
    let precision = true_positives as f64 / reported_in_amp_files as f64;
    let recall = true_positives as f64 / genuine_total as f64;
    assert!(
        precision >= 0.9,
        "precision {precision:.2} below 0.9 ({true_positives}/{reported_in_amp_files})"
    );
    assert!(
        recall >= 0.9,
        "recall {recall:.2} below 0.9 ({true_positives}/{genuine_total})"
    );
}

/// The W004/W005/W006 abstract-interpretation checkers score at least 0.9
/// precision AND recall *per code* against the seeded policy ground
/// truth, across all eight applications — the same bar the A001 gate
/// sets.
#[test]
fn policy_checkers_meet_the_precision_recall_bar_per_code() {
    let mut true_positives = std::collections::BTreeMap::new();
    let mut genuine_total = std::collections::BTreeMap::new();
    let mut reported = std::collections::BTreeMap::new();

    for spec in paper_apps() {
        let (app, project) = policy_app(spec.short);
        let result = lint_project(&project, &LintOptions::default());
        let policy_files: std::collections::BTreeSet<&str> = app
            .truth
            .policy_seeds
            .iter()
            .map(|s| s.file_path.as_str())
            .collect();
        for code in ["W004", "W005", "W006"] {
            let found: Vec<_> = result
                .diagnostics
                .iter()
                .filter(|d| d.code == code && policy_files.contains(d.file.as_str()))
                .collect();
            *reported.entry(code).or_insert(0usize) += found.len();
            for seed in app.truth.policy_seeds.iter().filter(|s| s.code == code) {
                let matched = found.iter().any(|d| {
                    d.file == seed.file_path && d.coordinator == seed.coordinator.to_string()
                });
                if seed.genuine {
                    *genuine_total.entry(code).or_insert(0usize) += 1;
                    if matched {
                        *true_positives.entry(code).or_insert(0usize) += 1;
                    }
                } else {
                    assert!(!matched, "{}: decoy was reported", seed.id);
                }
            }
        }
    }

    for code in ["W004", "W005", "W006"] {
        let tp = true_positives.get(code).copied().unwrap_or(0);
        let genuine = genuine_total.get(code).copied().unwrap_or(0);
        let found = reported.get(code).copied().unwrap_or(0);
        assert!(genuine > 0 && found > 0, "{code}: empty measurement");
        let precision = tp as f64 / found as f64;
        let recall = tp as f64 / genuine as f64;
        assert!(
            precision >= 0.9,
            "{code}: precision {precision:.2} below 0.9 ({tp}/{found})"
        );
        assert!(
            recall >= 0.9,
            "{code}: recall {recall:.2} below 0.9 ({tp}/{genuine})"
        );
    }
}

/// The cross-check agreement matrix is byte-identical across worker
/// counts: both detectors are deterministic and the cells are sorted.
#[test]
fn cross_check_matrix_is_byte_identical_across_jobs() {
    let (_, project) = policy_app("HB");
    let render = |jobs: usize| {
        let options = LintOptions {
            jobs,
            ..LintOptions::default()
        };
        let report = lint_with_overlap(&project, &mut SimulatedLlm::with_seed(0), &options);
        cross_check(&report.lint, &report.sweep).render_text()
    };
    let serial = render(1);
    assert!(
        serial.contains("static-only"),
        "policy seeds must surface static-only tiers:\n{serial}"
    );
    assert_eq!(serial, render(4), "jobs 1 vs 4");
    assert_eq!(serial, render(1), "consecutive runs");
}

/// Exceptional-edge invariants hold for every method of a generated
/// application: successor edges stay in bounds and every catch entry has a
/// predecessor and is reachable from its method's entry.
#[test]
fn cfg_exceptional_invariants_hold_corpus_wide() {
    use wasabi::lang::ast::Item;
    let (_, project) = amp_app("HB");
    let mut methods_seen = 0usize;
    let mut catch_entries = 0usize;
    for file in &project.files {
        for item in &file.items {
            let Item::Class(class) = item else { continue };
            for method in &class.methods {
                methods_seen += 1;
                let cfg = Cfg::build(&method.body);
                let n = cfg.blocks.len();
                let mut preds = vec![0usize; n];
                for block in &cfg.blocks {
                    for succ in &block.succs {
                        assert!((succ.0 as usize) < n, "edge out of bounds");
                        preds[succ.0 as usize] += 1;
                    }
                }
                let reachable: std::collections::HashSet<BlockId> =
                    cfg.reachable_from(cfg.entry()).into_iter().collect();
                for (i, block) in cfg.blocks.iter().enumerate() {
                    if block.catch_entry.is_none() {
                        continue;
                    }
                    catch_entries += 1;
                    assert!(
                        preds[i] > 0,
                        "{}.{}: catch entry without predecessor",
                        class.name,
                        method.name
                    );
                    assert!(
                        reachable.contains(&BlockId(i as u32)),
                        "{}.{}: unreachable catch entry",
                        class.name,
                        method.name
                    );
                }
            }
        }
    }
    assert!(methods_seen > 100, "sweep covered the whole app");
    assert!(catch_entries > 50, "sweep saw real exceptional edges");
}

/// The shard supervisor's own restart policy, transliterated to Javelin
/// (`examples/supervisor_policy.jav`), must be *recognized* as a retry
/// structure by the analyzer and still produce zero WHEN/HOW diagnostics:
/// the engine's crash-tolerance layer passes the rules it enforces.
#[test]
fn supervisor_policy_transliteration_is_recognized_and_lint_clean() {
    use wasabi::analysis::loops::{all_retry_locations, LoopQueryOptions};
    use wasabi::analysis::resolve::ProjectIndex;

    let source = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/supervisor_policy.jav"
    ))
    .expect("read supervisor policy example");
    let project = Project::compile("supervisor_policy", vec![("supervisor_policy.jav", &source)])
        .expect("example compiles");

    let index = ProjectIndex::build(&project);
    let locations: Vec<_> = all_retry_locations(&index, &LoopQueryOptions::default())
        .into_iter()
        .flat_map(|(_, locations)| locations)
        .collect();
    assert!(
        !locations.is_empty(),
        "the supervisor policy must be seen as a retry structure — a lint \
         that never looks at it proves nothing"
    );

    let result = lint_project(&project, &LintOptions::default());
    assert!(
        result.diagnostics.is_empty(),
        "supervisor policy must pass its own WHEN/HOW rules, got:\n{}",
        render_text(&result.diagnostics)
    );
}
