//! Campaign determinism: the dynamic workflow must produce byte-identical
//! results for every `--jobs` value. This is the engine's central contract
//! — parallelism is an implementation detail that must never leak into
//! reports, bug lists, or statistics.

use wasabi::analysis::loops::RetryLocation;
use wasabi::core::dynamic::{run_dynamic, DynamicOptions, DynamicResult};
use wasabi::core::identify::identify;
use wasabi::corpus::spec::{paper_apps, Scale};
use wasabi::corpus::synth::{compile_app, generate_app};
use wasabi::lang::project::Project;
use wasabi::llm::simulated::SimulatedLlm;

fn hdfs_small() -> (Project, Vec<RetryLocation>) {
    let spec = paper_apps().into_iter().find(|s| s.short == "HD").expect("HD");
    let app = generate_app(&spec, Scale::Small);
    let project = compile_app(&app);
    let mut llm = SimulatedLlm::with_seed(app.spec.seed);
    let identified = identify(&project, &mut llm);
    assert!(!identified.locations.is_empty(), "HDFS has retry locations");
    (project, identified.locations)
}

/// Everything in the result that callers consume, rendered to one string.
/// Scheduling-dependent engine fields (per-worker utilization, wall time)
/// are deliberately excluded — they are the only values allowed to vary.
fn render(result: &DynamicResult) -> String {
    format!(
        "reports: {:#?}\nbugs: {:#?}\nstats: {:?}\nplanned: {} naive: {}\ntested: {:?}\n\
         campaign: runs={} completed={} timed_out={} crashed={} rethrow={} not_trigger={} \
         reports={} injections={} virtual_ms={}",
        result.reports,
        result.bugs,
        result.stats,
        result.runs_planned,
        result.runs_naive,
        result.tested_structures,
        result.campaign.runs_total,
        result.campaign.completed,
        result.campaign.timed_out,
        result.campaign.crashed,
        result.campaign.rethrow_filtered,
        result.campaign.not_a_trigger,
        result.campaign.reports,
        result.campaign.injections,
        result.campaign.virtual_ms,
    )
}

#[test]
fn reports_are_byte_identical_for_any_job_count() {
    let (project, locations) = hdfs_small();
    let run = |jobs: usize| {
        let options = DynamicOptions {
            jobs,
            ..DynamicOptions::default()
        };
        render(&run_dynamic(&project, &locations, &options))
    };
    let serial = run(1);
    assert!(serial.contains("reports:"), "sanity: non-empty render");
    for jobs in [2, 8] {
        let parallel = run(jobs);
        assert_eq!(
            serial, parallel,
            "dynamic workflow diverged between jobs=1 and jobs={jobs}"
        );
    }
}

#[test]
fn timed_out_runs_are_reported_identically_on_every_worker_count() {
    // Corpus tests finish well under WALL_CHECK_INTERVAL steps, so they
    // never reach a deadline check; this project spins >4096 steps before
    // retrying, guaranteeing a zero budget cancels its runs. The quick
    // class stays under the interval and must keep completing.
    let src = "exception ConnectException;\nexception SocketException;\n\
         class Slow {\n\
           method spin() { var i = 0; while (i < 6000) { i = i + 1; } return i; }\n\
           method op() throws ConnectException { return \"ok\"; }\n\
           method run() {\n\
             while (true) {\n\
               try { return this.op(); } catch (ConnectException e) { log(\"retrying\"); }\n\
             }\n\
           }\n\
           test tSlow() { this.spin(); assert(this.run() == \"ok\"); }\n\
         }\n\
         class Quick {\n\
           field maxAttempts = 4;\n\
           method fetch() throws SocketException { return \"ok\"; }\n\
           method run() {\n\
             for (var retry = 0; retry < this.maxAttempts; retry = retry + 1) {\n\
               try { return this.fetch(); } catch (SocketException e) { sleep(25); }\n\
             }\n\
             throw new SocketException(\"giving up\");\n\
           }\n\
           test tQuick() { assert(this.run() == \"ok\"); }\n\
         }";
    let project = Project::compile("t", vec![("t.jav", src)]).expect("compile");
    let mut llm = SimulatedLlm::with_seed(5);
    let identified = identify(&project, &mut llm);
    assert!(identified.locations.len() >= 2);
    let run = |jobs: usize| {
        let options = DynamicOptions {
            jobs,
            // A zero budget cancels every run that reaches a deadline
            // check; the resulting timed-out/completed mix must not
            // depend on which worker executed which run.
            run_budget_ms: Some(0),
            ..DynamicOptions::default()
        };
        run_dynamic(&project, &identified.locations, &options)
    };
    let serial = run(1);
    assert!(
        serial.stats.timed_out > 0,
        "zero budget must cancel at least one run (got {:?})",
        serial.stats
    );
    assert!(
        serial.stats.timed_out < serial.stats.runs_executed,
        "short runs still complete (got {:?})",
        serial.stats
    );
    let parallel = run(8);
    assert_eq!(
        render(&serial),
        render(&parallel),
        "timed-out campaign diverged between jobs=1 and jobs=8"
    );
}
