//! Campaign determinism: the dynamic workflow must produce byte-identical
//! results for every `--jobs` value. This is the engine's central contract
//! — parallelism is an implementation detail that must never leak into
//! reports, bug lists, or statistics.

use wasabi::analysis::loops::RetryLocation;
use wasabi::core::dynamic::{run_dynamic, DynamicOptions, DynamicResult};
use wasabi::core::identify::identify;
use wasabi::corpus::spec::{paper_apps, Scale};
use wasabi::corpus::synth::{compile_app, generate_app};
use wasabi::engine::campaign::{ChaosConfig, RetryPolicy};
use wasabi::engine::journal;
use wasabi::lang::project::Project;
use wasabi::llm::simulated::SimulatedLlm;

fn hdfs_small() -> (Project, Vec<RetryLocation>) {
    let spec = paper_apps().into_iter().find(|s| s.short == "HD").expect("HD");
    let app = generate_app(&spec, Scale::Small);
    let project = compile_app(&app);
    let mut llm = SimulatedLlm::with_seed(app.spec.seed);
    let identified = identify(&project, &mut llm);
    assert!(!identified.locations.is_empty(), "HDFS has retry locations");
    (project, identified.locations)
}

/// Everything in the result that callers consume, rendered to one string.
/// Scheduling-dependent engine fields (per-worker utilization, wall time,
/// lost workers, resume bookkeeping) are deliberately excluded — they are
/// the only values allowed to vary.
fn render(result: &DynamicResult) -> String {
    format!(
        "reports: {:#?}\nbugs: {:#?}\nstats: {:?}\nplanned: {} naive: {}\ntested: {:?}\n\
         campaign: runs={} completed={} timed_out={} failed={} crashed={} retried={} \
         quarantined={} rethrow={} not_trigger={} reports={} injections={} virtual_ms={}",
        result.reports,
        result.bugs,
        result.stats,
        result.runs_planned,
        result.runs_naive,
        result.tested_structures,
        result.campaign.runs_total,
        result.campaign.completed,
        result.campaign.timed_out,
        result.campaign.failed,
        result.campaign.crashed,
        result.campaign.retried,
        result.campaign.quarantined,
        result.campaign.rethrow_filtered,
        result.campaign.not_a_trigger,
        result.campaign.reports,
        result.campaign.injections,
        result.campaign.virtual_ms,
    )
}

#[test]
fn reports_are_byte_identical_for_any_job_count() {
    let (project, locations) = hdfs_small();
    let run = |jobs: usize| {
        let options = DynamicOptions {
            jobs,
            ..DynamicOptions::default()
        };
        render(&run_dynamic(&project, &locations, &options))
    };
    let serial = run(1);
    assert!(serial.contains("reports:"), "sanity: non-empty render");
    for jobs in [2, 8] {
        let parallel = run(jobs);
        assert_eq!(
            serial, parallel,
            "dynamic workflow diverged between jobs=1 and jobs={jobs}"
        );
    }
}

#[test]
fn timed_out_runs_are_reported_identically_on_every_worker_count() {
    // Corpus tests finish well under WALL_CHECK_INTERVAL steps, so they
    // never reach a deadline check; this project spins >4096 steps before
    // retrying, guaranteeing a zero budget cancels its runs. The quick
    // class stays under the interval and must keep completing.
    let src = "exception ConnectException;\nexception SocketException;\n\
         class Slow {\n\
           method spin() { var i = 0; while (i < 6000) { i = i + 1; } return i; }\n\
           method op() throws ConnectException { return \"ok\"; }\n\
           method run() {\n\
             while (true) {\n\
               try { return this.op(); } catch (ConnectException e) { log(\"retrying\"); }\n\
             }\n\
           }\n\
           test tSlow() { this.spin(); assert(this.run() == \"ok\"); }\n\
         }\n\
         class Quick {\n\
           field maxAttempts = 4;\n\
           method fetch() throws SocketException { return \"ok\"; }\n\
           method run() {\n\
             for (var retry = 0; retry < this.maxAttempts; retry = retry + 1) {\n\
               try { return this.fetch(); } catch (SocketException e) { sleep(25); }\n\
             }\n\
             throw new SocketException(\"giving up\");\n\
           }\n\
           test tQuick() { assert(this.run() == \"ok\"); }\n\
         }";
    let project = Project::compile("t", vec![("t.jav", src)]).expect("compile");
    let mut llm = SimulatedLlm::with_seed(5);
    let identified = identify(&project, &mut llm);
    assert!(identified.locations.len() >= 2);
    let run = |jobs: usize| {
        let options = DynamicOptions {
            jobs,
            // A zero budget cancels every run that reaches a deadline
            // check; the resulting timed-out/completed mix must not
            // depend on which worker executed which run.
            run_budget_ms: Some(0),
            ..DynamicOptions::default()
        };
        run_dynamic(&project, &identified.locations, &options)
    };
    let serial = run(1);
    assert!(
        serial.stats.timed_out > 0,
        "zero budget must cancel at least one run (got {:?})",
        serial.stats
    );
    assert!(
        serial.stats.timed_out < serial.stats.runs_executed,
        "short runs still complete (got {:?})",
        serial.stats
    );
    let parallel = run(8);
    assert_eq!(
        render(&serial),
        render(&parallel),
        "timed-out campaign diverged between jobs=1 and jobs=8"
    );
}

#[test]
fn quarantined_chaos_campaign_is_byte_identical_for_any_job_count() {
    // Chaos panics are drawn per (key, attempt), so with a panic rate
    // this high and only two attempts some runs must exhaust the policy
    // and be quarantined. Containment, retry accounting, and quarantine
    // must all merge deterministically regardless of worker count.
    let (project, locations) = hdfs_small();
    let run = |jobs: usize| {
        let options = DynamicOptions {
            jobs,
            retry: RetryPolicy {
                max_attempts: 2,
                base_delay: std::time::Duration::ZERO,
                ..RetryPolicy::default()
            },
            chaos: Some(ChaosConfig::panics(0.6, 7)),
            ..DynamicOptions::default()
        };
        run_dynamic(&project, &locations, &options)
    };
    let serial = run(1);
    assert!(
        serial.campaign.crashed > 0 && serial.campaign.quarantined > 0,
        "chaos at 60% with 2 attempts must quarantine something (got {:?})",
        serial.campaign
    );
    assert!(
        serial.campaign.retried > 0,
        "first-attempt panics must be retried"
    );
    for jobs in [2, 8] {
        assert_eq!(
            render(&serial),
            render(&run(jobs)),
            "chaos campaign diverged between jobs=1 and jobs={jobs}"
        );
    }
}

#[test]
fn resumed_campaign_matches_uninterrupted_run_byte_for_byte() {
    let (project, locations) = hdfs_small();
    let mut path = std::env::temp_dir();
    path.push(format!("wasabi-determinism-resume-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let uninterrupted = run_dynamic(
        &project,
        &locations,
        &DynamicOptions {
            journal: Some(path.clone()),
            ..DynamicOptions::default()
        },
    );

    // Simulate a mid-campaign kill: keep the header and the first half of
    // the journal lines, with the last survivor torn mid-write.
    let text = std::fs::read_to_string(&path).expect("journal written");
    let lines: Vec<&str> = text.split_inclusive('\n').collect();
    assert!(lines.len() > 4, "campaign is big enough to cut in half");
    let mut cut: String = lines[..lines.len() / 2].concat();
    cut.truncate(cut.len() - 5);
    std::fs::write(&path, &cut).expect("cut journal");

    let recovered = journal::load_for_resume(&path).expect("recover cut journal");
    assert!(
        !recovered.is_empty() && recovered.len() < uninterrupted.campaign.runs_total,
        "partial recovery: {} of {}",
        recovered.len(),
        uninterrupted.campaign.runs_total
    );
    let resumed_from = recovered.len();
    let resumed = run_dynamic(
        &project,
        &locations,
        &DynamicOptions {
            jobs: 4,
            resume_records: recovered,
            ..DynamicOptions::default()
        },
    );
    let executed: usize =
        resumed.campaign.worker_runs.iter().sum::<usize>() + resumed.campaign.supervisor_runs;
    assert_eq!(
        executed,
        uninterrupted.campaign.runs_total - resumed_from,
        "resume must re-execute strictly fewer runs than the full plan"
    );
    assert_eq!(
        render(&uninterrupted),
        render(&resumed),
        "resumed campaign diverged from the uninterrupted one"
    );
    let _ = std::fs::remove_file(&path);
}
