//! Pins the CLI exit-code contract: 0 = success, 1 = findings in valid
//! inputs (retry bugs, lint diagnostics), 2 = usage, input, or I/O
//! errors. Scripts (xtask, CI) branch on these values — `run_wasabi_test`
//! tolerates 1 and aborts on ≥ 2 — so a drift here silently corrupts
//! every downstream gate.

use std::path::Path;
use std::process::{Command, Output};

const CLEAN_APP: &str = "\
exception E;\n\
class Clean {\n\
  method op() { return \"ok\"; }\n\
  test tOp() { assert(this.op() == \"ok\"); }\n\
}\n";

const BUGGY_APP: &str = "\
exception E;\n\
class Buggy {\n\
  method op() throws E { return \"ok\"; }\n\
  method run() {\n\
    while (true) {\n\
      try { return this.op(); } catch (E e) { log(\"retrying\"); }\n\
    }\n\
  }\n\
  test tRun() { assert(this.run() == \"ok\"); }\n\
}\n";

fn wasabi() -> Command {
    Command::new(env!("CARGO_BIN_EXE_wasabi"))
}

fn run(args: &[&str]) -> Output {
    wasabi().args(args).output().expect("wasabi runs")
}

fn code(output: &Output) -> i32 {
    output.status.code().expect("wasabi exits, not signalled")
}

fn write_app(dir: &Path, name: &str, source: &str) -> String {
    let path = dir.join(name);
    std::fs::write(&path, source).expect("write app");
    path.to_string_lossy().into_owned()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("wasabi-exit-codes-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn no_arguments_and_unknown_command_are_usage_errors() {
    assert_eq!(code(&run(&[])), 2);
    assert_eq!(code(&run(&["frobnicate"])), 2);
    assert_eq!(code(&run(&["test"])), 2, "no input files");
    assert_eq!(code(&run(&["test", "--jobs", "0", "x.jav"])), 2, "bad flag value");
}

#[test]
fn missing_and_invalid_inputs_are_exit_2() {
    let dir = temp_dir("invalid");
    assert_eq!(
        code(&run(&["test", "--quiet", "/nonexistent/missing.jav"])),
        2,
        "unreadable input"
    );
    let bad = write_app(&dir, "bad.jav", "class {");
    for command in ["analyze", "sweep", "lint", "test"] {
        assert_eq!(
            code(&run(&[command, "--quiet", &bad])),
            2,
            "compile errors are input errors, not findings ({command})"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clean_app_is_0_and_findings_are_1() {
    let dir = temp_dir("findings");
    let clean = write_app(&dir, "clean.jav", CLEAN_APP);
    let buggy = write_app(&dir, "buggy.jav", BUGGY_APP);
    assert_eq!(code(&run(&["test", "--quiet", &clean])), 0, "no retry bugs");
    assert_eq!(code(&run(&["test", "--quiet", &buggy])), 1, "retry bugs found");
    assert_eq!(code(&run(&["analyze", &clean])), 0);
    assert_eq!(code(&run(&["lint", "--quiet", &clean])), 0, "no diagnostics");
    assert_eq!(code(&run(&["lint", "--quiet", &buggy])), 1, "lint diagnostics");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corpus_io_failure_is_exit_2() {
    assert_eq!(code(&run(&["corpus", "NOPE", "/tmp"])), 2, "unknown app");
    assert_eq!(
        code(&run(&["corpus", "HD", "/proc/wasabi-cannot-write-here"])),
        2,
        "unwritable output directory"
    );
}

#[test]
fn stats_usage_errors_are_exit_2() {
    assert_eq!(code(&run(&["stats"])), 2, "no trace files");
    assert_eq!(code(&run(&["stats", "/nonexistent/trace.jsonl"])), 2);
}

#[test]
fn submit_without_daemon_is_exit_2() {
    assert_eq!(code(&run(&["submit", "x.jav"])), 2, "missing --addr");
    // Port 9 (discard) on loopback is never a wasabi daemon.
    assert_eq!(
        code(&run(&["submit", "--addr", "127.0.0.1:9", "x.jav"])),
        2,
        "connection refused is an I/O error"
    );
}
