//! Adaptive-mode invariants (`wasabi test --adaptive` and
//! `--profile-cache`): the adaptive planner must keep fixed-grid recall
//! on seeded ground truth while executing fewer runs, its report must be
//! byte-identical across worker counts and resume splits, and a
//! profile-cache hit must reproduce the fixed-grid report byte-exactly.

use std::path::{Path, PathBuf};
use std::process::Command;

/// Seeded ground truth: one uncapped+undelayed structure (both WHEN
/// bugs), one clean capped+delayed structure (rethrow-filtered give-up),
/// and one single-attempt structure whose two catch-paths wrap the
/// injected exception into *distinct* types (two HOW bugs, each
/// witnessed only by its own K=1 run).
const FLAKY: &str = "\
exception ConnectException;\n\
class Flaky {\n\
  method op() throws ConnectException { return \"ok\"; }\n\
  method run() {\n\
    while (true) {\n\
      try { return this.op(); } catch (ConnectException e) { log(\"retrying\"); }\n\
    }\n\
  }\n\
  test tFlaky() { assert(this.run() == \"ok\"); }\n\
}\n";

const SOLID: &str = "\
exception SocketException;\n\
class Solid {\n\
  field maxAttempts = 4;\n\
  method fetch() throws SocketException { return \"ok\"; }\n\
  method run() {\n\
    for (var retry = 0; retry < this.maxAttempts; retry = retry + 1) {\n\
      try { return this.fetch(); } catch (SocketException e) { sleep(25); }\n\
    }\n\
    throw new SocketException(\"giving up\");\n\
  }\n\
  test tSolid() { assert(this.run() == \"ok\"); }\n\
}\n";

const CORRUPT: &str = "\
exception E;\n\
exception F;\n\
exception WrapE;\n\
exception WrapF;\n\
class Corrupt {\n\
  field last = \"\";\n\
  method op() throws E, F { return \"ok\"; }\n\
  method run() {\n\
    for (var retry = 0; retry < 1; retry = retry + 1) {\n\
      try { return this.op(); }\n\
      catch (E e) { this.last = \"E\"; sleep(5); }\n\
      catch (F e) { this.last = \"F\"; sleep(5); }\n\
    }\n\
    if (this.last == \"E\") { throw new WrapE(\"corrupt\"); }\n\
    throw new WrapF(\"corrupt\");\n\
  }\n\
  test tRun() { assert(this.run() == \"ok\"); }\n\
}\n";

/// The same structure but wrapping both catch-paths into ONE type: the
/// two probes share an equivalence class, so adaptive dedups one widen
/// run — and must still report the identical (single) deduped bug.
const CORRUPT_SHARED: &str = "\
exception E;\n\
exception F;\n\
exception Wrap;\n\
class Shared {\n\
  method op() throws E, F { return \"ok\"; }\n\
  method run() {\n\
    for (var retry = 0; retry < 1; retry = retry + 1) {\n\
      try { return this.op(); }\n\
      catch (E e) { sleep(5); }\n\
      catch (F e) { sleep(5); }\n\
    }\n\
    throw new Wrap(\"gave up\");\n\
  }\n\
  test tRun() { assert(this.run() == \"ok\"); }\n\
}\n";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wasabi-adaptive-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn write_apps(dir: &Path, apps: &[(&str, &str)]) -> Vec<String> {
    apps.iter()
        .map(|(name, source)| {
            let path = dir.join(name);
            std::fs::write(&path, source).expect("write app");
            path.to_string_lossy().into_owned()
        })
        .collect()
}

/// Runs `wasabi test --json --quiet` with extra flags; exit 0/1 are both
/// fine (1 = bugs found), anything else is a harness failure.
fn test_json(files: &[String], extra: &[&str]) -> String {
    let output = Command::new(env!("CARGO_BIN_EXE_wasabi"))
        .arg("test")
        .arg("--json")
        .arg("--quiet")
        .args(extra)
        .args(files)
        .output()
        .expect("wasabi runs");
    let code = output.status.code().expect("wasabi exits");
    assert!(
        code <= 1,
        "wasabi test exited {code}: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("utf-8 report")
}

fn field(report: &str, name: &str) -> u64 {
    let needle = format!("\"{name}\": ");
    let at = report.find(&needle).unwrap_or_else(|| panic!("no {name} in report"));
    report[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("numeric field")
}

/// The report without its `runs_planned` line: adaptive executes fewer
/// runs by design, so recall comparisons strip the one field that
/// legitimately differs.
fn without_runs_planned(report: &str) -> String {
    report
        .lines()
        .filter(|line| !line.contains("\"runs_planned\""))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn adaptive_keeps_fixed_grid_recall_with_fewer_runs() {
    let dir = temp_dir("recall");
    let files = write_apps(
        &dir,
        &[("flaky.jav", FLAKY), ("solid.jav", SOLID), ("corrupt.jav", CORRUPT)],
    );
    let fixed = test_json(&files, &[]);
    let adaptive = test_json(&files, &["--adaptive"]);
    assert_eq!(
        without_runs_planned(&fixed),
        without_runs_planned(&adaptive),
        "adaptive must find the identical bug set (and identical everything else)"
    );
    assert!(
        field(&adaptive, "runs_planned") < field(&fixed, "runs_planned"),
        "adaptive must execute fewer runs: {} vs {}",
        field(&adaptive, "runs_planned"),
        field(&fixed, "runs_planned")
    );
    // Ground truth: both WHEN bugs and both distinct HOW bugs survive.
    for needle in ["missing-cap", "missing-delay", "WrapE", "WrapF"] {
        assert!(adaptive.contains(needle), "report lost {needle}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dedup_never_drops_a_sole_witness() {
    let dir = temp_dir("witness");
    // Distinct wrap types: the two probes have different fingerprints, so
    // neither widen run may be deduped away — each is the sole witness of
    // its own HOW bug.
    let files = write_apps(&dir, &[("corrupt.jav", CORRUPT)]);
    let fixed = test_json(&files, &[]);
    let adaptive = test_json(&files, &["--adaptive"]);
    assert_eq!(without_runs_planned(&fixed), without_runs_planned(&adaptive));
    assert_eq!(
        field(&adaptive, "runs_planned"),
        field(&fixed, "runs_planned"),
        "both probes are inconclusive with distinct fingerprints: nothing may be skipped"
    );

    // Shared wrap type: the probes collapse into one equivalence class,
    // one widen run dedups, and the (single) deduped bug is unchanged —
    // only its grouped-report count shrinks (the skipped run would have
    // contributed a second witness of the *same* bug, which is exactly
    // what makes it safe to skip).
    let files = write_apps(&dir, &[("shared.jav", CORRUPT_SHARED)]);
    let fixed = test_json(&files, &[]);
    let adaptive = test_json(&files, &["--adaptive"]);
    let bugs_only = |report: &str| -> String {
        without_runs_planned(report)
            .lines()
            .filter(|line| !line.contains("\"reports\""))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(bugs_only(&fixed), bugs_only(&adaptive));
    assert!(
        field(&adaptive, "runs_planned") < field(&fixed, "runs_planned"),
        "same-class probes must dedup the redundant widen run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn adaptive_report_is_byte_identical_across_jobs() {
    let dir = temp_dir("jobs");
    let files = write_apps(
        &dir,
        &[("flaky.jav", FLAKY), ("solid.jav", SOLID), ("corrupt.jav", CORRUPT)],
    );
    let serial = test_json(&files, &["--adaptive"]);
    let parallel = test_json(&files, &["--adaptive", "--jobs", "4"]);
    assert_eq!(serial, parallel, "adaptive selection must not depend on scheduling");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn adaptive_report_is_byte_identical_across_resume() {
    let dir = temp_dir("resume");
    let files = write_apps(
        &dir,
        &[("flaky.jav", FLAKY), ("solid.jav", SOLID), ("corrupt.jav", CORRUPT)],
    );
    let journal = dir.join("journal.jsonl");
    let journal_arg = journal.to_string_lossy().into_owned();
    let baseline = test_json(&files, &["--adaptive", "--journal", &journal_arg]);

    // Truncate the journal to its first half (simulating an interrupted
    // campaign: some probe records durable, nothing else) and resume.
    // The resumed report must be byte-identical — resumed probe records
    // feed the widen selection exactly like executed ones.
    let full = std::fs::read_to_string(&journal).expect("journal exists");
    let lines: Vec<&str> = full.lines().collect();
    assert!(lines.len() >= 4, "journal too small to split: {}", lines.len());
    let half: String = lines[..lines.len() / 2]
        .iter()
        .map(|line| format!("{line}\n"))
        .collect();
    let partial = dir.join("partial.jsonl");
    std::fs::write(&partial, half).expect("write partial journal");
    let partial_arg = partial.to_string_lossy().into_owned();
    let resumed = test_json(&files, &["--adaptive", "--resume", &partial_arg]);
    assert_eq!(baseline, resumed, "resume must not change the adaptive report");

    // Resuming from the *complete* journal re-executes nothing and still
    // reproduces the identical report.
    let complete = test_json(&files, &["--adaptive", "--resume", &journal_arg]);
    assert_eq!(baseline, complete);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn profile_cache_hit_reproduces_byte_identical_report() {
    let dir = temp_dir("cache");
    let files = write_apps(
        &dir,
        &[("flaky.jav", FLAKY), ("solid.jav", SOLID), ("corrupt.jav", CORRUPT)],
    );
    let cache = dir.join("profiles");
    let cache_arg = cache.to_string_lossy().into_owned();
    let uncached = test_json(&files, &[]);
    let cold = test_json(&files, &["--profile-cache", &cache_arg]);
    let warm = test_json(&files, &["--profile-cache", &cache_arg]);
    assert_eq!(uncached, cold, "writing the cache must not change the report");
    assert_eq!(cold, warm, "a cache hit must reproduce the report byte-exactly");
    assert_eq!(
        std::fs::read_dir(&cache).expect("cache dir").count(),
        1,
        "one digest, one cache entry"
    );
    // Bypass still reproduces the report (and refreshes the entry).
    let bypassed = test_json(
        &files,
        &["--profile-cache", &cache_arg, "--profile-cache-bypass"],
    );
    assert_eq!(cold, bypassed);

    // Changed sources change the digest: the old entry is ignored (not
    // silently reused) and a second entry appears.
    let mut changed = FLAKY.replace("tFlaky", "tFlakyRenamed");
    changed.push('\n');
    std::fs::write(dir.join("flaky.jav"), changed).expect("rewrite app");
    let _ = test_json(&files, &["--profile-cache", &cache_arg]);
    assert_eq!(
        std::fs::read_dir(&cache).expect("cache dir").count(),
        2,
        "a new digest must get its own entry"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn adaptive_refuses_sharding() {
    for combo in [
        vec!["test", "--adaptive", "--shards", "2", "x.jav"],
        vec!["test", "--adaptive", "--shard-range", "0:4", "x.jav"],
        vec!["test", "--profile-cache-bypass", "x.jav"],
    ] {
        let output = Command::new(env!("CARGO_BIN_EXE_wasabi"))
            .args(&combo)
            .output()
            .expect("wasabi runs");
        assert_eq!(output.status.code(), Some(2), "{combo:?} must be a usage error");
    }
}
