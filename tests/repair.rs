//! End-to-end `wasabi repair` invariants: the CLI fixes seeded retry
//! bugs in file mode, the corpus-mode report is byte-identical across
//! worker counts, and amplification repair touches only the files that
//! actually host a genuine A001 seed (decoys stay byte-identical).

use std::path::{Path, PathBuf};
use std::process::Command;

/// Uncapped + undelayed retry loop with a covering test: lint reports
/// W001 and W002, and the K=100 campaign confirms both dynamically.
const FLAKY: &str = "\
exception ConnectException;\n\
class Flaky {\n\
  method op() throws ConnectException { return 7; }\n\
  method run() {\n\
    while (true) {\n\
      try { return this.op(); } catch (ConnectException e) { log(\"retrying\"); }\n\
    }\n\
  }\n\
  test tFlaky() { assert(this.run() == 7); }\n\
}\n";

/// Clean capped + delayed retry: no diagnostics, must stay byte-identical.
const SOLID: &str = "\
class Solid {\n\
  field maxAttempts = 4;\n\
  method fetch() throws ConnectException { return \"ok\"; }\n\
  method run() {\n\
    for (var retry = 0; retry < this.maxAttempts; retry = retry + 1) {\n\
      try { return this.fetch(); } catch (ConnectException e) { sleep(25); }\n\
    }\n\
    throw new ConnectException(\"giving up\");\n\
  }\n\
  test tSolid() { assert(this.run() == \"ok\"); }\n\
}\n";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wasabi-repair-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn run_repair(args: &[&str]) -> (i32, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_wasabi"))
        .arg("repair")
        .args(args)
        .output()
        .expect("wasabi runs");
    let code = output.status.code().expect("wasabi exits");
    assert!(
        code <= 1,
        "wasabi repair exited {code}: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    (code, String::from_utf8(output.stdout).expect("utf-8 output"))
}

#[test]
fn repair_cli_fixes_file_mode_project_and_leaves_clean_files_alone() {
    let dir = temp_dir("files");
    let flaky = dir.join("flaky.jav");
    let solid = dir.join("solid.jav");
    std::fs::write(&flaky, FLAKY).expect("write flaky");
    std::fs::write(&solid, SOLID).expect("write solid");
    let out = dir.join("patched");

    let (code, report) = run_repair(&[
        "--json",
        "--out",
        out.to_str().expect("utf-8 path"),
        flaky.to_str().expect("utf-8 path"),
        solid.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(code, 0, "all targets fixed:\n{report}");
    assert!(report.contains("\"code\": \"W001\""), "{report}");
    assert!(report.contains("\"code\": \"W002\""), "{report}");
    assert!(!report.contains("\"fixed\": false"), "{report}");

    // The patched flaky file gained a cap guard and a delay; the clean
    // file came through byte-identical.
    let patched_flaky =
        std::fs::read_to_string(out.join(flaky.to_str().unwrap().trim_start_matches('/')))
            .expect("patched flaky");
    assert!(patched_flaky.contains("retryGuard"), "{patched_flaky}");
    assert!(patched_flaky.contains("sleep("), "{patched_flaky}");
    let patched_solid =
        std::fs::read_to_string(out.join(solid.to_str().unwrap().trim_start_matches('/')))
            .expect("patched solid");
    assert_eq!(patched_solid, SOLID);

    // The patched project re-lints clean: running repair on it finds
    // nothing left to fix.
    let flaky2 = dir.join("flaky2.jav");
    std::fs::write(&flaky2, &patched_flaky).expect("write flaky2");
    let (code, second) = run_repair(&[
        "--json",
        flaky2.to_str().expect("utf-8 path"),
        solid.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(code, 0, "{second}");
    assert!(second.contains("\"targets\": 0"), "{second}");
}

#[test]
fn repair_report_is_byte_identical_across_jobs() {
    let dir = temp_dir("jobs");
    for jobs in ["1", "4"] {
        let report = dir.join(format!("report-{jobs}.json"));
        let (_, _) = run_repair(&[
            "--corpus",
            "HA",
            "--scale",
            "tiny",
            "--amp",
            "--jobs",
            jobs,
            "--report",
            report.to_str().expect("utf-8 path"),
        ]);
    }
    let one = std::fs::read(dir.join("report-1.json")).expect("jobs 1 report");
    let four = std::fs::read(dir.join("report-4.json")).expect("jobs 4 report");
    assert_eq!(one, four, "repair report must not depend on --jobs");
}

#[test]
fn repair_fixes_amp_seeds_and_leaves_decoys_byte_identical() {
    let spec = wasabi::corpus::spec::paper_apps()
        .into_iter()
        .find(|s| s.short == "HA")
        .expect("HA spec");
    let generated =
        wasabi::corpus::synth::generate_app_with_amp(&spec, wasabi::corpus::spec::Scale::Tiny);
    let original: std::collections::BTreeMap<&str, &str> = generated
        .files
        .iter()
        .map(|(path, source)| (path.as_str(), source.as_str()))
        .collect();

    let dir = temp_dir("amp");
    let out = dir.join("patched");
    let report_path = dir.join("report.json");
    let (code, _) = run_repair(&[
        "--corpus",
        "HA",
        "--scale",
        "tiny",
        "--amp",
        "--report",
        report_path.to_str().expect("utf-8 path"),
        "--out",
        out.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(code, 0, "all HA targets fixed");
    let report = std::fs::read_to_string(&report_path).expect("report");
    assert!(report.contains("\"fix_rate_percent\": 100"), "{report}");

    let genuine_files: std::collections::BTreeSet<&str> = generated
        .truth
        .amp_seeds
        .iter()
        .filter(|seed| seed.genuine)
        .map(|seed| seed.file_path.as_str())
        .collect();
    assert!(!genuine_files.is_empty(), "HA --amp seeds genuine sites");
    let decoy_files: Vec<&str> = generated
        .truth
        .amp_seeds
        .iter()
        .filter(|seed| !seed.genuine)
        .map(|seed| seed.file_path.as_str())
        .filter(|path| !genuine_files.contains(path))
        .collect();
    assert!(!decoy_files.is_empty(), "HA --amp seeds decoy sites");

    for (path, source) in original {
        let patched = std::fs::read_to_string(Path::new(&out).join(path))
            .unwrap_or_else(|_| panic!("patched output for {path}"));
        if genuine_files.contains(path) {
            assert_ne!(patched, source, "genuine amp file {path} must be patched");
        }
        if decoy_files.contains(&path) {
            assert_eq!(patched, source, "decoy file {path} must stay untouched");
        }
    }
}
