#!/usr/bin/env bash
# CI entry point. Two stages:
#
#   1. tier-1: the gate every change must pass — release build + full test
#      suite with default features, exactly what `cargo tier1` runs.
#   2. all-features: compile check with every optional feature enabled
#      (json-reports, proptest-suite, bench-criterion) plus the
#      feature-gated test suites, so gated code can never rot.
#
# Everything resolves offline: the workspace has no registry dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== stage 1: tier-1 (default features) =="
cargo build --release
cargo test -q --workspace

echo "== stage 2: all features =="
cargo build --all-features
cargo test -q --workspace --all-features

echo "== ci: all stages passed =="
