#!/usr/bin/env bash
# CI entry point. Ten stages:
#
#   1. tier-1: the gate every change must pass — release build + full test
#      suite with default features, exactly what `cargo tier1` runs. Also
#      runs `cargo clippy --all-targets -- -D warnings`: the workspace is
#      lint-clean and stays that way.
#   2. all-features: compile check with every optional feature enabled
#      (json-reports, proptest-suite, bench-criterion) plus the
#      feature-gated test suites, so gated code can never rot.
#   3. resilience smoke: a chaos campaign (10% injected run panics,
#      --jobs 4) must report byte-identically to the serial run, a
#      kill-and-resume round-trip (journal cut mid-line, then --resume)
#      must report byte-identically to the uninterrupted baseline, and a
#      campaign recorded with --trace-out must pass `wasabi stats`
#      validation against its journal (schema, closed spans, attempt and
#      injection counts).
#   4. bench smoke: the seed-corpus `wasabi test --json` reports must
#      match the recorded digest (scripts/seed_report_digest.txt) — the
#      compile-once interning/index layer must never change observable
#      output — a one-iteration mini bench must run cleanly, and its
#      per-phase breakdown must sum to within 10% of measured wall time.
#   5. lint gate: `wasabi lint` over the pinned corpus apps (amplification
#      seeds included) must be byte-identical between --jobs 1 and
#      --jobs 4 and must report nothing outside the checked-in baseline
#      (scripts/lint_baseline.txt).
#   6. serve smoke: a `wasabi serve` daemon on a loopback port must
#      answer two submissions of the seed app with byte-identical
#      reports whose digest equals the batch value pinned in
#      scripts/seed_report_digest.txt, and the second submission must
#      be a compiled-app cache hit.
#   7. chaos shard smoke: the seed app as a 4-shard multi-process
#      campaign with one shard chaos-killed mid-flight must recover and
#      merge to the exact single-process report bytes (digest-pinned),
#      `wasabi merge` must reproduce them offline from the shard
#      directory, and a same-chaos-seed rerun must be byte-identical.
#   8. adaptive gate: `wasabi test --adaptive` over all eight corpus
#      apps must report the exact fixed-grid bug set while executing at
#      least 40% fewer runs in aggregate, and a paper-scale bench with a
#      warm --profile-cache must cut the cold wall by at least 30%
#      (writes BENCH_PR8.json).
#   9. repair gate: `wasabi repair` over all eight corpus apps (small
#      scale, amplification seeds included) must fix at least 80% of the
#      fixable seeded W001/W002/A001 bugs — in aggregate and per class —
#      within the default 3 attempts, with byte-identical reports for
#      --jobs 1 and --jobs 4 (writes BENCH_PR9.json).
#  10. lint gate (retry-policy abstract interpretation): `wasabi lint
#      --json --cross-check` over all eight corpus apps (small scale,
#      amplification and policy seeds included) must be byte-identical
#      between --jobs 1 and --jobs 4, and the W004/W005/W006 findings
#      must score at least 0.9 precision and recall per code against the
#      policy_truth.json sidecars (writes BENCH_PR10.json).
#
# Everything resolves offline: the workspace has no registry dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== stage 1: tier-1 (default features + clippy) =="
cargo build --release
cargo test -q --workspace
cargo clippy --all-targets -- -D warnings

echo "== stage 2: all features =="
cargo build --all-features
cargo test -q --workspace --all-features

echo "== stage 3: resilience smoke =="
cargo xtask smoke

echo "== stage 4: bench smoke (report digest + mini bench) =="
cargo xtask bench --smoke

echo "== stage 5: lint gate (static diagnostics vs baseline) =="
cargo xtask lint

echo "== stage 6: serve smoke (daemon vs batch digest, cache hit) =="
cargo xtask serve-smoke

echo "== stage 7: chaos shard smoke (killed shard recovers, digest-pinned merge) =="
cargo xtask chaos-shard-smoke

echo "== stage 8: adaptive gate (fixed-grid recall at reduced budget, cache payoff) =="
cargo xtask adaptive-gate

echo "== stage 9: repair gate (auto-repair fix rate vs seeded ground truth) =="
cargo xtask repair-gate

echo "== stage 10: lint gate (W004-W006 precision/recall, cross-check matrix) =="
cargo xtask lint-gate

echo "== ci: all stages passed =="
