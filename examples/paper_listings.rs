//! The four bug patterns from §2 of the paper (Listings 1–4), encoded in
//! Javelin and run through the relevant WASABI machinery.
//!
//! Run with `cargo run --example paper_listings`.

use wasabi::analysis::ifratio::{if_ratio_reports, IfOptions};
use wasabi::analysis::loops::{all_retry_locations, LoopQueryOptions};
use wasabi::analysis::resolve::ProjectIndex;
use wasabi::core::dynamic::{run_dynamic, DynamicOptions};
use wasabi::core::identify::identify;
use wasabi::lang::project::Project;
use wasabi::llm::simulated::SimulatedLlm;

/// Listing 2 — HADOOP-16683: AccessControlException is correctly not
/// retried, but other paths wrap it inside HadoopException, which is.
const LISTING2: &str = r#"
exception IOException;
exception AccessControlException extends IOException;
exception ConnectException extends IOException;
exception HadoopException;

class WebHdfsFileSystem {
    field maxAttempts = 5;
    method connect(url) throws AccessControlException, ConnectException, HadoopException {
        return "conn";
    }
    method getResponse(conn) throws IOException { return "ok"; }
    method run() throws IOException {
        for (var retry = 0; retry < this.maxAttempts; retry = retry + 1) {
            try {
                var conn = this.connect("hdfs://nn");
                return this.getResponse(conn);
            }
            catch (AccessControlException e) { break; }
            catch (HadoopException he) {
                // The buggy version retries HadoopException even when it
                // wraps a non-recoverable AccessControlException.
                log("wrapped error, retrying");
            }
            catch (ConnectException ce) { }
            sleep(1000);
        }
        return null;
    }
    test tRun() { assert(this.run() == "ok"); }
}
"#;

/// Listing 3 — HIVE-23894: a cancelled task is re-submitted as if failed.
const LISTING3: &str = r#"
exception TaskException;

class TezTask {
    field isShutdown = false;
    field done = false;
    method executeTez() throws TaskException { this.done = true; return "ok"; }
}

class TaskProcessor {
    field taskQueue;
    method init() { this.taskQueue = queue(); }
    method submit(task) { this.taskQueue.put(task); }
    method run() {
        while (!this.taskQueue.isEmpty()) {
            var task = this.taskQueue.take();
            try { task.executeTez(); }
            catch (TaskException e) {
                // FIX (paper): only resubmit if not cancelled.
                if (task.isShutdown == false) {
                    this.taskQueue.putDelayed(task, 100);
                }
            }
        }
        return "drained";
    }
}
"#;

/// Listing 4 — HBASE-20492: a state-machine step retries with no delay.
const LISTING4: &str = r#"
exception MetaException;

class UnassignProcedure {
    field state = "REGION_TRANSITION_DISPATCH";
    field finished = false;
    field failures = 2;
    method markRegionAsClosing() throws MetaException {
        if (this.failures > 0) {
            this.failures = this.failures - 1;
            throw new MetaException("meta table not ready");
        }
        return "marked";
    }
    method execute() throws MetaException {
        switch (this.state) {
            case "REGION_TRANSITION_DISPATCH": {
                try {
                    this.markRegionAsClosing();
                    this.state = "REGION_TRANSITION_FINISH";
                }
                catch (MetaException e) {
                    // Fix adds delay before the implicit retry:
                    // sleep(1000 * pow(2, attemptCount));
                    log("step failed; executor will retry this state");
                }
            }
            case "REGION_TRANSITION_FINISH": { this.finished = true; }
        }
        return null;
    }
    method drive() throws MetaException {
        while (!this.finished) { this.execute(); }
        return "done";
    }
    test tDrive() { assert(this.drive() == "done"); }
}
"#;

/// Listing 1 — KAFKA-6829 flavored as the IF-ratio analysis sees it: the
/// same exception retried in most loops but forgotten in one.
fn listing1_project() -> Project {
    let mut src = String::from(
        "exception UnknownTopicOrPartition;\n\
         class Broker { method commitOffset() throws UnknownTopicOrPartition { return 1; } }\n",
    );
    for i in 0..4 {
        src.push_str(&format!(
            "class Handler{i} {{\n\
               method run(broker) {{\n\
                 for (var retry = 0; retry < 5; retry = retry + 1) {{\n\
                   try {{ return broker.commitOffset(); }}\n\
                   catch (UnknownTopicOrPartition e) {{ sleep(50); }}\n\
                 }}\n\
                 return null;\n\
               }}\n\
             }}\n"
        ));
    }
    // The forgotten handler: commit errors propagate instead of retrying.
    src.push_str(
        "exception Transient;\n\
         class ResponseHandler {\n\
           method flaky() throws Transient { return 1; }\n\
           method run(broker) {\n\
             for (var retry = 0; retry < 5; retry = retry + 1) {\n\
               try { broker.commitOffset(); return this.flaky(); }\n\
               catch (Transient e) { sleep(50); }\n\
             }\n\
             return null;\n\
           }\n\
         }\n",
    );
    Project::compile("kafka-6829", vec![("handlers.jav", src)]).expect("compile")
}

fn main() {
    // Listing 1: the IF-ratio checker flags the forgotten handler.
    println!("== Listing 1 (KAFKA-6829): IF-policy outlier ==");
    let project = listing1_project();
    let index = ProjectIndex::build(&project);
    for report in if_ratio_reports(&index, &IfOptions::default()) {
        println!(
            "{} retried in {}/{} retry loops; outliers: {}",
            report.exception,
            report.r,
            report.n,
            report
                .outliers
                .iter()
                .map(|o| o.coordinator.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    // Listing 2: the loop query extracts the retry-location triplets.
    println!("\n== Listing 2 (HADOOP-16683): retry locations ==");
    let project = Project::compile("hadoop-16683", vec![("webhdfs.jav", LISTING2)]).unwrap();
    let index = ProjectIndex::build(&project);
    for (retry_loop, locations) in all_retry_locations(&index, &LoopQueryOptions::default()) {
        println!(
            "retry loop in {} catches {:?}",
            retry_loop.coordinator, retry_loop.reaching_catches
        );
        for location in locations {
            println!("  location: {} may throw {}", location.retried, location.exception);
        }
    }

    // Listing 3: queue-based retry is invisible to the loop query but the
    // LLM flags it.
    println!("\n== Listing 3 (HIVE-23894): queue-based retry ==");
    let project = Project::compile("hive-23894", vec![("processor.jav", LISTING3)]).unwrap();
    let index = ProjectIndex::build(&project);
    let loops = all_retry_locations(&index, &LoopQueryOptions::default());
    println!("control-flow query found {} retry loops (expected 0)", loops.len());
    let mut llm = SimulatedLlm::with_seed(3);
    let identified = identify(&project, &mut llm);
    for (_, coordinator) in &identified.llm_coordinators {
        println!("LLM flagged coordinator: {coordinator}");
    }

    // Listing 4: the dynamic workflow exposes the missing delay.
    println!("\n== Listing 4 (HBASE-20492): state-machine missing delay ==");
    let project = Project::compile("hbase-20492", vec![("unassign.jav", LISTING4)]).unwrap();
    let mut llm = SimulatedLlm::with_seed(3);
    let identified = identify(&project, &mut llm);
    let result = run_dynamic(&project, &identified.locations, &DynamicOptions::default());
    for bug in &result.bugs {
        println!("[{}] {}", bug.kind, bug.representative().detail);
    }
}
