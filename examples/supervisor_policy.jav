// The shard supervisor's restart policy, transliterated to Javelin: the
// same bounded-attempt, exponentially backed-off, capped, equal-jittered
// retry the Rust engine applies to crashed shard children (see
// `crates/engine/src/shard.rs::SupervisorPolicy`). The supervisor's own
// retries must pass the WHEN/HOW rules the linter enforces on analyzed
// code — `wasabi lint` over this file must report nothing, and
// `tests/lint.rs` pins that.
exception ShardCrashException;

class ShardChild {
    method spawn() throws ShardCrashException { return "clean"; }
}

class ShardSupervisor {
    field child;
    field maxRestarts = 16;
    field baseDelayMs = 25;
    field multiplier = 2;
    field capMs = 1000;

    method init() { this.child = new ShardChild(); }

    // Equal jitter over [delay/2, delay): the engine draws from a seeded
    // SplitMix64 stream keyed on (shard, restart); here a deterministic
    // fold of the restart number stands in for the unit draw.
    method jitter(delayMs, restart) {
        return delayMs / 2 + ((delayMs / 2) * (restart % 7)) / 7;
    }

    // The loop variable is named `retry` so the analyzer's keyword filter
    // (naming-convention evidence, §3.1.1) classifies this as a retry
    // structure — the point is that it is *seen* and still lints clean.
    method supervise() throws ShardCrashException {
        var delayMs = this.baseDelayMs;
        for (var retry = 0; retry < this.maxRestarts; retry = retry + 1) {
            try { return this.child.spawn(); }
            catch (ShardCrashException e) {
                log("shard crashed; retrying, restart " + str(retry + 1));
                sleep(this.jitter(min(delayMs, this.capMs), retry + 1));
                delayMs = min(delayMs * this.multiplier, this.capMs);
            }
        }
        throw new ShardCrashException("restart cap exhausted");
    }
}

class ShardSupervisorTests {
    test t000() {
        var supervisor = new ShardSupervisor();
        supervisor.init();
        assert(supervisor.supervise() == "clean", "healthy child needs no restarts");
    }
}
