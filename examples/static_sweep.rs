//! Static-checking sweep over a synthetic application: Figure-4-style
//! identification breakdown plus the LLM WHEN findings and IF-ratio
//! outliers, with API-cost accounting.
//!
//! Run with `cargo run --example static_sweep [APP]` (default HB).

use wasabi::analysis::ifratio::{if_ratio_reports, IfOptions};
use wasabi::analysis::resolve::ProjectIndex;
use wasabi::core::identify::identify;
use wasabi::corpus::spec::{paper_apps, Scale};
use wasabi::corpus::synth::{compile_app, generate_app};
use wasabi::llm::simulated::SimulatedLlm;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "HB".to_string());
    let spec = paper_apps()
        .into_iter()
        .find(|s| s.short == which)
        .unwrap_or_else(|| panic!("unknown app `{which}` (HA HD MA YA HB HI CA EL)"));
    let app = generate_app(&spec, Scale::Tiny);
    let project = compile_app(&app);

    let mut llm = SimulatedLlm::with_seed(spec.seed);
    let identified = identify(&project, &mut llm);

    // Identification breakdown against ground truth.
    let mut loops_codeql = 0;
    let mut loops_llm = 0;
    let mut nonloop_llm = 0;
    let codeql: std::collections::BTreeSet<String> = identified
        .codeql_loops
        .iter()
        .map(|l| l.coordinator.to_string())
        .collect();
    let llm_files: std::collections::BTreeSet<&str> = identified
        .llm_sweep
        .retry_files
        .iter()
        .filter(|r| !r.poll_excluded)
        .map(|r| r.path.as_str())
        .collect();
    for s in &app.truth.structures {
        let by_codeql = codeql.contains(&s.coordinator.to_string());
        let by_llm = llm_files.contains(s.file_path.as_str());
        if s.kind.is_loop() {
            if by_codeql {
                loops_codeql += 1;
            }
            if by_llm {
                loops_llm += 1;
            }
        } else if by_llm {
            nonloop_llm += 1;
        }
    }
    println!("== {} ({}) identification ==", spec.short, spec.name);
    println!(
        "ground truth: {} structures ({} loops, {} queues, {} state machines)",
        app.truth.structures.len(),
        app.truth.structures.iter().filter(|s| s.kind.is_loop()).count(),
        spec.queues,
        spec.fsms
    );
    println!("control-flow query found {loops_codeql} loops (non-loop retry is invisible to it)");
    println!("LLM found {loops_llm} loops and {nonloop_llm} queue/state-machine structures");

    println!("\n== LLM WHEN findings ==");
    for finding in &identified.llm_sweep.findings {
        println!("{}: {} ({})", finding.kind, finding.method, finding.path);
    }

    println!("\n== IF-ratio outliers ==");
    let index = ProjectIndex::build(&project);
    for report in if_ratio_reports(&index, &IfOptions::default()) {
        println!(
            "{} retried in {}/{} loops ({:?}); {} outlier(s)",
            report.exception,
            report.r,
            report.n,
            report.kind,
            report.outliers.len()
        );
    }

    let usage = identified.llm_sweep.usage;
    println!(
        "\nLLM cost: {} calls, {:.2} MB, {:.2} M tokens, ${:.2}",
        usage.calls,
        usage.bytes_sent as f64 / 1e6,
        usage.tokens as f64 / 1e6,
        usage.cost_usd()
    );
}
