//! The §4.1 story end to end on the synthetic HDFS application: WASABI
//! injects `SocketException` once during a unit test, the catch block
//! dereferences a connection object that was never allocated, and the
//! different-exception oracle flags the resulting `NullPointerException`.
//!
//! Run with `cargo run --example dynamic_hdfs`.

use wasabi::core::dynamic::{run_dynamic, DynamicOptions};
use wasabi::core::identify::identify;
use wasabi::corpus::spec::{paper_apps, Scale};
use wasabi::corpus::synth::{compile_app, generate_app};
use wasabi::llm::simulated::SimulatedLlm;
use wasabi::oracles::judge::BugKind;

fn main() {
    let spec = paper_apps()
        .into_iter()
        .find(|s| s.short == "HD")
        .expect("HDFS spec");
    println!("generating synthetic {} ({})...", spec.name, spec.short);
    let app = generate_app(&spec, Scale::Tiny);
    let project = compile_app(&app);
    println!(
        "{} files, {} unit tests, {} seeded retry structures",
        project.files.len(),
        project.tests().len(),
        app.truth.structures.len()
    );

    let mut llm = SimulatedLlm::with_seed(spec.seed);
    let identified = identify(&project, &mut llm);
    println!(
        "identified {} retry locations ({} loops via control flow, {} coordinators via LLM)",
        identified.locations.len(),
        identified.codeql_loops.len(),
        identified.llm_coordinators.len()
    );

    let result = run_dynamic(&project, &identified.locations, &DynamicOptions::default());
    println!(
        "\nplan: {} covering tests -> {} planned pairs -> {} injected runs (naive: {})",
        result.profile.tests_covering_retry(),
        result.plan.entries.len(),
        result.runs_planned,
        result.runs_naive
    );
    println!(
        "run stats: {} crashed, {} filtered as same-exception rethrows\n",
        result.stats.crashed, result.stats.rethrow_filtered
    );

    for bug in &result.bugs {
        let report = bug.representative();
        let truth = app.truth.by_coordinator(&report.location.coordinator);
        let label = match truth {
            Some(t) if t.has_bug(match bug.kind {
                BugKind::MissingCap => wasabi::corpus::SeededBug::MissingCap,
                BugKind::MissingDelay => wasabi::corpus::SeededBug::MissingDelay,
                BugKind::DifferentException => wasabi::corpus::SeededBug::How,
            }) =>
            {
                "TRUE BUG"
            }
            _ => "false positive",
        };
        println!("[{}] {} — {} ({label})", bug.kind, report.location.coordinator, report.detail);
    }

    // The headline: a HOW bug caught by injecting an exception exactly once.
    let npe = result
        .bugs
        .iter()
        .find(|b| b.kind == BugKind::DifferentException && b.key.contains("NullPointerException"))
        .expect("the NPE-in-catch bug should be found");
    println!(
        "\n§4.1 reproduced: one injected {} made the error path dereference an\n\
         unallocated connection -> {}",
        npe.representative().location.exception,
        npe.key
    );
}
