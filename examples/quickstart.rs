//! Quickstart: point WASABI at a small program with a buggy retry loop and
//! watch both workflows find the bugs.
//!
//! Run with `cargo run --example quickstart`.

use wasabi::core::dynamic::{run_dynamic, DynamicOptions};
use wasabi::core::identify::identify;
use wasabi::lang::project::Project;
use wasabi::llm::simulated::SimulatedLlm;

const SOURCE: &str = r#"
exception ConnectException;

class NameNodeClient {
    method connect() throws ConnectException { return "ok"; }

    // BUG (WHEN x2): retries forever, with no backoff.
    method fetchBlock() {
        while (true) {
            try { return this.connect(); }
            catch (ConnectException e) { log("retrying fetch"); }
        }
    }

    test tFetch() { assert(this.fetchBlock() == "ok"); }
}
"#;

fn main() {
    let project =
        Project::compile("quickstart", vec![("namenode_client.jav", SOURCE)]).expect("compile");

    // Identification: control-flow query + (simulated) LLM.
    let mut llm = SimulatedLlm::with_seed(42);
    let identified = identify(&project, &mut llm);
    println!("== identification ==");
    for location in &identified.locations {
        println!(
            "retry location: {} calls {} (trigger {}, via {:?})",
            location.coordinator, location.retried, location.exception, location.mechanism
        );
    }

    // Static checking: the LLM's WHEN findings.
    println!("\n== static checking (LLM) ==");
    for finding in &identified.llm_sweep.findings {
        println!("{}: {} in {}", finding.kind, finding.method, finding.path);
    }

    // Dynamic testing: repurpose the unit test with fault injection.
    println!("\n== dynamic testing (repurposed unit tests) ==");
    let result = run_dynamic(&project, &identified.locations, &DynamicOptions::default());
    println!(
        "plan: {} injected runs over {} covering test(s)",
        result.runs_planned,
        result.profile.tests_covering_retry()
    );
    for bug in &result.bugs {
        let report = bug.representative();
        println!("[{}] at {} — {}", bug.kind, report.location.coordinator, report.detail);
    }
    assert_eq!(result.bugs.len(), 2, "missing cap + missing delay");
    println!("\nfound {} distinct retry bugs", result.bugs.len());
}
